//! Mixed-precision iterative refinement — the correction scheme the paper
//! points to for recovering accuracy beyond the fp16 plateau.
//!
//! §VI.B: "We expect that for some realistic situations, mixed precision
//! solvers are usable as is; in others they may need to be coupled with a
//! correction scheme such as an iterative refinement", citing Carson &
//! Higham's three-precision refinement.
//!
//! The scheme: keep the *system* and the *iterate* in high precision; solve
//! only the **correction equation** `A d = r` in low precision:
//!
//! ```text
//! x = 0
//! repeat:
//!   r = b − A x          (high precision)
//!   d ≈ solve(A, r)      (low-precision BiCGStab, a few iterations)
//!   x = x + d            (high precision)
//! ```
//!
//! Because each inner solve only needs to reduce *its own* residual by a
//! constant factor, the fp16 accuracy floor no longer limits the final
//! answer — each outer pass re-scales the problem so the floor applies to
//! an ever smaller correction. The Fig. 9 extension experiment shows the
//! mixed-precision plateau at ~1e-2 broken down to fp64-level residuals.

use crate::bicgstab::{bicgstab, SolveOptions};
use crate::convergence::{History, IterationRecord};
use crate::policy::Precision;
use stencil::scalar::convert_slice;
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// Options for the outer refinement loop.
#[derive(Copy, Clone, Debug)]
pub struct RefinementOptions {
    /// Maximum outer corrections.
    pub max_outer: usize,
    /// Inner (low-precision) BiCGStab iterations per correction.
    pub inner_iters: usize,
    /// Stop when the high-precision relative residual falls below this.
    pub rtol: f64,
}

impl Default for RefinementOptions {
    fn default() -> RefinementOptions {
        RefinementOptions { max_outer: 20, inner_iters: 8, rtol: 1e-10 }
    }
}

/// Result of a refined solve.
#[derive(Clone, Debug)]
pub struct RefinementResult {
    /// The high-precision iterate.
    pub x: Vec<f64>,
    /// Outer iterations performed.
    pub outer_iters: usize,
    /// Relative residual after each outer correction (high precision).
    pub history: History,
    /// Total inner (low-precision) BiCGStab iterations.
    pub inner_total: usize,
    /// `true` if `rtol` was reached.
    pub converged: bool,
}

/// Solves `A x = b` (given in f64) by iterative refinement with the inner
/// correction solve running under precision policy `P`.
///
/// On the wafer this corresponds to keeping `x` and the residual refresh in
/// fp32 on-core while the heavy BiCGStab inner iterations run at the fp16
/// rates the paper measures — the refresh costs one extra SpMV per outer
/// pass.
///
/// # Panics
/// Panics if `b.len() != a.nrows()`.
pub fn iterative_refinement<P: Precision>(
    a: &DiaMatrix<f64>,
    b: &[f64],
    opts: &RefinementOptions,
) -> RefinementResult {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = b.len();
    let a_low: DiaMatrix<P::Storage> = a.convert();
    let norm_b = norm2_f64(b);
    let mut x = vec![0.0f64; n];
    let mut history = History::default();
    let mut inner_total = 0;
    let mut converged = false;
    let mut outer_iters = 0;

    if norm_b == 0.0 {
        return RefinementResult { x, outer_iters: 0, history, inner_total: 0, converged: true };
    }

    let inner_opts = SolveOptions {
        max_iters: opts.inner_iters,
        rtol: 1e-30, // the outer loop owns convergence
        record_true_residual: false,
    };

    for outer in 0..opts.max_outer {
        // High-precision residual.
        let mut ax = vec![0.0f64; n];
        a.matvec_f64(&x, &mut ax);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let rel = norm2_f64(&r) / norm_b;
        history.push(IterationRecord { iter: outer, recursive_rel: rel, true_rel: rel });
        if rel < opts.rtol {
            converged = true;
            break;
        }
        outer_iters = outer + 1;

        // Scale the correction problem to O(1) so fp16's limited *range*
        // (max 65504, min normal 6e-5) never truncates a shrinking
        // residual — this scaling is what makes fp16 refinement work.
        let scale = r.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if scale == 0.0 {
            converged = true;
            break;
        }
        let r_scaled: Vec<f64> = r.iter().map(|&v| v / scale).collect();
        let r_low: Vec<P::Storage> = convert_slice(&r_scaled);
        let inner = bicgstab::<P>(&a_low, &r_low, &inner_opts);
        inner_total += inner.iters;

        // x += scale · d  (high precision).
        for (xi, di) in x.iter_mut().zip(&inner.x) {
            *xi += scale * di.to_f64();
        }
    }

    // Record the final residual if the loop ended without the early check.
    if !converged {
        let mut ax = vec![0.0f64; n];
        a.matvec_f64(&x, &mut ax);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let rel = norm2_f64(&r) / norm_b;
        history.push(IterationRecord { iter: opts.max_outer, recursive_rel: rel, true_rel: rel });
        converged = rel < opts.rtol;
    }

    RefinementResult { x, outer_iters, history, inner_total, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MixedF16, PureF16};
    use crate::study::run_policy;
    use stencil::mesh::Mesh3D;
    use stencil::problem::manufactured;

    fn system() -> (DiaMatrix<f64>, Vec<f64>, Vec<f64>) {
        let p = manufactured(Mesh3D::new(6, 6, 8), (1.5, -0.5, 0.5), 13).preconditioned();
        (p.matrix.clone(), p.rhs.clone(), p.exact.unwrap())
    }

    #[test]
    fn refinement_breaks_the_fp16_plateau() {
        let (a, b, exact) = system();
        // Plain mixed-precision BiCGStab stalls around 1e-3..1e-2.
        let plain = run_policy::<MixedF16>(
            &a,
            &b,
            &SolveOptions { max_iters: 30, rtol: 1e-14, record_true_residual: true },
        );
        // Refinement with the same inner arithmetic reaches fp64 levels.
        let refined = iterative_refinement::<MixedF16>(&a, &b, &RefinementOptions::default());
        assert!(refined.converged, "refinement must converge");
        let final_rel = refined.history.final_recursive();
        assert!(final_rel < 1e-10, "refined residual {final_rel}");
        assert!(
            final_rel < plain.best() * 1e-4,
            "refinement must beat the plateau: {final_rel} vs {}",
            plain.best()
        );
        let err = refined.x.iter().zip(&exact).map(|(x, e)| (x - e).abs()).fold(0.0f64, f64::max);
        assert!(err < 1e-8, "solution error {err}");
    }

    #[test]
    fn residuals_decrease_monotonically_per_outer_pass() {
        let (a, b, _) = system();
        let r = iterative_refinement::<MixedF16>(&a, &b, &RefinementOptions::default());
        let resids: Vec<f64> = r.history.records.iter().map(|rec| rec.true_rel).collect();
        for w in resids.windows(2) {
            assert!(w[1] < w[0] * 0.9, "each outer pass must make progress: {resids:?}");
        }
    }

    #[test]
    fn works_even_with_pure_fp16_inner_solver() {
        // Even the ablation policy (fp16 dot accumulation) refines to high
        // accuracy — the outer loop forgives the inner solver a lot.
        let (a, b, _) = system();
        let opts = RefinementOptions { max_outer: 40, inner_iters: 10, rtol: 1e-9 };
        let r = iterative_refinement::<PureF16>(&a, &b, &opts);
        assert!(r.converged, "final rel {}", r.history.final_recursive());
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let (a, _, _) = system();
        let b = vec![0.0; a.nrows()];
        let r = iterative_refinement::<MixedF16>(&a, &b, &RefinementOptions::default());
        assert!(r.converged);
        assert_eq!(r.inner_total, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn respects_outer_budget() {
        let (a, b, _) = system();
        let opts = RefinementOptions { max_outer: 2, inner_iters: 1, rtol: 1e-14 };
        let r = iterative_refinement::<MixedF16>(&a, &b, &opts);
        assert!(!r.converged);
        assert_eq!(r.outer_iters, 2);
        assert_eq!(r.inner_total, 2);
    }
}
