//! Point-Jacobi relaxation — the stationary-method baseline.
//!
//! For a unit-diagonal (already Jacobi-scaled) system this is Richardson
//! iteration `x ← x + (b − A x)`. Its linear convergence contrasts with the
//! Krylov methods and provides a sanity baseline for the solver comparisons.

use crate::bicgstab::{BiCgStabOutcome, SolveOptions, SolveResult};
use crate::convergence::{true_relative_residual, History, IterationRecord};
use crate::policy::{OpCounts, Precision};
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// Runs (damped) point-Jacobi / Richardson iteration on a unit-diagonal
/// system: `x ← x + θ (b − A x)` with damping `theta`.
///
/// # Panics
/// Panics if `b.len() != a.nrows()` or the matrix diagonal is not unit.
pub fn jacobi<P: Precision>(
    a: &DiaMatrix<P::Storage>,
    b: &[P::Storage],
    theta: f64,
    opts: &SolveOptions,
) -> SolveResult<P::Storage> {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    assert!(
        stencil::precond::has_unit_diagonal(a),
        "jacobi() expects a diagonally preconditioned (unit-diagonal) system"
    );
    let n = b.len();
    let mut ops = OpCounts::default();
    let mut history = History::default();
    let theta_s = P::Storage::from_f64(theta);

    let norm_b = {
        let bf: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
        norm2_f64(&bf)
    };
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![P::Storage::zero(); n],
            outcome: BiCgStabOutcome::Converged,
            iters: 0,
            history,
            ops,
        };
    }

    let mut x = vec![P::Storage::zero(); n];
    let mut ax = vec![P::Storage::zero(); n];
    let mut outcome = BiCgStabOutcome::MaxIterations;
    let mut iters = 0;

    for i in 0..opts.max_iters {
        a.matvec(&x, &mut ax);
        let nbands = a.offsets().len() as u64;
        ops.matvec_mul += (nbands - 1) * n as u64;
        ops.matvec_add += (nbands - 1) * n as u64;
        let mut rr = 0.0f64;
        for j in 0..n {
            let r = b[j].sub(ax[j]);
            rr += r.to_f64() * r.to_f64();
            x[j] = x[j].mul_add(theta_s, r);
        }
        ops.axpy_mul += n as u64;
        ops.axpy_add += 2 * n as u64; // residual subtract + update add

        iters = i + 1;
        let recursive_rel = rr.sqrt() / norm_b;
        let true_rel =
            if opts.record_true_residual { true_relative_residual(a, &x, b) } else { f64::NAN };
        history.push(IterationRecord { iter: iters, recursive_rel, true_rel });
        if x.iter().any(|v| v.is_non_finite()) {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }
        if recursive_rel < opts.rtol {
            outcome = BiCgStabOutcome::Converged;
            break;
        }
    }

    SolveResult { x, outcome, iters, history, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::bicgstab;
    use crate::policy::Fp64;
    use stencil::mesh::Mesh3D;
    use stencil::problem::manufactured;

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let p = manufactured(Mesh3D::new(5, 5, 5), (0.0, 0.0, 0.0), 3).preconditioned();
        let opts = SolveOptions { max_iters: 2000, rtol: 1e-8, record_true_residual: false };
        let res = jacobi::<Fp64>(&p.matrix, &p.rhs, 1.0, &opts);
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        let exact = p.exact.unwrap();
        let err = res.x.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn bicgstab_needs_far_fewer_iterations() {
        let p = manufactured(Mesh3D::new(6, 6, 6), (1.0, 0.0, 0.0), 4).preconditioned();
        let opts = SolveOptions { max_iters: 5000, rtol: 1e-8, record_true_residual: false };
        let jac = jacobi::<Fp64>(&p.matrix, &p.rhs, 1.0, &opts);
        let bicg = bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts);
        assert_eq!(jac.outcome, BiCgStabOutcome::Converged);
        assert_eq!(bicg.outcome, BiCgStabOutcome::Converged);
        assert!(
            bicg.iters * 4 < jac.iters,
            "Krylov should beat stationary: bicg {} vs jacobi {}",
            bicg.iters,
            jac.iters
        );
    }

    #[test]
    #[should_panic(expected = "unit-diagonal")]
    fn rejects_unscaled_matrix() {
        let p = manufactured(Mesh3D::new(3, 3, 3), (0.0, 0.0, 0.0), 3);
        jacobi::<Fp64>(&p.matrix, &p.rhs, 1.0, &SolveOptions::default());
    }
}
