//! BiCGStab — Algorithm 1 of the paper, instrumented.
//!
//! ```text
//! 1: r0 := b, p0 := r0                     (x0 = 0)
//! 2: for i = 0,1,2,...
//! 3:   s := A p
//! 4:   α := (r0,r) / (r0,s)
//! 5:   q := r − α s
//! 6:   y := A q
//! 7:   ω := (q,y) / (y,y)
//! 8:   x := x + α p + ω q
//! 9:   r' := q − ω y
//! 10:  β := (α/ω) · (r0,r') / (r0,r)
//! 11:  p := r' + β (p − ω s)
//! ```
//!
//! Kernel inventory per iteration, reproducing Table I: **2 SpMVs** (six
//! multiplies and six adds per meshpoint each for the unit-diagonal 7-point
//! operator), **4 dot products** — `(r0,s)`, `(q,y)`, `(y,y)`, `(r0,r')`
//! (the `(r0,r)` value is carried over from the previous iteration) — and
//! **6 AXPYs** (lines 5 and 9 one each; lines 8 and 11 two each). Totals per
//! meshpoint: 22 multiplies + 22 adds = 44 ops, of which the 4 dot-adds run
//! at fp32 under the mixed policy and the other 40 at fp16.
//!
//! The residual-norm check used for stopping is *not* part of the ledger —
//! the paper likewise excludes residual calculations, noting "they could be
//! overlapped with other computations".

use crate::convergence::{true_relative_residual, History, IterationRecord};
use crate::policy::{OpCounts, Precision};
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// Solver options.
#[derive(Copy, Clone, Debug)]
pub struct SolveOptions {
    /// Maximum BiCGStab iterations.
    pub max_iters: usize,
    /// Stop when the recursive relative residual falls below this.
    pub rtol: f64,
    /// Record the f64 true residual every iteration (costs an extra f64
    /// SpMV per iteration; disable for timing runs).
    pub record_true_residual: bool,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions { max_iters: 200, rtol: 1e-8, record_true_residual: true }
    }
}

/// Why the solve stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BiCgStabOutcome {
    /// Recursive residual reached `rtol`.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// `(r0, r)` or `(r0, s)` vanished — the method cannot proceed.
    BreakdownRho,
    /// `(y, y)` vanished — ω undefined.
    BreakdownOmega,
    /// A non-finite coefficient appeared (overflow/NaN — a real fp16
    /// hazard).
    NonFinite,
}

/// Result of a BiCGStab solve.
#[derive(Clone, Debug)]
pub struct SolveResult<S> {
    /// The final iterate.
    pub x: Vec<S>,
    /// Why iteration stopped.
    pub outcome: BiCgStabOutcome,
    /// Number of completed iterations.
    pub iters: usize,
    /// Residual history (one record per iteration).
    pub history: History,
    /// Accumulated floating-point operation counts.
    pub ops: OpCounts,
}

/// `y[i] += a * x[i]` in storage precision using the fused FMAC; one
/// multiply and one add per element.
fn axpy<S: Scalar>(ops: &mut OpCounts, a: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = yi.mul_add(a, xi);
    }
    ops.axpy_mul += x.len() as u64;
    ops.axpy_add += x.len() as u64;
}

/// `dst[i] = u[i] + a * v[i]` (the XPAY form of lines 5 and 9).
/// Note `mul_add(self, a, b)` computes `a·b + self`, so this is
/// `u[i].mul_add(a, v[i])`.
fn xpay_into<S: Scalar>(ops: &mut OpCounts, dst: &mut [S], u: &[S], a: S, v: &[S]) {
    debug_assert_eq!(u.len(), v.len());
    debug_assert_eq!(u.len(), dst.len());
    for i in 0..u.len() {
        dst[i] = u[i].mul_add(a, v[i]);
    }
    ops.axpy_mul += u.len() as u64;
    ops.axpy_add += u.len() as u64;
}

/// Instrumented SpMV: charges the paper's per-band cost (every band one
/// multiply per element except a unit main diagonal, and `bands − 1` adds
/// per element since the first product initializes the output).
fn spmv<S: Scalar>(ops: &mut OpCounts, a: &DiaMatrix<S>, x: &[S], y: &mut [S]) {
    a.matvec(x, y);
    let n = x.len() as u64;
    let nbands = a.offsets().len() as u64;
    let muls = if stencil::precond::has_unit_diagonal(a) { nbands - 1 } else { nbands };
    ops.matvec_mul += muls * n;
    ops.matvec_add += (nbands - 1) * n;
}

/// Instrumented dot product in the policy's global precision.
fn dot<P: Precision>(ops: &mut OpCounts, x: &[P::Storage], y: &[P::Storage]) -> P::Global {
    ops.dot_mul += x.len() as u64;
    ops.dot_add += x.len() as u64;
    P::dot(x, y)
}

/// Solves `A x = b` by BiCGStab under precision policy `P`, starting from
/// `x = 0`.
///
/// The matrix should be diagonally preconditioned (unit main diagonal) to
/// match the paper's operation counts, but any [`DiaMatrix`] works.
///
/// # Panics
/// Panics if `b.len() != a.nrows()`.
pub fn bicgstab<P: Precision>(
    a: &DiaMatrix<P::Storage>,
    b: &[P::Storage],
    opts: &SolveOptions,
) -> SolveResult<P::Storage> {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = b.len();
    let mut ops = OpCounts::default();
    let mut history = History::default();

    let norm_b = {
        let bf: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
        norm2_f64(&bf)
    };
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![P::Storage::zero(); n],
            outcome: BiCgStabOutcome::Converged,
            iters: 0,
            history,
            ops,
        };
    }

    let mut x = vec![P::Storage::zero(); n];
    let mut r: Vec<P::Storage> = b.to_vec(); // r0 := b  (x0 = 0)
    let r0: Vec<P::Storage> = r.clone(); // shadow residual r̂0
    let mut p = r.clone();
    let mut s = vec![P::Storage::zero(); n];
    let mut y = vec![P::Storage::zero(); n];
    let mut q = vec![P::Storage::zero(); n];

    // ρ = (r0, r), carried across iterations. The initial evaluation happens
    // once outside the loop and is deliberately not charged to the
    // per-iteration ledger (Table I counts four dots per iteration).
    let mut rho: P::Global = P::dot(&r0, &r);

    let mut outcome = BiCgStabOutcome::MaxIterations;
    let mut iters = 0;

    for i in 0..opts.max_iters {
        // 3: s := A p
        spmv(&mut ops, a, &p, &mut s);
        // 4: α := ρ / (r0, s)
        let r0s = dot::<P>(&mut ops, &r0, &s);
        if rho.to_f64() == 0.0 || r0s.to_f64() == 0.0 {
            outcome = BiCgStabOutcome::BreakdownRho;
            break;
        }
        let alpha = rho.div(r0s);
        let alpha_s = P::Storage::from_f64(alpha.to_f64());
        if alpha_s.is_non_finite() {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }
        // 5: q := r − α s
        xpay_into(&mut ops, &mut q, &r, alpha_s.neg(), &s);
        // Early exit on the half-step residual: if q already meets the
        // tolerance, take the α half-step and stop. Without this, exact
        // convergence (e.g. A = I) reaches ω = (q,y)/(y,y) = 0/0 and is
        // misreported as a breakdown.
        if opts.rtol > 0.0 {
            let q_rel = {
                let qf: Vec<f64> = q.iter().map(|v| v.to_f64()).collect();
                norm2_f64(&qf) / norm_b
            };
            if q_rel < opts.rtol {
                axpy(&mut ops, alpha_s, &p, &mut x);
                r.clone_from_slice(&q);
                iters = i + 1;
                let true_rel = if opts.record_true_residual {
                    true_relative_residual(a, &x, b)
                } else {
                    f64::NAN
                };
                history.push(IterationRecord { iter: iters, recursive_rel: q_rel, true_rel });
                outcome = BiCgStabOutcome::Converged;
                break;
            }
        }
        // 6: y := A q
        spmv(&mut ops, a, &q, &mut y);
        // 7: ω := (q, y) / (y, y)
        let qy = dot::<P>(&mut ops, &q, &y);
        let yy = dot::<P>(&mut ops, &y, &y);
        if yy.to_f64() == 0.0 {
            outcome = BiCgStabOutcome::BreakdownOmega;
            break;
        }
        let omega = qy.div(yy);
        let omega_s = P::Storage::from_f64(omega.to_f64());
        if omega_s.is_non_finite() || omega.to_f64() == 0.0 {
            outcome = if omega_s.is_non_finite() {
                BiCgStabOutcome::NonFinite
            } else {
                BiCgStabOutcome::BreakdownOmega
            };
            break;
        }
        // 8: x := x + α p + ω q   (two AXPYs)
        axpy(&mut ops, alpha_s, &p, &mut x);
        axpy(&mut ops, omega_s, &q, &mut x);
        // 9: r' := q − ω y
        xpay_into(&mut ops, &mut r, &q, omega_s.neg(), &y);
        // 10: β := (α/ω) · (r0, r') / ρ
        let rho_next = dot::<P>(&mut ops, &r0, &r);
        let beta = alpha.div(omega).mul(rho_next.div(rho));
        rho = rho_next;
        let beta_s = P::Storage::from_f64(beta.to_f64());
        if beta_s.is_non_finite() {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }
        // 11: p := r' + β (p − ω s)   (two AXPYs: in-place tilt, then XPAY)
        for j in 0..n {
            p[j] = p[j].mul_add(omega_s.neg(), s[j]); // (−ω)·s + p
        }
        ops.axpy_mul += n as u64;
        ops.axpy_add += n as u64;
        for j in 0..n {
            p[j] = r[j].mul_add(beta_s, p[j]); // β·p + r'
        }
        ops.axpy_mul += n as u64;
        ops.axpy_add += n as u64;

        iters = i + 1;

        // Observability (outside the op ledger).
        let recursive_rel = {
            let rf: Vec<f64> = r.iter().map(|v| v.to_f64()).collect();
            norm2_f64(&rf) / norm_b
        };
        let true_rel =
            if opts.record_true_residual { true_relative_residual(a, &x, b) } else { f64::NAN };
        history.push(IterationRecord { iter: iters, recursive_rel, true_rel });

        if x.iter().any(|v| v.is_non_finite()) {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }
        if recursive_rel < opts.rtol {
            outcome = BiCgStabOutcome::Converged;
            break;
        }
    }

    SolveResult { x, outcome, iters, history, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fp32, Fp64, MixedF16};
    use stencil::mesh::Mesh3D;
    use stencil::problem::manufactured;
    use wse_float::F16;

    fn solve_f64(mesh: Mesh3D, vel: (f64, f64, f64)) -> (SolveResult<f64>, Vec<f64>) {
        let p = manufactured(mesh, vel, 42).preconditioned();
        let result = bicgstab::<Fp64>(&p.matrix, &p.rhs, &SolveOptions::default());
        (result, p.exact.unwrap())
    }

    #[test]
    fn converges_on_symmetric_problem() {
        let (res, exact) = solve_f64(Mesh3D::new(6, 6, 6), (0.0, 0.0, 0.0));
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        let err: f64 = res.x.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn converges_on_nonsymmetric_problem() {
        let (res, exact) = solve_f64(Mesh3D::new(6, 5, 7), (2.0, -1.0, 0.5));
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        let err: f64 = res.x.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let (res, _) = solve_f64(Mesh3D::new(6, 6, 6), (1.0, 0.0, 0.0));
        let first = res.history.records.first().unwrap().true_rel;
        let last = res.history.records.last().unwrap().true_rel;
        assert!(last < first * 1e-4, "first {first}, last {last}");
    }

    #[test]
    fn op_counts_match_table1() {
        // Unit-diagonal 7-point stencil: exactly 44 ops per meshpoint per
        // iteration — 12+12 matvec, 4+4 dot, 6+6 axpy.
        let p = manufactured(Mesh3D::new(5, 5, 5), (1.0, 0.5, -0.5), 1).preconditioned();
        let opts = SolveOptions { max_iters: 8, rtol: 0.0, record_true_residual: false };
        let res = bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts);
        assert_eq!(res.iters, 8);
        let pp = res.ops.per_point_per_iter(p.matrix.nrows(), res.iters);
        assert_eq!(pp.matvec_mul, 12.0);
        assert_eq!(pp.matvec_add, 12.0);
        assert_eq!(pp.dot_mul, 4.0);
        assert_eq!(pp.dot_add, 4.0);
        assert_eq!(pp.axpy_mul, 6.0);
        assert_eq!(pp.axpy_add, 6.0);
        assert_eq!(pp.total(), 44.0);
        // Mixed-precision split: 4 fp32 ops (dot adds), 40 fp16.
        assert_eq!(res.ops.global_ops(), 4 * p.matrix.nrows() as u64 * 8);
        assert_eq!(res.ops.storage_ops(), 40 * p.matrix.nrows() as u64 * 8);
    }

    #[test]
    fn fp32_converges_to_fp32_level() {
        let p = manufactured(Mesh3D::new(6, 6, 6), (1.0, 0.0, 0.0), 9).preconditioned();
        let a32: stencil::DiaMatrix<f32> = p.matrix.convert();
        let b32: Vec<f32> = p.rhs.iter().map(|&v| v as f32).collect();
        let opts = SolveOptions { max_iters: 60, rtol: 1e-6, ..Default::default() };
        let res = bicgstab::<Fp32>(&a32, &b32, &opts);
        assert!(res.history.best_true() < 1e-5, "best {}", res.history.best_true());
    }

    #[test]
    fn mixed_f16_reaches_f16_plateau() {
        // Fig. 9's qualitative claim: mixed tracks at first, then plateaus
        // around 1e-2..1e-3 (fp16 machine precision ~1e-3 minus conditioning).
        let p = manufactured(Mesh3D::new(6, 6, 6), (1.0, 0.0, 0.0), 9).preconditioned();
        let a16: stencil::DiaMatrix<F16> = p.matrix.convert();
        let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let opts = SolveOptions { max_iters: 40, rtol: 1e-10, ..Default::default() };
        let res = bicgstab::<MixedF16>(&a16, &b16, &opts);
        let best = res.history.best_true();
        assert!(best < 5e-2, "mixed should reach ~1e-2, got {best}");
        assert!(best > 1e-6, "mixed cannot reach fp64 accuracy, got {best}");
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let p = manufactured(Mesh3D::new(4, 4, 4), (0.0, 0.0, 0.0), 5).preconditioned();
        let b = vec![0.0f64; p.matrix.nrows()];
        let res = bicgstab::<Fp64>(&p.matrix, &b, &SolveOptions::default());
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        assert_eq!(res.iters, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn mismatched_rhs_panics() {
        let p = manufactured(Mesh3D::new(3, 3, 3), (0.0, 0.0, 0.0), 5).preconditioned();
        let b = vec![0.0f64; 5];
        bicgstab::<Fp64>(&p.matrix, &b, &SolveOptions::default());
    }

    #[test]
    fn respects_max_iters() {
        let p = manufactured(Mesh3D::new(8, 8, 8), (3.0, -2.0, 1.0), 2).preconditioned();
        let opts = SolveOptions { max_iters: 3, rtol: 1e-30, record_true_residual: false };
        let res = bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts);
        assert_eq!(res.outcome, BiCgStabOutcome::MaxIterations);
        assert_eq!(res.iters, 3);
        assert_eq!(res.history.records.len(), 3);
    }
}
