//! Conjugate gradients — the symmetric Krylov baseline.
//!
//! "Discretized partial differential equations lead to systems of linear
//! equations that are commonly solved using Krylov subspace iterative
//! methods such as the conjugate gradient (CG) method. The Biconjugate
//! Gradient Method extends CG to nonsymmetric systems." CG is implemented as
//! the baseline the paper's algorithm generalizes; it also provides the
//! HPCG-style reference workload for the machine-balance discussion (Fig 1).

use crate::bicgstab::{BiCgStabOutcome, SolveOptions, SolveResult};
use crate::convergence::{true_relative_residual, History, IterationRecord};
use crate::policy::{OpCounts, Precision};
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// Solves SPD `A x = b` by conjugate gradients under precision policy `P`,
/// starting from `x = 0`. Reuses [`SolveOptions`]/[`SolveResult`] from the
/// BiCGStab module; the `outcome` field uses the same enum (only
/// `Converged`, `MaxIterations`, `BreakdownRho` and `NonFinite` can occur).
///
/// # Panics
/// Panics if `b.len() != a.nrows()`.
pub fn cg<P: Precision>(
    a: &DiaMatrix<P::Storage>,
    b: &[P::Storage],
    opts: &SolveOptions,
) -> SolveResult<P::Storage> {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = b.len();
    let mut ops = OpCounts::default();
    let mut history = History::default();

    let norm_b = {
        let bf: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
        norm2_f64(&bf)
    };
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![P::Storage::zero(); n],
            outcome: BiCgStabOutcome::Converged,
            iters: 0,
            history,
            ops,
        };
    }

    let mut x = vec![P::Storage::zero(); n];
    let mut r: Vec<P::Storage> = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![P::Storage::zero(); n];

    let mut rr: P::Global = P::dot(&r, &r);
    let mut outcome = BiCgStabOutcome::MaxIterations;
    let mut iters = 0;

    for i in 0..opts.max_iters {
        a.matvec(&p, &mut ap);
        let nbands = a.offsets().len() as u64;
        let muls = if stencil::precond::has_unit_diagonal(a) { nbands - 1 } else { nbands };
        ops.matvec_mul += muls * n as u64;
        ops.matvec_add += (nbands - 1) * n as u64;

        let pap = P::dot(&p, &ap);
        ops.dot_mul += n as u64;
        ops.dot_add += n as u64;
        if pap.to_f64() <= 0.0 {
            outcome = BiCgStabOutcome::BreakdownRho;
            break;
        }
        let alpha = rr.div(pap);
        let alpha_s = P::Storage::from_f64(alpha.to_f64());
        if alpha_s.is_non_finite() {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }
        for j in 0..n {
            x[j] = x[j].mul_add(alpha_s, p[j]); // x += α p
        }
        for j in 0..n {
            r[j] = r[j].mul_add(alpha_s.neg(), ap[j]); // r −= α Ap
        }
        ops.axpy_mul += 2 * n as u64;
        ops.axpy_add += 2 * n as u64;

        let rr_next = P::dot(&r, &r);
        ops.dot_mul += n as u64;
        ops.dot_add += n as u64;
        let beta = rr_next.div(rr);
        rr = rr_next;
        let beta_s = P::Storage::from_f64(beta.to_f64());
        for j in 0..n {
            p[j] = r[j].mul_add(beta_s, p[j]); // p = r + β p
        }
        ops.axpy_mul += n as u64;
        ops.axpy_add += n as u64;

        iters = i + 1;
        let recursive_rel = rr.to_f64().abs().sqrt() / norm_b;
        let true_rel =
            if opts.record_true_residual { true_relative_residual(a, &x, b) } else { f64::NAN };
        history.push(IterationRecord { iter: iters, recursive_rel, true_rel });
        if recursive_rel < opts.rtol {
            outcome = BiCgStabOutcome::Converged;
            break;
        }
    }

    SolveResult { x, outcome, iters, history, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fp64;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;

    #[test]
    fn cg_solves_poisson() {
        let mesh = Mesh3D::new(6, 6, 6);
        let a = poisson(mesh);
        let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i * 13) % 17) as f64 * 0.1).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&exact, &mut b);
        let res = cg::<Fp64>(&a, &b, &SolveOptions::default());
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        let err = res.x.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn cg_per_iteration_cost_is_half_bicgstab() {
        // CG: 1 SpMV + 2 dots + 3 AXPYs per iteration. On the unit-diagonal
        // 7-point operator: 6+6 matvec + 2+2 dot + 3+3 axpy = 22 ops/point,
        // exactly half of BiCGStab's 44 — the paper's "uses four dot
        // products per iteration instead of two" heritage.
        let mesh = Mesh3D::new(5, 5, 5);
        let a = poisson(mesh);
        let sys = jacobi_scale(&a, &vec![1.0; mesh.len()]);
        let opts = SolveOptions { max_iters: 4, rtol: 0.0, record_true_residual: false };
        let res = cg::<Fp64>(&sys.matrix, &sys.rhs, &opts);
        assert_eq!(res.iters, 4);
        let pp = res.ops.per_point_per_iter(mesh.len(), res.iters);
        assert_eq!(pp.total(), 22.0);
    }

    #[test]
    fn cg_zero_rhs() {
        let a = poisson(Mesh3D::new(3, 3, 3));
        let res = cg::<Fp64>(&a, &vec![0.0; 27], &SolveOptions::default());
        assert_eq!(res.iters, 0);
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
    }
}
