//! Residual tracking and stopping criteria shared by the solvers.

use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// One iteration's residual record.
#[derive(Copy, Clone, Debug)]
pub struct IterationRecord {
    /// Iteration number (1-based: recorded after the update).
    pub iter: usize,
    /// Normwise relative *recursive* residual `‖r_i‖ / ‖b‖`, where `r_i` is
    /// the vector the iteration carries (what the wafer can observe cheaply).
    pub recursive_rel: f64,
    /// Normwise relative *true* residual `‖b − A x_i‖ / ‖b‖` evaluated in
    /// f64 against the solved (storage-precision) system — the honest
    /// quantity Fig. 9 plots.
    pub true_rel: f64,
}

/// Complete residual history of a solve.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Records, one per iteration.
    pub records: Vec<IterationRecord>,
}

impl History {
    /// Appends a record.
    pub fn push(&mut self, rec: IterationRecord) {
        self.records.push(rec);
    }

    /// The smallest true relative residual reached.
    pub fn best_true(&self) -> f64 {
        self.records.iter().map(|r| r.true_rel).fold(f64::INFINITY, f64::min)
    }

    /// The final recursive relative residual.
    pub fn final_recursive(&self) -> f64 {
        self.records.last().map_or(f64::INFINITY, |r| r.recursive_rel)
    }

    /// Detects the stagnation plateau: the first iteration after which the
    /// true residual never again improves by more than `factor` (e.g. 0.5
    /// for "stops halving"). Returns `None` if it improves to the end.
    pub fn plateau_start(&self, factor: f64) -> Option<usize> {
        let n = self.records.len();
        for i in 0..n.saturating_sub(1) {
            let here = self.records[i].true_rel;
            let future_best =
                self.records[i + 1..].iter().map(|r| r.true_rel).fold(f64::INFINITY, f64::min);
            if future_best > here * factor {
                return Some(self.records[i].iter);
            }
        }
        None
    }
}

/// Computes `‖b − A x‖₂ / ‖b‖₂` in f64, with the matrix and vectors in any
/// storage precision.
pub fn true_relative_residual<S: Scalar>(a: &DiaMatrix<S>, x: &[S], b: &[S]) -> f64 {
    let r = a.residual_f64(x, b);
    let bn: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
    let denom = norm2_f64(&bn);
    if denom == 0.0 {
        norm2_f64(&r)
    } else {
        norm2_f64(&r) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::mesh::Mesh3D;
    use stencil::stencil7::poisson;

    #[test]
    fn true_residual_zero_at_solution() {
        let a = poisson(Mesh3D::new(3, 3, 3));
        let x: Vec<f64> = (0..27).map(|i| (i % 4) as f64).collect();
        let mut b = vec![0.0; 27];
        a.matvec_f64(&x, &mut b);
        assert!(true_relative_residual(&a, &x, &b) < 1e-14);
    }

    #[test]
    fn true_residual_one_at_zero_guess() {
        let a = poisson(Mesh3D::new(3, 3, 3));
        let xs = vec![1.0; 27];
        let mut b = vec![0.0; 27];
        a.matvec_f64(&xs, &mut b);
        let x0 = vec![0.0; 27];
        let r = true_relative_residual(&a, &x0, &b);
        assert!((r - 1.0).abs() < 1e-14);
    }

    #[test]
    fn plateau_detection() {
        let mut h = History::default();
        for (i, t) in [1.0, 0.1, 0.01, 0.009, 0.0095, 0.0091].iter().enumerate() {
            h.push(IterationRecord { iter: i + 1, recursive_rel: *t, true_rel: *t });
        }
        // After iteration 3 (0.01) the residual never improves by 2x again.
        assert_eq!(h.plateau_start(0.5), Some(3));
        assert_eq!(h.best_true(), 0.009);
    }

    #[test]
    fn plateau_none_when_converging() {
        let mut h = History::default();
        for i in 0..6 {
            let t = 10f64.powi(-(i as i32));
            h.push(IterationRecord { iter: i + 1, recursive_rel: t, true_rel: t });
        }
        assert_eq!(h.plateau_start(0.5), None);
    }
}
