//! Host-side Krylov solvers, generic over floating-point precision policies.
//!
//! This crate provides the *reference* implementations of the algorithms the
//! paper maps onto the wafer:
//!
//! * [`mod@bicgstab`] — Algorithm 1 of the paper, with per-kernel operation
//!   counting that reproduces Table I (44 operations per meshpoint per
//!   iteration; 40 in fp16 and 4 in fp32 under the mixed policy),
//! * [`cg`] — conjugate gradients, the symmetric baseline BiCGStab extends,
//! * [`jacobi`] — point-Jacobi relaxation, the simplest stationary baseline,
//! * [`policy`] — precision policies (fp64 / fp32 / mixed 16-32 / pure fp16)
//!   that make one solver code path produce every curve of Fig. 9,
//! * [`pipelined`] — Chronopoulos–Gear single-reduction CG, the classic
//!   communication-reducing variant the paper's discussion points toward,
//! * [`refinement`] — mixed-precision iterative refinement (§VI.B's
//!   "correction scheme"), which recovers fp64 accuracy from fp16 inner
//!   solves,
//! * [`study`] — helpers that take an f64 master problem, narrow it to a
//!   policy's storage precision, solve, and record normwise relative
//!   residuals against the original system.
//!
//! The on-wafer implementation in `wse-core` is validated against these.

#![warn(missing_docs)]

pub mod bicgstab;
pub mod cg;
pub mod convergence;
pub mod jacobi;
pub mod pipelined;
pub mod policy;
pub mod refinement;
pub mod spectral;
pub mod study;

pub use bicgstab::{bicgstab, BiCgStabOutcome, SolveOptions, SolveResult};
pub use policy::{Fp32, Fp64, MixedF16, Precision, PureF16};
