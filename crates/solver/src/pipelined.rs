//! Communication-reducing Krylov variants.
//!
//! The paper: "Because we did not use a communication-hiding variant of
//! BiCGStab, this collective operation is blocking, so we minimized
//! latency" — and cites the communication-avoiding Krylov literature
//! (Hoemmen; Carson). This module implements the classic first step of that
//! program, **Chronopoulos–Gear CG**: conjugate gradients restructured so
//! each iteration needs exactly **one** reduction round (computing both
//! inner products together) instead of two.
//!
//! Derivation sketch (all classical): with `s = A r`, `γ = (r, r)`,
//! `δ = (r, s)` and the auxiliary recurrence `q = A p = s + β q`, the CG
//! step size becomes `α = γ / (δ − β γ / α_prev)` using the identity
//! `(p, A p) = δ − β γ / α_prev` — so `γ` and `δ` can be reduced in the
//! same round, and `q` needs no extra SpMV.

use crate::bicgstab::{BiCgStabOutcome, SolveOptions, SolveResult};
use crate::convergence::{true_relative_residual, History, IterationRecord};
use crate::policy::{OpCounts, Precision};
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// Counts of blocking reduction rounds, for comparing variants.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReductionRounds {
    /// Rounds per completed solve.
    pub total: usize,
}

/// Chronopoulos–Gear CG: one fused reduction round per iteration.
///
/// Returns the same [`SolveResult`] shape as the other solvers plus the
/// reduction-round count. On SPD systems it follows standard CG's
/// trajectory up to rounding.
///
/// # Panics
/// Panics if `b.len() != a.nrows()`.
pub fn cg_single_reduction<P: Precision>(
    a: &DiaMatrix<P::Storage>,
    b: &[P::Storage],
    opts: &SolveOptions,
) -> (SolveResult<P::Storage>, ReductionRounds) {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = b.len();
    let mut ops = OpCounts::default();
    let mut history = History::default();
    let mut rounds = ReductionRounds::default();

    let norm_b = {
        let bf: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
        norm2_f64(&bf)
    };
    if norm_b == 0.0 {
        return (
            SolveResult {
                x: vec![P::Storage::zero(); n],
                outcome: BiCgStabOutcome::Converged,
                iters: 0,
                history,
                ops,
            },
            rounds,
        );
    }

    let nbands = a.offsets().len() as u64;
    let muls = if stencil::precond::has_unit_diagonal(a) { nbands - 1 } else { nbands };

    let mut x = vec![P::Storage::zero(); n];
    let mut r: Vec<P::Storage> = b.to_vec();
    let mut s = vec![P::Storage::zero(); n];
    let mut p = vec![P::Storage::zero(); n];
    let mut q = vec![P::Storage::zero(); n];

    let mut gamma_prev = P::Global::one();
    let mut alpha_prev = P::Global::one();
    let mut outcome = BiCgStabOutcome::MaxIterations;
    let mut iters = 0;

    for i in 0..opts.max_iters {
        // s = A r.
        a.matvec(&r, &mut s);
        ops.matvec_mul += muls * n as u64;
        ops.matvec_add += (nbands - 1) * n as u64;

        // ONE reduction round: γ = (r, r) and δ = (r, s) together.
        let gamma = P::dot(&r, &r);
        let delta = P::dot(&r, &s);
        ops.dot_mul += 2 * n as u64;
        ops.dot_add += 2 * n as u64;
        rounds.total += 1;

        if delta.to_f64() <= 0.0 {
            outcome = BiCgStabOutcome::BreakdownRho;
            break;
        }

        let (alpha, beta) = if i == 0 {
            (gamma.div(delta), P::Global::zero())
        } else {
            let beta = gamma.div(gamma_prev);
            // α = γ / (δ − β γ / α_prev).
            let denom = delta.sub(beta.mul(gamma).div(alpha_prev));
            if denom.to_f64() <= 0.0 {
                outcome = BiCgStabOutcome::BreakdownOmega;
                break;
            }
            (gamma.div(denom), beta)
        };
        let alpha_s = P::Storage::from_f64(alpha.to_f64());
        let beta_s = P::Storage::from_f64(beta.to_f64());
        if alpha_s.is_non_finite() || beta_s.is_non_finite() {
            outcome = BiCgStabOutcome::NonFinite;
            break;
        }

        // p = r + β p; q = s + β q  (the A·p recurrence).
        for j in 0..n {
            p[j] = r[j].mul_add(beta_s, p[j]);
            q[j] = s[j].mul_add(beta_s, q[j]);
        }
        ops.axpy_mul += 2 * n as u64;
        ops.axpy_add += 2 * n as u64;

        // x += α p; r −= α q.
        for j in 0..n {
            x[j] = x[j].mul_add(alpha_s, p[j]);
            r[j] = r[j].mul_add(alpha_s.neg(), q[j]);
        }
        ops.axpy_mul += 2 * n as u64;
        ops.axpy_add += 2 * n as u64;

        iters = i + 1;
        let recursive_rel = gamma.to_f64().abs().sqrt() / norm_b;
        let true_rel =
            if opts.record_true_residual { true_relative_residual(a, &x, b) } else { f64::NAN };
        history.push(IterationRecord { iter: iters, recursive_rel, true_rel });

        gamma_prev = gamma;
        alpha_prev = alpha;

        if recursive_rel < opts.rtol {
            outcome = BiCgStabOutcome::Converged;
            break;
        }
    }

    (SolveResult { x, outcome, iters, history, ops }, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::policy::Fp64;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;

    fn spd_problem() -> (DiaMatrix<f64>, Vec<f64>, Vec<f64>) {
        let mesh = Mesh3D::new(6, 6, 6);
        let a = poisson(mesh);
        let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i * 13) % 17) as f64 * 0.1 - 0.5).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&exact, &mut b);
        (a, b, exact)
    }

    #[test]
    fn converges_like_standard_cg() {
        let (a, b, exact) = spd_problem();
        let opts = SolveOptions { max_iters: 200, rtol: 1e-9, record_true_residual: false };
        let (res, rounds) = cg_single_reduction::<Fp64>(&a, &b, &opts);
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
        let err = res.x.iter().zip(&exact).map(|(x, e)| (x - e).abs()).fold(0.0_f64, f64::max);
        assert!(err < 1e-6, "err {err}");

        let std = cg::<Fp64>(&a, &b, &opts);
        // Same iteration count within a couple (identical recurrences up to
        // rounding), but HALF the reduction rounds.
        assert!(
            (res.iters as i64 - std.iters as i64).abs() <= 3,
            "CG-CG {} vs CG {} iterations",
            res.iters,
            std.iters
        );
        assert_eq!(rounds.total, res.iters, "one round per iteration");
        // Standard CG does two rounds per iteration.
        assert!(rounds.total * 2 <= std.iters * 2 + 6);
    }

    #[test]
    fn trajectory_matches_standard_cg_early() {
        let (a, b, _) = spd_problem();
        let opts = SolveOptions { max_iters: 12, rtol: 0.0, record_true_residual: true };
        let (res, _) = cg_single_reduction::<Fp64>(&a, &b, &opts);
        let std = cg::<Fp64>(&a, &b, &opts);
        for (r1, r2) in res.history.records.iter().zip(&std.history.records).take(8) {
            let ratio = (r1.true_rel / r2.true_rel).max(r2.true_rel / r1.true_rel);
            assert!(ratio < 1.01, "iter {}: {} vs {}", r1.iter, r1.true_rel, r2.true_rel);
        }
    }

    #[test]
    fn works_on_unit_diagonal_form() {
        let (a, b, _) = spd_problem();
        let sys = jacobi_scale(&a, &b);
        let opts = SolveOptions { max_iters: 200, rtol: 1e-8, record_true_residual: false };
        let (res, _) = cg_single_reduction::<Fp64>(&sys.matrix, &sys.rhs, &opts);
        assert_eq!(res.outcome, BiCgStabOutcome::Converged);
    }

    #[test]
    fn narrowing_overflow_reports_non_finite() {
        // A ≈ εI with ε at the fp16 subnormal floor. γ = (r, r) ≈ n while
        // δ = (r, A r) ≈ εn, so α = γ/δ ≈ 1/ε ≈ 1.7e5 — finite in the f32
        // global precision but past fp16's 65504 max, so narrowing α to
        // storage precision rounds to +∞ and the solver must stop with the
        // NonFinite outcome rather than poisoning x and r silently.
        use crate::policy::MixedF16;
        use stencil::dia::Offset3;
        use wse_float::F16;

        let mesh = Mesh3D::new(2, 2, 2);
        let mut a: DiaMatrix<F16> = DiaMatrix::new(mesh, &[Offset3::CENTER]);
        let eps = F16::from_f64(6e-6);
        assert!(eps.to_f64() > 0.0, "ε must stay representable");
        a.band_mut(0).fill(eps);
        let b = vec![F16::from_f64(1.0); mesh.len()];

        let opts = SolveOptions { max_iters: 10, rtol: 1e-12, record_true_residual: false };
        let (res, rounds) = cg_single_reduction::<MixedF16>(&a, &b, &opts);
        assert_eq!(res.outcome, BiCgStabOutcome::NonFinite);
        // The breakdown is detected before the update phase of the first
        // iteration commits: no iterate was produced.
        assert_eq!(res.iters, 0);
        assert_eq!(rounds.total, 1);
        assert!(res.x.iter().all(|v| !v.is_non_finite()), "x must not be poisoned");
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let (a, _, _) = spd_problem();
        let (res, rounds) =
            cg_single_reduction::<Fp64>(&a, &vec![0.0; a.nrows()], &SolveOptions::default());
        assert_eq!(res.iters, 0);
        assert_eq!(rounds.total, 0);
    }
}
