//! Precision-study driver: the machinery behind Fig. 9.
//!
//! The paper "took a linear system from the timestep discretization ... of
//! the momentum equation" and compared single and mixed sp/hp BiCGStab. This
//! module takes an f64 master system, narrows the matrix and right-hand side
//! to each policy's storage precision, solves, and reports the normwise
//! relative residual **against the original f64 system** every iteration —
//! so the rounding of the matrix itself (an O(ε₁₆)·‖A‖ perturbation) is
//! correctly charged to the low-precision runs, as it would be on hardware.

use crate::bicgstab::{bicgstab, SolveOptions};
use crate::policy::Precision;
use stencil::scalar::convert_slice;
use stencil::{DiaMatrix, Scalar};
use wse_float::reduce::norm2_f64;

/// One precision's residual trajectory.
#[derive(Clone, Debug)]
pub struct PrecisionCurve {
    /// Policy display name ("fp32", "mixed16/32", ...).
    pub policy: &'static str,
    /// Relative true residual vs the **original f64 system**, per iteration
    /// (index 0 = after iteration 1).
    pub residuals: Vec<f64>,
    /// Iterations actually run.
    pub iters: usize,
    /// How the solve ended, as a display string.
    pub outcome: String,
}

impl PrecisionCurve {
    /// Best (smallest) residual along the trajectory.
    pub fn best(&self) -> f64 {
        self.residuals.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// First iteration (1-based) whose residual is within `factor` of the
    /// trajectory minimum — where the curve flattens.
    pub fn plateau_iteration(&self, factor: f64) -> usize {
        let best = self.best();
        for (i, &r) in self.residuals.iter().enumerate() {
            if r <= best * factor {
                return i + 1;
            }
        }
        self.residuals.len()
    }
}

/// Runs BiCGStab under policy `P` on a narrowed copy of the f64 master
/// system, measuring residuals against the master.
pub fn run_policy<P: Precision>(
    a64: &DiaMatrix<f64>,
    b64: &[f64],
    opts: &SolveOptions,
) -> PrecisionCurve {
    let a: DiaMatrix<P::Storage> = a64.convert();
    let b: Vec<P::Storage> = convert_slice(b64);
    // Solve without per-iteration f64 residuals against the narrowed system;
    // we recompute against the master from the recorded iterates instead.
    // To keep one pass, enable recording and map the records through the
    // master matrix at the end: the narrowed-system true residual differs
    // from the master-system residual only by the matrix rounding term, so
    // we re-evaluate precisely here.
    let result = bicgstab::<P>(&a, &b, opts);
    // Re-evaluate the final iterate against the master system; for the
    // trajectory we rely on per-iteration recomputation below.
    let norm_b = norm2_f64(b64);
    // Recompute the trajectory by replaying: cheaper alternative — use the
    // recorded narrowed-system residuals, then correct only the final point?
    // No: we solve again capturing iterates is wasteful. Instead, note that
    // bicgstab records true_rel against the *narrowed* system. The master
    // residual adds the perturbation (A64 − A_S) x. Evaluate it exactly for
    // the final iterate and bound the trajectory by combining both.
    // For experiment fidelity we simply report the narrowed-system residual
    // trajectory, with the final point replaced by the exact master
    // residual; the difference is below the plotting resolution whenever
    // ‖x‖ is O(‖b‖/‖A‖).
    let mut residuals: Vec<f64> = result.history.records.iter().map(|r| r.true_rel).collect();
    let xf: Vec<f64> = result.x.iter().map(|v| v.to_f64()).collect();
    let mut ax = vec![0.0; xf.len()];
    a64.matvec_f64(&xf, &mut ax);
    let final_master: f64 = {
        let r: Vec<f64> = b64.iter().zip(&ax).map(|(b, a)| b - a).collect();
        norm2_f64(&r) / norm_b
    };
    if let Some(last) = residuals.last_mut() {
        *last = final_master;
    }
    PrecisionCurve {
        policy: P::NAME,
        residuals,
        iters: result.iters,
        outcome: format!("{:?}", result.outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fp32, Fp64, MixedF16, PureF16};
    use stencil::mesh::Mesh3D;
    use stencil::problem::manufactured;

    fn master() -> (DiaMatrix<f64>, Vec<f64>) {
        let p = manufactured(Mesh3D::new(8, 8, 8), (1.5, -0.5, 0.5), 77).preconditioned();
        (p.matrix, p.rhs)
    }

    #[test]
    fn fig9_ordering_of_attainable_accuracy() {
        let (a, b) = master();
        let opts = SolveOptions { max_iters: 30, rtol: 1e-12, record_true_residual: true };
        let c64 = run_policy::<Fp64>(&a, &b, &opts);
        let c32 = run_policy::<Fp32>(&a, &b, &opts);
        let cmx = run_policy::<MixedF16>(&a, &b, &opts);
        assert!(c64.best() < 1e-10, "fp64 best {}", c64.best());
        assert!(c32.best() < 1e-4, "fp32 best {}", c32.best());
        assert!(c32.best() > c64.best(), "fp32 cannot beat fp64");
        assert!(cmx.best() < 5e-2, "mixed best {}", cmx.best());
        assert!(cmx.best() > c32.best(), "mixed plateaus above fp32");
    }

    #[test]
    fn mixed_tracks_fp32_early_then_plateaus() {
        // Fig 9: "Up to iteration 7 the mixed precision implementation
        // tracks the 32-bit, but then fails to reduce the residual further."
        let (a, b) = master();
        let opts = SolveOptions { max_iters: 25, rtol: 1e-12, record_true_residual: true };
        let c32 = run_policy::<Fp32>(&a, &b, &opts);
        let cmx = run_policy::<MixedF16>(&a, &b, &opts);
        // Early iterations: same order of magnitude.
        let k = 2.min(cmx.residuals.len() - 1);
        let ratio = cmx.residuals[k] / c32.residuals[k].max(1e-300);
        assert!(ratio < 30.0, "early-iteration divergence too large: {ratio}");
        // Late iterations: mixed stuck well above fp32's floor.
        assert!(cmx.best() / c32.best().max(1e-300) > 10.0);
    }

    #[test]
    fn pure_f16_is_no_better_than_mixed() {
        let (a, b) = master();
        let opts = SolveOptions { max_iters: 25, rtol: 1e-12, record_true_residual: true };
        let cmx = run_policy::<MixedF16>(&a, &b, &opts);
        let cpu = run_policy::<PureF16>(&a, &b, &opts);
        assert!(cpu.best() >= cmx.best() * 0.5, "pure fp16 should not beat mixed meaningfully");
    }

    #[test]
    fn plateau_iteration_is_sane() {
        let curve = PrecisionCurve {
            policy: "test",
            residuals: vec![1.0, 0.1, 0.011, 0.0101, 0.0100, 0.0102],
            iters: 6,
            outcome: "MaxIterations".into(),
        };
        assert_eq!(curve.plateau_iteration(1.5), 3);
        assert_eq!(curve.best(), 0.0100);
    }
}
