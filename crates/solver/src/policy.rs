//! Precision policies.
//!
//! A policy fixes two types: the **storage** scalar used for vectors, matrix
//! diagonals and AXPY arithmetic, and the **global** scalar used for dot
//! products and the α/ω/β coefficient arithmetic. The paper's production
//! configuration is [`MixedF16`]: "0.86 PFLOPS in mixed precision floating
//! point that uses 16-bit for all arithmetic except the inner products and a
//! mixed precision inner product with 16-bit multiply and 32-bit add".

use stencil::Scalar;
use wse_float::{dot_mixed, dot_pure_f16, F16};

/// A floating-point precision configuration for the solvers.
pub trait Precision: 'static {
    /// Vector / matrix storage scalar; AXPY and SpMV round in this type.
    type Storage: Scalar;
    /// Scalar used for dot-product results and coefficient arithmetic.
    type Global: Scalar;
    /// Display name used in experiment output.
    const NAME: &'static str;

    /// Inner product of storage vectors, accumulated in the global type.
    ///
    /// # Panics
    /// Implementations panic on length mismatch.
    fn dot(x: &[Self::Storage], y: &[Self::Storage]) -> Self::Global;
}

/// Everything in binary64 (the cluster baseline: "64-bit floating point
/// results obtained on Joule").
pub struct Fp64;

impl Precision for Fp64 {
    type Storage = f64;
    type Global = f64;
    const NAME: &'static str = "fp64";

    fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot operand length mismatch");
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }
}

/// Everything in binary32 (the "Single precision" curve of Fig. 9).
pub struct Fp32;

impl Precision for Fp32 {
    type Storage = f32;
    type Global = f32;
    const NAME: &'static str = "fp32";

    fn dot(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot operand length mismatch");
        let mut acc = 0.0f32;
        for (a, b) in x.iter().zip(y) {
            acc += a * b;
        }
        acc
    }
}

/// The paper's configuration: fp16 storage and AXPY/SpMV arithmetic, dot
/// products with fp16 multiplies and fp32 accumulation ("Mixed sp/hp" in
/// Fig. 9).
pub struct MixedF16;

impl Precision for MixedF16 {
    type Storage = F16;
    type Global = f32;
    const NAME: &'static str = "mixed16/32";

    fn dot(x: &[F16], y: &[F16]) -> f32 {
        dot_mixed(x, y)
    }
}

/// Ablation: *everything* in fp16, including dot-product accumulation. The
/// paper's design avoids this; comparing against [`MixedF16`] quantifies why
/// the mixed inner-product instruction matters.
pub struct PureF16;

impl Precision for PureF16 {
    type Storage = F16;
    type Global = F16;
    const NAME: &'static str = "pure-fp16";

    fn dot(x: &[F16], y: &[F16]) -> F16 {
        dot_pure_f16(x, y)
    }
}

/// Counts of floating-point operations by kernel and by precision class,
/// accumulated by the solvers. This is the raw material for Table I.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Multiplies inside SpMV (storage precision).
    pub matvec_mul: u64,
    /// Adds inside SpMV (storage precision).
    pub matvec_add: u64,
    /// Multiplies inside dot products (storage precision on the wafer's
    /// mixed instruction).
    pub dot_mul: u64,
    /// Adds inside dot products (**global** precision — fp32 under
    /// [`MixedF16`]).
    pub dot_add: u64,
    /// Multiplies inside AXPY-family updates (storage precision).
    pub axpy_mul: u64,
    /// Adds inside AXPY-family updates (storage precision).
    pub axpy_add: u64,
}

impl OpCounts {
    /// Total floating-point operations.
    pub fn total(&self) -> u64 {
        self.matvec_mul
            + self.matvec_add
            + self.dot_mul
            + self.dot_add
            + self.axpy_mul
            + self.axpy_add
    }

    /// Operations that execute in storage (half, under mixed) precision.
    pub fn storage_ops(&self) -> u64 {
        self.total() - self.dot_add
    }

    /// Operations that execute in global (single, under mixed) precision.
    pub fn global_ops(&self) -> u64 {
        self.dot_add
    }

    /// Per-meshpoint per-iteration averages, the form Table I reports.
    pub fn per_point_per_iter(&self, points: usize, iters: usize) -> PerPointOps {
        let denom = (points * iters) as f64;
        PerPointOps {
            matvec_mul: self.matvec_mul as f64 / denom,
            matvec_add: self.matvec_add as f64 / denom,
            dot_mul: self.dot_mul as f64 / denom,
            dot_add: self.dot_add as f64 / denom,
            axpy_mul: self.axpy_mul as f64 / denom,
            axpy_add: self.axpy_add as f64 / denom,
        }
    }
}

/// Per-meshpoint per-iteration operation averages (Table I rows).
#[derive(Copy, Clone, Debug, Default)]
pub struct PerPointOps {
    /// SpMV multiplies per point per iteration (paper: 12).
    pub matvec_mul: f64,
    /// SpMV adds per point per iteration (paper: 12).
    pub matvec_add: f64,
    /// Dot multiplies per point per iteration (paper: 4).
    pub dot_mul: f64,
    /// Dot adds per point per iteration (paper: 4).
    pub dot_add: f64,
    /// AXPY multiplies per point per iteration (paper: 6).
    pub axpy_mul: f64,
    /// AXPY adds per point per iteration (paper: 6).
    pub axpy_add: f64,
}

impl PerPointOps {
    /// Grand total per point per iteration (paper: 44).
    pub fn total(&self) -> f64 {
        self.matvec_mul
            + self.matvec_add
            + self.dot_mul
            + self.dot_add
            + self.axpy_mul
            + self.axpy_add
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert_eq!(Fp64::NAME, "fp64");
        assert_eq!(Fp32::NAME, "fp32");
        assert_eq!(MixedF16::NAME, "mixed16/32");
        assert_eq!(PureF16::NAME, "pure-fp16");
    }

    #[test]
    fn dots_agree_on_exact_inputs() {
        let x64 = vec![1.0f64, 2.0, 3.0];
        let y64 = vec![0.5f64, -1.0, 2.0];
        assert_eq!(Fp64::dot(&x64, &y64), 4.5);
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let y32: Vec<f32> = y64.iter().map(|&v| v as f32).collect();
        assert_eq!(Fp32::dot(&x32, &y32), 4.5);
        let xh: Vec<F16> = x64.iter().map(|&v| F16::from_f64(v)).collect();
        let yh: Vec<F16> = y64.iter().map(|&v| F16::from_f64(v)).collect();
        assert_eq!(MixedF16::dot(&xh, &yh), 4.5);
        assert_eq!(PureF16::dot(&xh, &yh).to_f64(), 4.5);
    }

    #[test]
    fn mixed_dot_accumulates_in_f32() {
        let x = vec![F16::ONE; 4096];
        assert_eq!(MixedF16::dot(&x, &x), 4096.0);
        assert_eq!(PureF16::dot(&x, &x).to_f64(), 2048.0); // fp16 stagnation
    }

    #[test]
    fn opcounts_partition() {
        let c = OpCounts {
            matvec_mul: 12,
            matvec_add: 12,
            dot_mul: 4,
            dot_add: 4,
            axpy_mul: 6,
            axpy_add: 6,
        };
        assert_eq!(c.total(), 44);
        assert_eq!(c.storage_ops(), 40);
        assert_eq!(c.global_ops(), 4);
        let pp = c.per_point_per_iter(1, 1);
        assert_eq!(pp.total(), 44.0);
    }
}
