//! Spectral estimation: extreme singular values and condition numbers.
//!
//! Fig. 9's plateau is a conditioning story — "the growth of rounding errors
//! during the iterative solve explains the loss of an additional factor of
//! 10" beyond fp16's ~1e-3 precision. This module estimates `κ₂(A)` by power
//! iteration on `AᵀA` (largest singular value) and on the shifted operator
//! `σ²I − AᵀA` (smallest), so experiments can report the conditioning of the
//! systems whose plateaus they measure.

use stencil::DiaMatrix;

/// Result of a condition estimate.
#[derive(Copy, Clone, Debug)]
pub struct ConditionEstimate {
    /// Estimated largest singular value.
    pub sigma_max: f64,
    /// Estimated smallest singular value.
    pub sigma_min: f64,
    /// `σ_max / σ_min`.
    pub kappa: f64,
}

fn normalize(v: &mut [f64]) -> f64 {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// `w = AᵀA v` using the DIA forward and transpose matvecs.
fn ata(a: &DiaMatrix<f64>, v: &[f64], tmp: &mut [f64], w: &mut [f64]) {
    a.matvec_f64(v, tmp);
    a.matvec_transpose_f64(tmp, w);
}

/// Estimates the extreme singular values of `a` by `iters` rounds of power
/// iteration (deterministic start vector, so results are reproducible).
///
/// Accuracy is that of power iteration: good for the dominant value,
/// order-of-magnitude for the smallest on clustered spectra — sufficient for
/// reporting conditioning regimes.
pub fn estimate_condition(a: &DiaMatrix<f64>, iters: usize) -> ConditionEstimate {
    let n = a.nrows();
    assert!(n > 0);
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 2654435761) % 97) as f64 / 97.0).collect();
    let mut tmp = vec![0.0; n];
    let mut w = vec![0.0; n];
    normalize(&mut v);

    // λ_max(AᵀA).
    let mut lambda_max = 0.0;
    for _ in 0..iters {
        ata(a, &v, &mut tmp, &mut w);
        lambda_max = normalize(&mut w);
        std::mem::swap(&mut v, &mut w);
    }

    // λ_min(AᵀA) via the shifted operator σ²I − AᵀA (power iteration finds
    // its dominant eigenvalue σ² − λ_min).
    let sigma2 = lambda_max * 1.0001;
    let mut u: Vec<f64> = (0..n).map(|i| 1.0 - ((i * 40503) % 89) as f64 / 89.0).collect();
    normalize(&mut u);
    let mut mu = 0.0;
    for _ in 0..iters {
        ata(a, &u, &mut tmp, &mut w);
        for j in 0..n {
            w[j] = sigma2 * u[j] - w[j];
        }
        mu = normalize(&mut w);
        std::mem::swap(&mut u, &mut w);
    }
    let lambda_min = (sigma2 - mu).max(1e-300);

    let sigma_max = lambda_max.sqrt();
    let sigma_min = lambda_min.sqrt();
    ConditionEstimate { sigma_max, sigma_min, kappa: sigma_max / sigma_min }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;
    use stencil::variable::{anisotropic_diffusion, variable_diffusion, DiffusivityField};

    #[test]
    fn poisson_condition_matches_theory() {
        // 1D-per-axis theory: κ₂ of the n³ Dirichlet Laplacian ≈
        // (2/π)²·(n+1)² for large n; for n = 6 the exact value is
        // λmax/λmin = (6·cos²(π/14)·…) — just check the right regime and
        // monotone growth with n.
        let k4 = estimate_condition(&poisson(Mesh3D::new(4, 4, 4)), 200).kappa;
        let k8 = estimate_condition(&poisson(Mesh3D::new(8, 8, 8)), 400).kappa;
        assert!(k4 > 2.0 && k4 < 30.0, "κ(4³) = {k4}");
        assert!(k8 > 2.0 * k4 * 0.8, "κ grows ~quadratically with n: {k4} -> {k8}");
    }

    #[test]
    fn sigma_max_of_poisson_is_near_12() {
        // ‖A‖₂ of the 7-point Laplacian (diag 6, neighbors −1) is below the
        // ∞-norm bound 12 and approaches it with size.
        let est = estimate_condition(&poisson(Mesh3D::new(8, 8, 8)), 300);
        assert!(est.sigma_max < 12.0 + 1e-6);
        assert!(est.sigma_max > 9.0, "σmax {}", est.sigma_max);
    }

    #[test]
    fn jacobi_scaling_helps_heterogeneous_conditioning() {
        let mesh = Mesh3D::new(5, 5, 5);
        let field = DiffusivityField::random(mesh, 1e-3, 1.0, 3);
        let a = variable_diffusion(&field);
        let raw = estimate_condition(&a, 250).kappa;
        let scaled = jacobi_scale(&a, &vec![0.0; mesh.len()]);
        let pre = estimate_condition(&scaled.matrix, 250).kappa;
        assert!(pre < raw, "diagonal preconditioning must reduce κ here: {raw:.1} -> {pre:.1}");
    }

    #[test]
    fn anisotropy_scales_sigma_but_not_kappa() {
        // For the uniform Dirichlet Laplacian, per-axis conductance scaling
        // multiplies *both* extreme eigenvalues by (almost) the same factor:
        // eigenvalues are Σ_a 2k_a(1 ± cos θ) with the same θ per axis — so
        // κ barely moves while σ_max tracks the dominant conductance. (The
        // anisotropy pain is a smoother/multigrid story, not a κ story.)
        let mesh = Mesh3D::new(5, 5, 5);
        let iso = estimate_condition(&anisotropic_diffusion(mesh, 1.0, 1.0, 1.0), 250);
        let aniso = estimate_condition(&anisotropic_diffusion(mesh, 1.0, 1.0, 50.0), 250);
        assert!(
            aniso.sigma_max > 10.0 * iso.sigma_max,
            "σmax tracks conductance: {} vs {}",
            iso.sigma_max,
            aniso.sigma_max
        );
        let ratio = (aniso.kappa / iso.kappa).max(iso.kappa / aniso.kappa);
        assert!(ratio < 1.5, "κ nearly invariant: {:.1} vs {:.1}", iso.kappa, aniso.kappa);
    }

    #[test]
    fn estimates_are_deterministic() {
        let a = poisson(Mesh3D::new(4, 4, 4));
        let e1 = estimate_condition(&a, 100);
        let e2 = estimate_condition(&a, 100);
        assert_eq!(e1.kappa, e2.kappa);
    }
}
