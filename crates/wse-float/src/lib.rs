//! Software implementation of the floating-point datapath of the Cerebras
//! CS-1 wafer-scale engine, as described in *Fast Stencil-Code Computation on
//! a Wafer-Scale Processor* (SC'20).
//!
//! The CS-1 instruction set operates on IEEE 754 binary16 (`fp16`) and
//! binary32 (`fp32`) values. Three arithmetic flavours matter for the paper:
//!
//! * **Pure fp16** — adds, multiplies and fused multiply-accumulates
//!   (FMAC, *"with no rounding of the product prior to the add"*) executed
//!   4-wide SIMD. Used for the AXPY and SpMV kernels.
//! * **Mixed precision** — fp16 multiplies feeding fp32 accumulation, used by
//!   the hardware inner-product instruction. The paper's BiCGStab does its
//!   four dot products this way.
//! * **Pure fp32** — one FMAC per core per cycle; used for the AllReduce.
//!
//! This crate provides bit-exact software equivalents:
//!
//! * [`F16`] — a bit-level binary16 with correctly rounded (round-to-nearest,
//!   ties-to-even) arithmetic,
//! * [`F16x4`] — the 4-lane SIMD view of the datapath,
//! * [`mixed`] — mixed-precision FMAC/dot accumulators,
//! * [`reduce`] — reference reductions (pairwise, compensated) used to build
//!   trustworthy baselines for the accuracy experiments (Fig. 9).
//!
//! # Correct rounding strategy
//!
//! binary32 carries 24 significand bits, which is `2 * 11 + 2` for binary16's
//! 11 — exactly the classical threshold at which *double rounding is
//! innocuous* for `+`, `-`, `*`, `/` and `sqrt`. So those operations convert
//! to `f32`, compute, and round back, and are nevertheless correctly rounded.
//! The fused multiply-accumulate needs more headroom (the exact product plus
//! an addend does not fit in 24 bits), so it computes in `f64`
//! (53 ≥ 2·11 + 2) and rounds once.

#![warn(missing_docs)]

pub mod f16;
pub mod mixed;
pub mod reduce;
pub mod simd;

pub use f16::F16;
pub use mixed::{dot_mixed, dot_pure_f16, MixedAccumulator};
pub use simd::F16x4;

/// Fused multiply-accumulate in binary16: `round16(a * b + c)` with a single
/// rounding, matching the CS-1 FMAC ("no rounding of the product prior to the
/// add").
///
/// The exact product of two binary16 values has at most 22 significand bits
/// and the exact sum with a binary16 addend at most ~53, so evaluating in
/// `f64` is exact and the final conversion performs the only rounding.
#[inline]
pub fn fma16(a: F16, b: F16, c: F16) -> F16 {
    F16::from_f64(a.to_f64() * b.to_f64() + c.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma16_single_rounding_differs_from_two_roundings() {
        // Choose operands where round(round(a*b) + c) != round(a*b + c).
        // a = 1 + 2^-10 (last ulp set), b = 1 + 2^-10. Product = 1 + 2^-9 + 2^-20.
        // Rounded product (11 bits) = 1 + 2^-9; exact keeps the 2^-20 tail.
        // c = -(1 + 2^-9) cancels the head, leaving 2^-20 vs 0.
        let a = F16::from_f64(1.0 + f64::powi(2.0, -10));
        let b = a;
        let c = -F16::from_f64(1.0 + f64::powi(2.0, -9));
        let fused = fma16(a, b, c);
        let unfused = a * b + c;
        assert!(fused.to_f64() > 0.0, "fused keeps the low product bits");
        assert_eq!(unfused.to_f64(), 0.0, "unfused rounds them away");
    }

    #[test]
    fn fma16_nan_propagates() {
        assert!(fma16(F16::NAN, F16::ONE, F16::ONE).is_nan());
        assert!(fma16(F16::ONE, F16::NAN, F16::ONE).is_nan());
        assert!(fma16(F16::ONE, F16::ONE, F16::NAN).is_nan());
    }
}
