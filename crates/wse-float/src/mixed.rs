//! Mixed-precision arithmetic: fp16 multiplies feeding fp32 accumulation.
//!
//! The paper: *"To control the growth of roundoff error, we use a hardware
//! inner product instruction that employs mixed 16-bit multiply / 32-bit add
//! precision, and we do the AllReduce at 32-bit precision."* The key property
//! is that the product of two binary16 values is **exact** in binary32 (11+11
//! significand bits ≤ 24), so the only rounding in the local dot product is
//! the fp32 accumulation.

use crate::f16::F16;

/// Running fp32 accumulator fed by exact fp16×fp16 products — the software
/// model of the CS-1 mixed-precision inner-product instruction.
#[derive(Copy, Clone, Debug, Default)]
pub struct MixedAccumulator {
    acc: f32,
}

impl MixedAccumulator {
    /// A fresh accumulator holding 0.0f32.
    #[inline]
    pub fn new() -> MixedAccumulator {
        MixedAccumulator { acc: 0.0 }
    }

    /// `acc += a * b` with the product formed exactly and the add rounded in
    /// fp32.
    #[inline]
    pub fn fmac(&mut self, a: F16, b: F16) {
        // The f32 product of two widened binary16 values is exact.
        self.acc += a.to_f32() * b.to_f32();
    }

    /// Adds an already-fp32 term (used when combining lane partials).
    #[inline]
    pub fn add_f32(&mut self, term: f32) {
        self.acc += term;
    }

    /// The accumulated fp32 value.
    #[inline]
    pub fn value(self) -> f32 {
        self.acc
    }
}

/// Mixed-precision dot product: fp16 multiplies (exact in fp32), fp32
/// sequential accumulation — the per-core local dot product of the paper's
/// BiCGStab.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_mixed(x: &[F16], y: &[F16]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot operand length mismatch");
    let mut acc = MixedAccumulator::new();
    for (&a, &b) in x.iter().zip(y) {
        acc.fmac(a, b);
    }
    acc.value()
}

/// Pure-fp16 dot product (ablation baseline): both multiply and accumulate
/// round to binary16. This is what the paper's design deliberately avoids;
/// the accuracy gap is quantified in the precision benches.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_pure_f16(x: &[F16], y: &[F16]) -> F16 {
    assert_eq!(x.len(), y.len(), "dot operand length mismatch");
    let mut acc = F16::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = crate::fma16(a, b, acc);
    }
    acc
}

/// Reference dot product in f64 over fp16 storage (error-free for the
/// lengths used here; baseline for accuracy measurements).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_f64(x: &[F16], y: &[F16]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot operand length mismatch");
    x.iter().zip(y).map(|(a, b)| a.to_f64() * b.to_f64()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f64) -> F16 {
        F16::from_f64(v)
    }

    #[test]
    fn product_of_halfs_is_exact_in_f32() {
        // Worst-case significands: (1 + (2^10-1)/2^10)^2 needs 22 bits.
        let a = F16::from_bits(0x3BFF); // just below 1.0: 1 - 2^-11... actually 0.99951
        let p32 = a.to_f32() * a.to_f32();
        let p64 = a.to_f64() * a.to_f64();
        assert_eq!(p32 as f64, p64, "f32 product must be exact");
    }

    #[test]
    fn mixed_dot_simple_values() {
        let x: Vec<F16> = (1..=8).map(|i| h(i as f64)).collect();
        let y = vec![h(1.0); 8];
        assert_eq!(dot_mixed(&x, &y), 36.0);
        assert_eq!(dot_pure_f16(&x, &y).to_f64(), 36.0);
        assert_eq!(dot_f64(&x, &y), 36.0);
    }

    #[test]
    fn mixed_beats_pure_f16_on_long_sums() {
        // Summing 4096 copies of 1.0: fp16 saturates at 2048 (adding 1 to
        // 2048 in fp16 is a no-op since ulp(2048) = 2), fp32 is exact.
        let n = 4096;
        let x = vec![F16::ONE; n];
        let mixed = dot_mixed(&x, &x);
        let pure = dot_pure_f16(&x, &x).to_f64();
        assert_eq!(mixed, n as f32);
        assert_eq!(pure, 2048.0, "fp16 accumulation stagnates at 2048");
    }

    #[test]
    fn mixed_dot_relative_error_bound() {
        // Sequential fp32 summation error <= (n-1) * eps32 * sum |x_i y_i|.
        let n = 10_000usize;
        let x: Vec<F16> = (0..n).map(|i| h(((i * 37 + 11) % 200) as f64 / 64.0 - 1.5)).collect();
        let y: Vec<F16> = (0..n).map(|i| h(((i * 53 + 3) % 128) as f64 / 64.0 - 1.0)).collect();
        let exact = dot_f64(&x, &y);
        let abs_sum: f64 = x.iter().zip(&y).map(|(a, b)| (a.to_f64() * b.to_f64()).abs()).sum();
        let err = (dot_mixed(&x, &y) as f64 - exact).abs();
        let bound = (n as f64) * (f32::EPSILON as f64) * abs_sum;
        assert!(err <= bound, "err {err} > bound {bound}");
    }

    #[test]
    fn accumulator_combines_f32_partials() {
        let mut acc = MixedAccumulator::new();
        acc.fmac(h(3.0), h(4.0));
        acc.add_f32(8.0);
        assert_eq!(acc.value(), 20.0);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_mixed(&[], &[]), 0.0);
        assert_eq!(dot_pure_f16(&[], &[]).to_f64(), 0.0);
    }
}
