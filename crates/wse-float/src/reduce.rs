//! Reference reduction algorithms.
//!
//! The on-wafer AllReduce accumulates fp32 partial sums along rows and
//! columns (a fixed, data-independent association order). For the accuracy
//! experiments we need trustworthy baselines: pairwise summation (error
//! growth O(log n)) and Kahan compensated summation (O(1)), both in f64.

/// Sequential left-to-right f32 summation — the association order of a single
/// fabric reduction lane.
pub fn sum_sequential_f32(v: &[f32]) -> f32 {
    v.iter().copied().fold(0.0, |a, b| a + b)
}

/// Pairwise (tree) summation in f32 — the association order of the Fig. 6
/// row/column reduction tree, whose error grows only logarithmically.
pub fn sum_pairwise_f32(v: &[f32]) -> f32 {
    match v.len() {
        0 => 0.0,
        1 => v[0],
        2 => v[0] + v[1],
        n => {
            let (lo, hi) = v.split_at(n / 2);
            sum_pairwise_f32(lo) + sum_pairwise_f32(hi)
        }
    }
}

/// Pairwise summation in f64 (reference).
pub fn sum_pairwise_f64(v: &[f64]) -> f64 {
    match v.len() {
        0 => 0.0,
        1 => v[0],
        2 => v[0] + v[1],
        n => {
            let (lo, hi) = v.split_at(n / 2);
            sum_pairwise_f64(lo) + sum_pairwise_f64(hi)
        }
    }
}

/// Kahan compensated summation in f64 — near-exact baseline.
pub fn sum_kahan_f64(v: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in v {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Euclidean norm of an f64 slice via compensated accumulation of squares.
pub fn norm2_f64(v: &[f64]) -> f64 {
    let sq: Vec<f64> = v.iter().map(|&x| x * x).collect();
    sum_kahan_f64(&sq).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(sum_sequential_f32(&[]), 0.0);
        assert_eq!(sum_pairwise_f32(&[]), 0.0);
        assert_eq!(sum_pairwise_f64(&[2.5]), 2.5);
        assert_eq!(sum_kahan_f64(&[]), 0.0);
    }

    #[test]
    fn all_agree_on_exact_sums() {
        let v: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let expect = 999.0 * 1000.0 / 2.0;
        assert_eq!(sum_sequential_f32(&v), expect);
        assert_eq!(sum_pairwise_f32(&v), expect);
        let v64: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        assert_eq!(sum_pairwise_f64(&v64), expect as f64);
        assert_eq!(sum_kahan_f64(&v64), expect as f64);
    }

    #[test]
    fn pairwise_more_accurate_than_sequential() {
        // Sum many small values onto a large head: sequential f32 loses the
        // tail, pairwise keeps most of it.
        let mut v = vec![1.0e8f32];
        v.extend(std::iter::repeat_n(1.0f32, 1 << 16));
        let exact = 1.0e8f64 + (1 << 16) as f64;
        let seq_err = (sum_sequential_f32(&v) as f64 - exact).abs();
        let pair_err = (sum_pairwise_f32(&v) as f64 - exact).abs();
        assert!(pair_err < seq_err, "pairwise {pair_err} !< sequential {seq_err}");
    }

    #[test]
    fn kahan_is_near_exact() {
        let v: Vec<f64> = (0..100_000).map(|i| ((i % 7) as f64 - 3.0) * 1e-3 + 1e7).collect();
        let exact: f64 = {
            // integer-exact computation of the same sum
            let base = 1e7f64 * 100_000.0;
            let resid: i64 = (0..100_000i64).map(|i| (i % 7) - 3).sum();
            base + resid as f64 * 1e-3
        };
        let err = (sum_kahan_f64(&v) - exact).abs();
        assert!(err <= 1e-6, "kahan err {err}");
    }

    #[test]
    fn norm2_matches_hand_value() {
        assert_eq!(norm2_f64(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_f64(&[]), 0.0);
    }
}
