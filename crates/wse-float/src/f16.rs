//! Bit-level IEEE 754 binary16 ("half precision", `fp16`).
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 explicit significand
//! bits (11 with the hidden bit). All conversions round to nearest with ties
//! to even, the only rounding mode the CS-1 datapath exposes.

use std::cmp::Ordering;
use std::fmt;
use std::num::FpCategory;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An IEEE 754 binary16 floating point number stored as its raw bit pattern.
///
/// Arithmetic is correctly rounded (round-to-nearest, ties-to-even); see the
/// crate docs for why routing through `f32`/`f64` achieves this.
#[derive(Copy, Clone, Default)]
pub struct F16(u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Two.
    pub const TWO: F16 = F16(0x4000);
    /// One half.
    pub const HALF: F16 = F16(0x3800);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Machine epsilon: the gap between 1.0 and the next representable
    /// value, `2^-10`. The paper quotes "machine precision is about 1e-3"
    /// for this format.
    pub const EPSILON: F16 = F16(0x1400);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Most negative finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);

    /// Number of significand bits including the hidden bit.
    pub const MANTISSA_DIGITS: u32 = 11;

    /// Reinterprets raw bits as an `F16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest (ties to even).
    #[inline]
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Converts from `f64`, rounding to nearest (ties to even).
    ///
    /// Performed as a single rounding directly from the binary64 encoding;
    /// going through `f32` first could double-round (24 bits is enough
    /// headroom for *arithmetic on f16 operands*, not for arbitrary `f64`
    /// inputs).
    #[inline]
    pub fn from_f64(value: f64) -> F16 {
        F16(f64_to_f16_bits(value))
    }

    /// Widens to `f32` (exact: every binary16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// `true` if the value is +∞ or -∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` if the value is subnormal (nonzero with a zero exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// `true` for +0.0 and -0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// `true` if the sign bit is set (includes -0.0 and NaNs with the sign
    /// bit set).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// IEEE classification of the value.
    pub fn classify(self) -> FpCategory {
        match (self.0 & EXP_MASK, self.0 & MAN_MASK) {
            (0, 0) => FpCategory::Zero,
            (0, _) => FpCategory::Subnormal,
            (EXP_MASK, 0) => FpCategory::Infinite,
            (EXP_MASK, _) => FpCategory::Nan,
            _ => FpCategory::Normal,
        }
    }

    /// Absolute value (clears the sign bit; exact).
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// Correctly rounded square root.
    ///
    /// `sqrt` is one of the operations for which double rounding through
    /// binary32 is innocuous at this precision.
    #[inline]
    pub fn sqrt(self) -> F16 {
        F16::from_f32(self.to_f32().sqrt())
    }

    /// Correctly rounded reciprocal `1/x`.
    #[inline]
    pub fn recip(self) -> F16 {
        F16::from_f32(1.0 / self.to_f32())
    }

    /// IEEE `minNum`: the smaller operand, preferring a number over NaN.
    #[inline]
    pub fn min(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// IEEE `maxNum`: the larger operand, preferring a number over NaN.
    #[inline]
    pub fn max(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// IEEE 754 `totalOrder` predicate, mirroring [`f32::total_cmp`].
    pub fn total_cmp(&self, other: &F16) -> Ordering {
        let mut l = self.0 as i16;
        let mut r = other.0 as i16;
        l ^= (((l >> 15) as u16) >> 1) as i16;
        r ^= (((r >> 15) as u16) >> 1) as i16;
        l.cmp(&r)
    }

    /// Next representable value toward +∞ (saturates at +∞; NaN maps to NaN).
    pub fn next_up(self) -> F16 {
        if self.is_nan() || self.0 == Self::INFINITY.0 {
            return self;
        }
        if self.0 == Self::NEG_ZERO.0 || self.0 == Self::ZERO.0 {
            return Self::MIN_POSITIVE_SUBNORMAL;
        }
        if self.is_sign_negative() {
            F16(self.0 - 1)
        } else {
            F16(self.0 + 1)
        }
    }

    /// Distance from `self` to `other` in units-in-the-last-place of the
    /// binary16 lattice (using the monotone total-order mapping). Useful in
    /// accuracy tests.
    pub fn ulp_distance(self, other: F16) -> u32 {
        fn key(h: F16) -> i32 {
            let b = h.0 as i32;
            if b & (SIGN_MASK as i32) != 0 {
                (SIGN_MASK as i32) - b
            } else {
                b
            }
        }
        (key(self) - key(other)).unsigned_abs()
    }
}

/// Lossless widening conversion (standard bit algorithm with subnormal
/// renormalization).
fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & SIGN_MASK) as u32) << 16;
    let exp = ((bits & EXP_MASK) >> 10) as u32;
    let man = (bits & MAN_MASK) as u32;
    let out = match (exp, man) {
        (0, 0) => sign, // signed zero
        (0, _) => {
            // Subnormal: value = man * 2^-24 with man in [1, 1023].
            // Renormalize: put the top set bit (position k) at the hidden-bit
            // position 10; the f32 exponent is then (k - 24) + 127 = 113 - shift
            // with shift = 10 - k.
            let shift = man.leading_zeros() - 21;
            let man = (man << shift) & 0x3FF; // hidden bit dropped by the mask
            let exp = 113 - shift;
            sign | (exp << 23) | (man << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,               // infinity
        (0x1F, _) => sign | 0x7F80_0000 | (man << 13), // NaN, keep payload
        _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(out)
}

/// Narrowing conversion with round-to-nearest, ties-to-even.
fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & (SIGN_MASK as u32)) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        return if man == 0 {
            sign | EXP_MASK // infinity
        } else {
            // NaN: preserve the top payload bits, force quiet.
            sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK)
        };
    }

    // Unbiased exponent of the f32 value.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | EXP_MASK; // overflows to infinity
    }
    if unbiased >= -14 {
        // Normal range for f16: 10 explicit bits survive; 13 are rounded off.
        let half_exp = (unbiased + 15) as u32;
        let mut out = (half_exp << 10) | (man >> 13);
        // Round to nearest even on the 13 discarded bits.
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
            out += 1; // may carry into the exponent; that is correct
                      // (rounds up to the next binade or to infinity)
        }
        return sign | out as u16;
    }
    if unbiased >= -25 {
        // Subnormal f16 (or rounds up into the smallest normal).
        // Significand with hidden bit, aligned so bit 23 is the hidden bit.
        let man = man | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13; // total bits discarded
        let out = man >> shift;
        let rem = man & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = out as u16;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    sign // underflows to signed zero
}

/// Narrowing conversion from binary64 with a single round-to-nearest-even.
fn f64_to_f16_bits(value: f64) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 48) & (SIGN_MASK as u64)) as u16;
    let exp = ((bits >> 52) & 0x7FF) as i32;
    let man = bits & 0x000F_FFFF_FFFF_FFFF;

    if exp == 0x7FF {
        return if man == 0 {
            sign | EXP_MASK
        } else {
            sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & MAN_MASK)
        };
    }

    let unbiased = exp - 1023;
    if unbiased > 15 {
        return sign | EXP_MASK;
    }
    if unbiased >= -14 {
        let half_exp = (unbiased + 15) as u64;
        let mut out = ((half_exp << 10) | (man >> 42)) as u32;
        let rem = man & 0x3FF_FFFF_FFFF;
        let halfway = 0x200_0000_0000u64;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    if unbiased >= -25 {
        let man = man | 0x0010_0000_0000_0000;
        let shift = (-14 - unbiased) as u32 + 42;
        let out = man >> shift;
        let rem = man & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        let mut out = out as u16;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    // Below 2^-25 in magnitude, i.e. strictly under half the smallest
    // subnormal: rounds to signed zero. (The exact halfway point 2^-25 has
    // unbiased == -25 and is handled above, where it ties to even = zero.)
    sign
}

impl PartialEq for F16 {
    fn eq(&self, other: &F16) -> bool {
        self.to_f32() == other.to_f32() // IEEE semantics: NaN != NaN, -0 == +0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Add for F16 {
    type Output = F16;
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl SubAssign for F16 {
    #[inline]
    fn sub_assign(&mut self, rhs: F16) {
        *self = *self - rhs;
    }
}

impl MulAssign for F16 {
    #[inline]
    fn mul_assign(&mut self, rhs: F16) {
        *self = *self * rhs;
    }
}

impl DivAssign for F16 {
    #[inline]
    fn div_assign(&mut self, rhs: F16) {
        *self = *self / rhs;
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(v: F16) -> f64 {
        v.to_f64()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl FromStr for F16 {
    type Err = std::num::ParseFloatError;
    fn from_str(s: &str) -> Result<F16, Self::Err> {
        Ok(F16::from_f64(s.parse::<f64>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::TWO.to_f32(), 2.0);
        assert_eq!(F16::HALF.to_f32(), 0.5);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::EPSILON.to_f64(), f64::powi(2.0, -10));
        assert_eq!(F16::MIN_POSITIVE.to_f64(), f64::powi(2.0, -14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f64(), f64::powi(2.0, -24));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_sign_negative());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn machine_precision_near_1e_minus_3() {
        // The paper: "With this precision, machine precision is about 1e-3".
        let eps = F16::EPSILON.to_f64();
        assert!(eps > 5e-4 && eps < 2e-3, "eps = {eps}");
    }

    #[test]
    fn roundtrip_all_finite_bit_patterns_through_f32() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn roundtrip_all_finite_bit_patterns_through_f64() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f64(h.to_f64()).is_nan());
            } else {
                assert_eq!(F16::from_f64(h.to_f64()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn f32_conversion_agrees_with_f64_conversion() {
        // Every f32 must round to the same f16 whether narrowed directly or
        // widened to f64 first (widening is exact, so these must agree).
        let mut x = 1.0e-9f32;
        while x < 1.0e9 {
            for v in [x, -x, x * 1.0000001, x * 0.9999999] {
                let a = F16::from_f32(v).to_bits();
                let b = F16::from_f64(v as f64).to_bits();
                assert_eq!(a, b, "v = {v}");
            }
            x *= 1.37;
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10: ties to 1 (even).
        assert_eq!(F16::from_f64(1.0 + f64::powi(2.0, -11)).to_f64(), 1.0);
        // 1 + 3*2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9: ties to even
        // mantissa (..10), i.e. 1 + 2^-9.
        assert_eq!(
            F16::from_f64(1.0 + 3.0 * f64::powi(2.0, -11)).to_f64(),
            1.0 + f64::powi(2.0, -9)
        );
        // Just above the halfway point rounds up.
        assert_eq!(
            F16::from_f64(1.0 + f64::powi(2.0, -11) + f64::powi(2.0, -20)).to_f64(),
            1.0 + f64::powi(2.0, -10)
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // first value that rounds up
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0); // rounds down to MAX
        assert!(F16::from_f32(1e30).is_infinite());
        assert!(F16::from_f32(-1e30).is_infinite());
        assert!(F16::from_f32(-1e30).is_sign_negative());
    }

    #[test]
    fn underflow_and_subnormals() {
        let tiny = f64::powi(2.0, -24);
        assert_eq!(F16::from_f64(tiny).to_bits(), 1);
        assert!(F16::from_f64(tiny).is_subnormal());
        // Halfway between 0 and the smallest subnormal ties to even (zero).
        assert_eq!(F16::from_f64(tiny / 2.0).to_bits(), 0);
        // Slightly above halfway rounds to the subnormal.
        assert_eq!(F16::from_f64(tiny * 0.5000001).to_bits(), 1);
        // Below half of the smallest subnormal: flushes to (signed) zero.
        assert_eq!(F16::from_f64(tiny / 4.0).to_bits(), 0);
        assert_eq!(F16::from_f64(-tiny / 4.0).to_bits(), SIGN_MASK);
        // Largest subnormal.
        let largest_sub = F16::from_bits(0x03FF);
        assert!(largest_sub.is_subnormal());
        assert_eq!(largest_sub.to_f64(), 1023.0 * f64::powi(2.0, -24));
    }

    #[test]
    fn rounding_carry_across_binade() {
        // The largest value below 2.0 plus half an ulp rounds up into the
        // next binade; the carry out of the mantissa must propagate.
        let below_two = F16::from_bits(0x3FFF); // 1.9990234375
        let v = below_two.to_f64() + f64::powi(2.0, -11);
        assert_eq!(F16::from_f64(v).to_f64(), 2.0);
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!(F16::NEG_ZERO, F16::ZERO);
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(!F16::ZERO.is_sign_negative());
        assert_eq!((-F16::ZERO).to_bits(), F16::NEG_ZERO.to_bits());
    }

    #[test]
    fn nan_comparisons() {
        assert_ne!(F16::NAN, F16::NAN);
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
        assert_eq!(F16::NAN.total_cmp(&F16::NAN), Ordering::Equal);
    }

    #[test]
    fn total_cmp_orders_the_lattice() {
        let seq = [
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            -F16::MIN_POSITIVE_SUBNORMAL,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::MIN_POSITIVE,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
        ];
        for w in seq.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less, "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn arithmetic_matches_f64_reference() {
        // Exhaustive over a spread of operand pairs: op in f16 must equal
        // round16(op computed exactly), exercising the double-rounding claim.
        let samples: Vec<F16> = (0..2000)
            .map(|i| F16::from_bits((i * 31 + 7) as u16))
            .filter(|h| h.is_finite())
            .collect();
        for &a in &samples {
            for &b in samples.iter().step_by(97) {
                let (af, bf) = (a.to_f64(), b.to_f64());
                assert_eq!((a + b).to_bits(), F16::from_f64(af + bf).to_bits(), "{a:?}+{b:?}");
                assert_eq!((a - b).to_bits(), F16::from_f64(af - bf).to_bits(), "{a:?}-{b:?}");
                assert_eq!((a * b).to_bits(), F16::from_f64(af * bf).to_bits(), "{a:?}*{b:?}");
            }
        }
    }

    #[test]
    fn division_and_sqrt_reference() {
        for i in 1..500u16 {
            let a = F16::from_bits(i * 64);
            if !a.is_finite() || a.is_zero() {
                continue;
            }
            let r = (F16::ONE / a).to_f64();
            let expect = F16::from_f64(1.0 / a.to_f64()).to_f64();
            assert_eq!(r, expect, "1/{a:?}");
            if !a.is_sign_negative() {
                assert_eq!(a.sqrt().to_bits(), F16::from_f64(a.to_f64().sqrt()).to_bits());
            }
        }
    }

    #[test]
    fn next_up_and_ulp_distance() {
        assert_eq!(F16::ZERO.next_up().to_bits(), 1);
        assert_eq!(F16::ONE.ulp_distance(F16::ONE), 0);
        assert_eq!(F16::ONE.ulp_distance(F16::ONE.next_up()), 1);
        assert_eq!(F16::NEG_ZERO.ulp_distance(F16::ZERO), 0);
        let a = F16::from_f32(-1.0);
        assert_eq!(a.ulp_distance(a.next_up()), 1);
    }

    #[test]
    fn nan_payload_preserved_on_narrowing() {
        let nan32 = f32::from_bits(0x7FC1_2000);
        assert!(F16::from_f32(nan32).is_nan());
        let nan64 = f64::from_bits(0x7FF8_1230_0000_0000);
        assert!(F16::from_f64(nan64).is_nan());
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(format!("{}", F16::from_f32(1.5)), "1.5");
        assert_eq!("0.25".parse::<F16>().unwrap().to_f32(), 0.25);
        assert_eq!(format!("{:?}", F16::TWO), "2f16");
    }
}
