//! The 4-lane SIMD view of the CS-1 fp16 datapath.
//!
//! The core executes "floating point adds, multiplies, and fused
//! multiply-accumulate … in a 4-way SIMD manner for 16-bit operands", which
//! is how a single AXPY instruction sustains 4 FMACs (8 flops) per cycle.
//! [`F16x4`] models one such SIMD group; the slice helpers below model a full
//! tensor instruction sweeping a vector in groups of four.

use crate::f16::F16;
use crate::fma16;

/// Four binary16 lanes processed per cycle by the SIMD datapath.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct F16x4(pub [F16; 4]);

impl F16x4 {
    /// All four lanes set to `v`.
    #[inline]
    pub fn splat(v: F16) -> F16x4 {
        F16x4([v; 4])
    }

    /// All lanes zero.
    #[inline]
    pub fn zero() -> F16x4 {
        F16x4([F16::ZERO; 4])
    }

    /// Builds from a lane array.
    #[inline]
    pub fn from_array(a: [F16; 4]) -> F16x4 {
        F16x4(a)
    }

    /// Returns the lane array.
    #[inline]
    pub fn to_array(self) -> [F16; 4] {
        self.0
    }

    /// Lane-wise fused multiply-accumulate: `self * rhs + acc`, one rounding
    /// per lane.
    #[inline]
    pub fn fmac(self, rhs: F16x4, acc: F16x4) -> F16x4 {
        let mut out = [F16::ZERO; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = fma16(self.0[i], rhs.0[i], acc.0[i]);
        }
        F16x4(out)
    }

    /// Horizontal sum of the four lanes in fp32 (used by the mixed-precision
    /// dot-product instruction's final combine).
    #[inline]
    pub fn hsum_f32(self) -> f32 {
        (self.0[0].to_f32() + self.0[1].to_f32()) + (self.0[2].to_f32() + self.0[3].to_f32())
    }

    #[inline]
    fn zip(self, rhs: F16x4, f: impl Fn(F16, F16) -> F16) -> F16x4 {
        let mut out = [F16::ZERO; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(self.0[i], rhs.0[i]);
        }
        F16x4(out)
    }
}

/// Lane-wise addition.
impl std::ops::Add for F16x4 {
    type Output = F16x4;
    #[inline]
    fn add(self, rhs: F16x4) -> F16x4 {
        self.zip(rhs, |a, b| a + b)
    }
}

/// Lane-wise subtraction.
impl std::ops::Sub for F16x4 {
    type Output = F16x4;
    #[inline]
    fn sub(self, rhs: F16x4) -> F16x4 {
        self.zip(rhs, |a, b| a - b)
    }
}

/// Lane-wise multiplication.
impl std::ops::Mul for F16x4 {
    type Output = F16x4;
    #[inline]
    fn mul(self, rhs: F16x4) -> F16x4 {
        self.zip(rhs, |a, b| a * b)
    }
}

/// `y[i] = y[i] + alpha * x[i]` over whole slices using the fused per-lane
/// FMAC, the semantics of a single CS-1 AXPY tensor instruction.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy_f16(alpha: F16, x: &[F16], y: &mut [F16]) {
    assert_eq!(x.len(), y.len(), "axpy operand length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = fma16(alpha, xi, *yi);
    }
}

/// Elementwise product `out[i] = a[i] * b[i]`, the SpMV multiply stage.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_f16(a: &[F16], b: &[F16], out: &mut [F16]) {
    assert_eq!(a.len(), b.len(), "mul operand length mismatch");
    assert_eq!(a.len(), out.len(), "mul output length mismatch");
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Elementwise accumulate `acc[i] += t[i]`, the SpMV `sumtask` add stage.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_assign_f16(acc: &mut [F16], t: &[F16]) {
    assert_eq!(acc.len(), t.len(), "add operand length mismatch");
    for (a, &b) in acc.iter_mut().zip(t) {
        *a += b;
    }
}

/// Converts an `f64` slice to fp16 storage (rounding each element once).
pub fn to_f16_vec(v: &[f64]) -> Vec<F16> {
    v.iter().map(|&x| F16::from_f64(x)).collect()
}

/// Widens an fp16 slice to `f64` (exact).
pub fn to_f64_vec(v: &[F16]) -> Vec<f64> {
    v.iter().map(|x| x.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f64) -> F16 {
        F16::from_f64(v)
    }

    #[test]
    fn splat_and_lanes() {
        let v = F16x4::splat(h(3.0));
        assert_eq!(v.to_array(), [h(3.0); 4]);
        assert_eq!(F16x4::zero().to_array(), [F16::ZERO; 4]);
    }

    #[test]
    fn lanewise_ops_match_scalar() {
        let a = F16x4::from_array([h(1.0), h(2.0), h(3.0), h(4.0)]);
        let b = F16x4::from_array([h(0.5), h(0.25), h(-1.0), h(2.0)]);
        assert_eq!((a + b).to_array(), [h(1.5), h(2.25), h(2.0), h(6.0)]);
        assert_eq!((a - b).to_array(), [h(0.5), h(1.75), h(4.0), h(2.0)]);
        assert_eq!((a * b).to_array(), [h(0.5), h(0.5), h(-3.0), h(8.0)]);
    }

    #[test]
    fn fmac_is_fused_per_lane() {
        let a = F16x4::splat(h(1.0 + f64::powi(2.0, -10)));
        let c = F16x4::splat(-h(1.0 + f64::powi(2.0, -9)));
        let fused = a.fmac(a, c);
        for lane in fused.to_array() {
            assert!(lane.to_f64() > 0.0);
        }
    }

    #[test]
    fn hsum_pairs_then_combines() {
        let v = F16x4::from_array([h(1.0), h(2.0), h(3.0), h(4.0)]);
        assert_eq!(v.hsum_f32(), 10.0);
    }

    #[test]
    fn axpy_matches_reference() {
        let alpha = h(0.5);
        let x: Vec<F16> = (0..37).map(|i| h(i as f64 * 0.25 - 4.0)).collect();
        let mut y: Vec<F16> = (0..37).map(|i| h(1.0 + i as f64 * 0.125)).collect();
        let y0 = y.clone();
        axpy_f16(alpha, &x, &mut y);
        for i in 0..37 {
            let expect = F16::from_f64(alpha.to_f64() * x[i].to_f64() + y0[i].to_f64());
            assert_eq!(y[i].to_bits(), expect.to_bits(), "i={i}");
        }
    }

    #[test]
    fn mul_and_add_assign() {
        let a = vec![h(2.0); 9];
        let b: Vec<F16> = (0..9).map(|i| h(i as f64)).collect();
        let mut out = vec![F16::ZERO; 9];
        mul_f16(&a, &b, &mut out);
        let mut acc = vec![h(1.0); 9];
        add_assign_f16(&mut acc, &out);
        for (i, a) in acc.iter().enumerate() {
            assert_eq!(a.to_f64(), 1.0 + 2.0 * i as f64);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let x = vec![F16::ZERO; 3];
        let mut y = vec![F16::ZERO; 4];
        axpy_f16(F16::ONE, &x, &mut y);
    }

    #[test]
    fn conversion_helpers_roundtrip() {
        let v = vec![0.5, -0.25, 3.0];
        assert_eq!(to_f64_vec(&to_f16_vec(&v)), v);
    }
}
