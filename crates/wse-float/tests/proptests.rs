//! Property-based tests for the binary16 substrate.

use proptest::prelude::*;
use wse_float::{dot_mixed, fma16, F16};

fn arb_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_map(F16::from_bits)
}

fn arb_finite_f16() -> impl Strategy<Value = F16> {
    arb_f16().prop_filter("finite", |h| h.is_finite())
}

proptest! {
    /// Widening then narrowing is the identity on non-NaN values.
    #[test]
    fn roundtrip_f32(h in arb_f16()) {
        if h.is_nan() {
            prop_assert!(F16::from_f32(h.to_f32()).is_nan());
        } else {
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), h.to_bits());
        }
    }

    /// Narrowing any f32 through f64 gives the same result (f32→f64 exact).
    #[test]
    fn f32_and_f64_narrowing_agree(v in any::<f32>()) {
        let a = F16::from_f32(v);
        let b = F16::from_f64(v as f64);
        if a.is_nan() {
            prop_assert!(b.is_nan());
        } else {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// add/sub/mul are correctly rounded: they equal the f64-exact result
    /// rounded once.
    #[test]
    fn ops_correctly_rounded(a in arb_finite_f16(), b in arb_finite_f16()) {
        let (x, y) = (a.to_f64(), b.to_f64());
        prop_assert_eq!((a + b).to_bits(), F16::from_f64(x + y).to_bits());
        prop_assert_eq!((a - b).to_bits(), F16::from_f64(x - y).to_bits());
        prop_assert_eq!((a * b).to_bits(), F16::from_f64(x * y).to_bits());
    }

    /// Division is correctly rounded (f32 quotient then narrow; innocuous
    /// double rounding at 2p+2).
    #[test]
    fn div_correctly_rounded(a in arb_finite_f16(), b in arb_finite_f16()) {
        prop_assume!(!b.is_zero());
        let q = a / b;
        let exact = a.to_f64() / b.to_f64();
        let direct = F16::from_f64(exact);
        // f64 division of f16 operands is itself exact to f64 precision,
        // far beyond 2p+2, so the single-rounded reference is `direct`.
        if q.is_nan() {
            prop_assert!(direct.is_nan());
        } else {
            prop_assert_eq!(q.to_bits(), direct.to_bits());
        }
    }

    /// Addition commutes bit-for-bit on non-NaN results.
    #[test]
    fn add_commutes(a in arb_finite_f16(), b in arb_finite_f16()) {
        let lhs = a + b;
        let rhs = b + a;
        if !lhs.is_nan() {
            prop_assert_eq!(lhs.to_bits(), rhs.to_bits());
        }
    }

    /// x + 0 == x except for -0 bookkeeping.
    #[test]
    fn additive_identity(a in arb_finite_f16()) {
        let r = a + F16::ZERO;
        prop_assert_eq!(r.to_f64(), a.to_f64());
    }

    /// Negation is an involution on the bit pattern.
    #[test]
    fn neg_involution(a in arb_f16()) {
        prop_assert_eq!((-(-a)).to_bits(), a.to_bits());
    }

    /// abs clears the sign and preserves magnitude.
    #[test]
    fn abs_properties(a in arb_finite_f16()) {
        prop_assert!(!a.abs().is_sign_negative());
        prop_assert_eq!(a.abs().to_f64(), a.to_f64().abs());
    }

    /// Fused multiply-accumulate equals the exactly-computed, once-rounded
    /// reference.
    #[test]
    fn fma_single_rounded(a in arb_finite_f16(), b in arb_finite_f16(), c in arb_finite_f16()) {
        let fused = fma16(a, b, c);
        let reference = F16::from_f64(a.to_f64() * b.to_f64() + c.to_f64());
        if fused.is_nan() {
            prop_assert!(reference.is_nan());
        } else {
            prop_assert_eq!(fused.to_bits(), reference.to_bits());
        }
    }

    /// sqrt of a non-negative finite value is correctly rounded.
    #[test]
    fn sqrt_correctly_rounded(a in arb_finite_f16()) {
        prop_assume!(!a.is_sign_negative());
        let r = a.sqrt();
        prop_assert_eq!(r.to_bits(), F16::from_f64(a.to_f64().sqrt()).to_bits());
    }

    /// total_cmp is antisymmetric and agrees with partial_cmp on ordered
    /// values.
    #[test]
    fn total_cmp_consistent(a in arb_f16(), b in arb_f16()) {
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if let Some(ord) = a.partial_cmp(&b) {
            if !a.is_zero() || !b.is_zero() {
                prop_assert_eq!(a.total_cmp(&b), ord);
            }
        }
    }

    /// Mixed dot of short vectors is within the sequential-f32 error bound.
    #[test]
    fn mixed_dot_bounded_error(
        xs in prop::collection::vec(-100i32..100, 1..64),
        ys in prop::collection::vec(-100i32..100, 1..64),
    ) {
        let n = xs.len().min(ys.len());
        let x: Vec<F16> = xs[..n].iter().map(|&v| F16::from_f64(v as f64 / 16.0)).collect();
        let y: Vec<F16> = ys[..n].iter().map(|&v| F16::from_f64(v as f64 / 16.0)).collect();
        let exact: f64 = x.iter().zip(&y).map(|(a, b)| a.to_f64() * b.to_f64()).sum();
        let abs: f64 = x.iter().zip(&y).map(|(a, b)| (a.to_f64() * b.to_f64()).abs()).sum();
        let got = dot_mixed(&x, &y) as f64;
        let bound = n as f64 * f32::EPSILON as f64 * abs + 1e-12;
        prop_assert!((got - exact).abs() <= bound, "err {} bound {}", (got - exact).abs(), bound);
    }

    /// ulp_distance is a metric-ish: zero iff same lattice point (mod signed
    /// zero), symmetric.
    #[test]
    fn ulp_distance_symmetric(a in arb_finite_f16(), b in arb_finite_f16()) {
        prop_assert_eq!(a.ulp_distance(b), b.ulp_distance(a));
        prop_assert_eq!(a.ulp_distance(a), 0);
    }
}
