//! Exhaustive verification of the binary16 substrate over the entire
//! 65,536-point lattice — the strongest statement available for a 16-bit
//! type.

use wse_float::F16;

/// Every finite value's square root is correctly rounded against the f64
/// reference (f64 sqrt of an exactly-represented f16 is itself correctly
/// rounded far beyond 2p+2).
#[test]
fn sqrt_exhaustive() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        if h.is_nan() {
            assert!(h.sqrt().is_nan());
            continue;
        }
        let r = h.sqrt();
        if h.is_sign_negative() && !h.is_zero() {
            assert!(r.is_nan(), "sqrt of negative {h:?} must be NaN");
            continue;
        }
        let expect = F16::from_f64(h.to_f64().sqrt());
        assert_eq!(r.to_bits(), expect.to_bits(), "sqrt({h:?})");
    }
}

/// Every value's reciprocal is correctly rounded.
#[test]
fn recip_exhaustive() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        let r = h.recip();
        if h.is_nan() {
            assert!(r.is_nan());
            continue;
        }
        let expect = F16::from_f64(1.0 / h.to_f64());
        if expect.is_nan() {
            assert!(r.is_nan());
        } else {
            assert_eq!(r.to_bits(), expect.to_bits(), "recip({h:?})");
        }
    }
}

/// Negation flips exactly the sign bit for every pattern.
#[test]
fn neg_exhaustive() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        assert_eq!((-h).to_bits(), bits ^ 0x8000);
    }
}

/// `next_up` walks the entire non-negative lattice in exactly the
/// total-order sequence, and `ulp_distance` counts each step as 1.
#[test]
fn next_up_walks_the_lattice() {
    let mut h = F16::ZERO;
    let mut steps = 0u32;
    while h.to_bits() != F16::INFINITY.to_bits() {
        let next = h.next_up();
        assert!(next > h || (h.is_zero() && next > F16::ZERO), "{h:?} -> {next:?}");
        assert_eq!(h.ulp_distance(next), 1, "at {h:?}");
        h = next;
        steps += 1;
        assert!(steps < 40_000, "walk must terminate");
    }
    // 0x7C00 is infinity; there are 0x7C00 steps from +0 to +inf.
    assert_eq!(steps, 0x7C00);
}

/// abs/min/max are consistent with the f64 reference for every pair drawn
/// from a coarse exhaustive grid (full pairwise would be 4×10⁹).
#[test]
fn min_max_grid() {
    let samples: Vec<F16> =
        (0..=u16::MAX).step_by(257).map(F16::from_bits).filter(|h| !h.is_nan()).collect();
    for &a in &samples {
        for &b in &samples {
            let mn = a.min(b).to_f64();
            let mx = a.max(b).to_f64();
            assert_eq!(mn, a.to_f64().min(b.to_f64()), "min({a:?},{b:?})");
            assert_eq!(mx, a.to_f64().max(b.to_f64()), "max({a:?},{b:?})");
        }
    }
}

/// Round-trip through Display/FromStr preserves every finite value (the
/// f32 shortest-representation guarantees carry through).
#[test]
fn display_parse_roundtrip_exhaustive() {
    for bits in (0..=u16::MAX).step_by(7) {
        let h = F16::from_bits(bits);
        if h.is_nan() || h.is_infinite() {
            continue;
        }
        let s = format!("{h}");
        let back: F16 = s.parse().unwrap();
        assert_eq!(back.to_bits(), h.to_bits(), "{s}");
    }
}
