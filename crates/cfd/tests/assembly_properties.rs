//! Property tests for the CFD assembly: invariants that must hold for any
//! flow state the SIMPLE loop can produce.

use cfd::continuity::assemble_pressure_correction;
use cfd::fields::FlowField;
use cfd::grid::{Component, StaggeredGrid};
use cfd::momentum::{assemble_momentum, FluidProps};
use proptest::prelude::*;
use stencil::stencil7::is_symmetric;

/// A random (bounded) flow field on a random small grid.
fn arb_field() -> impl Strategy<Value = FlowField> {
    (3usize..6, 3usize..6, 3usize..6, prop::collection::vec(-100i32..100, 600)).prop_map(
        |(nx, ny, nz, seeds)| {
            let grid = StaggeredGrid::new(nx, ny, nz, 1.0 / nx as f64);
            let mut f = FlowField::zeros(grid);
            let mut k = 0usize;
            let mut next = |scale: f64| {
                let v = seeds[k % seeds.len()] as f64 / 100.0 * scale;
                k += 1;
                v
            };
            for u in f.u.iter_mut() {
                *u = next(1.0);
            }
            for v in f.v.iter_mut() {
                *v = next(1.0);
            }
            for w in f.w.iter_mut() {
                *w = next(1.0);
            }
            for p in f.p.iter_mut() {
                *p = next(0.5);
            }
            f
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Upwinding keeps every momentum system weakly diagonally dominant for
    /// *any* velocity field — the property that guarantees solvability.
    #[test]
    fn momentum_always_diagonally_dominant(field in arb_field()) {
        let props = FluidProps::default();
        for c in [Component::U, Component::V, Component::W] {
            let sys = assemble_momentum(&field, c, &props);
            prop_assert!(sys.matrix.validate().is_ok());
            // Dominance up to the flux-imbalance term (bounded by the
            // divergence of the random field times face area).
            let slack = stencil::stencil7::diagonal_dominance_slack(&sys.matrix);
            let h2 = field.grid.area();
            // Worst-case imbalance: 6 faces × max |vel| × area.
            let bound = 6.0 * 1.0 * h2;
            prop_assert!(slack > -bound, "{c:?}: slack {} bound {}", slack, bound);
        }
    }

    /// The pressure-correction matrix is symmetric for any field and any
    /// momentum diagonals.
    #[test]
    fn pressure_correction_always_symmetric(field in arb_field()) {
        let props = FluidProps::default();
        let su = assemble_momentum(&field, Component::U, &props);
        let sv = assemble_momentum(&field, Component::V, &props);
        let sw = assemble_momentum(&field, Component::W, &props);
        let ps = assemble_pressure_correction(&field, &su.ap, &sv.ap, &sw.ap);
        prop_assert!(ps.matrix.validate().is_ok());
        prop_assert!(is_symmetric(&ps.matrix));
    }

    /// Momentum diagonals are strictly positive (the `d`-coefficients the
    /// correction step divides by are well-defined).
    #[test]
    fn momentum_diagonals_positive(field in arb_field()) {
        let props = FluidProps::default();
        for c in [Component::U, Component::V, Component::W] {
            let sys = assemble_momentum(&field, c, &props);
            for (i, &ap) in sys.ap.iter().enumerate() {
                prop_assert!(ap > 0.0, "{c:?} row {} diag {}", i, ap);
            }
        }
    }

    /// The assembled rhs is finite for any bounded field.
    #[test]
    fn rhs_always_finite(field in arb_field()) {
        let props = FluidProps::default();
        for c in [Component::U, Component::V, Component::W] {
            let sys = assemble_momentum(&field, c, &props);
            prop_assert!(sys.rhs.iter().all(|v| v.is_finite()));
        }
    }
}
