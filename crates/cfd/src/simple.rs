//! Algorithm 2: SIMPLE in MFIX.
//!
//! ```text
//! 1: Initialization (calculate shear and time dependent source)
//! 2: for i = 0,1,2, ... do
//! 3:   for ii = u,v,w do
//! 4:     Form Momentum
//! 5:     BiCGStab Solve            (limited to 5 iterations)
//! 6:   end for
//! 7:   Form Continuity
//! 8:   BiCGStab Solve Continuity   (limited to 20 iterations)
//! 9:   Field Update (u, v, w, p)
//! 10:  Calculate Residual
//! 11: end for
//! ```
//!
//! "the linear solver is limited to 5 iterations for transport equations and
//! 20 for continuity equation" — those are defaults here too. Operation
//! counts per step are accumulated for the Table II reproduction.

use crate::continuity::{apply_corrections, assemble_pressure_correction};
use crate::fields::FlowField;
use crate::grid::{Component, StaggeredGrid};
use crate::momentum::{assemble_momentum, FluidProps};
use crate::opcount::{OpClassCounts, SimpleStepCounts};
use solver::policy::Fp64;
use solver::{bicgstab, SolveOptions};
use stencil::precond::jacobi_scale;

/// SIMPLE controls.
#[derive(Copy, Clone, Debug)]
pub struct SimpleParams {
    /// Fluid and scheme parameters.
    pub props: FluidProps,
    /// BiCGStab iteration cap for momentum ("5 for transport equations").
    pub momentum_iters: usize,
    /// BiCGStab iteration cap for continuity ("20 for continuity").
    pub continuity_iters: usize,
    /// Pressure under-relaxation.
    pub alpha_p: f64,
}

impl Default for SimpleParams {
    fn default() -> SimpleParams {
        SimpleParams {
            props: FluidProps::default(),
            momentum_iters: 5,
            continuity_iters: 20,
            alpha_p: 0.7,
        }
    }
}

/// Residual summary of one SIMPLE iteration.
#[derive(Copy, Clone, Debug, Default)]
pub struct SimpleResidual {
    /// RMS cell divergence after the update (mass residual).
    pub mass: f64,
    /// Max momentum recursive residual among the three solves.
    pub momentum: f64,
}

/// The SIMPLE driver.
pub struct SimpleSolver {
    /// Flow state.
    pub field: FlowField,
    /// Controls.
    pub params: SimpleParams,
    /// Accumulated operation counts by step kind.
    pub counts: SimpleStepCounts,
    /// Residual history, one entry per iteration.
    pub history: Vec<SimpleResidual>,
    /// Total BiCGStab iterations spent (momentum, continuity).
    pub solver_iters: (usize, usize),
}

impl SimpleSolver {
    /// A solver over a quiescent field.
    pub fn new(grid: StaggeredGrid, params: SimpleParams) -> SimpleSolver {
        SimpleSolver {
            field: FlowField::zeros(grid),
            params,
            counts: SimpleStepCounts::default(),
            history: Vec::new(),
            solver_iters: (0, 0),
        }
    }

    /// The "Initialization" step of Algorithm 2: time-dependent source
    /// bookkeeping. In this single-phase constant-property model it is a
    /// sweep that snapshots the old velocities (the `h³/Δt·uⁿ` sources) —
    /// counted, so Table II has its row.
    fn initialization(&mut self) -> OpClassCounts {
        let mut c = OpClassCounts::default();
        // One pass over each velocity mesh: old-value capture + shear-rate
        // magnitude estimate (|∂u| over neighbors) used by property models.
        for comp in [Component::U, Component::V, Component::W] {
            let mesh = self.field.grid.face_mesh(comp);
            c.flop += 4 * mesh.len() as u64; // shear-rate diffs and squares
            c.transport += 2 * mesh.len() as u64;
            c.merge += mesh.len() as u64; // boundary masking
        }
        c.sqrt += self.field.grid.cells() as u64; // |shear| per cell
        c
    }

    /// Runs one SIMPLE iteration; returns its residuals.
    pub fn iterate(&mut self) -> SimpleResidual {
        let init_counts = self.initialization();
        self.counts.initialization.add(init_counts);

        let mut momentum_resid = 0.0f64;
        let mut aps: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (ci, comp) in [Component::U, Component::V, Component::W].into_iter().enumerate() {
            let sys = assemble_momentum(&self.field, comp, &self.params.props);
            self.counts.momentum.add(sys.counts);
            let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
            let opts = SolveOptions {
                max_iters: self.params.momentum_iters,
                rtol: 1e-10,
                record_true_residual: false,
            };
            let result = bicgstab::<Fp64>(&scaled.matrix, &scaled.rhs, &opts);
            self.solver_iters.0 += result.iters;
            momentum_resid = momentum_resid.max(result.history.final_recursive());
            *self.field.component_mut(comp) = result.x;
            aps[ci] = sys.ap;
        }

        let psys = assemble_pressure_correction(&self.field, &aps[0], &aps[1], &aps[2]);
        self.counts.continuity.add(psys.counts);
        let scaled = jacobi_scale(&psys.matrix, &psys.rhs);
        let opts = SolveOptions {
            max_iters: self.params.continuity_iters,
            rtol: 1e-10,
            record_true_residual: false,
        };
        let result = bicgstab::<Fp64>(&scaled.matrix, &scaled.rhs, &opts);
        self.solver_iters.1 += result.iters;

        let upd = apply_corrections(&mut self.field, &psys, &result.x, self.params.alpha_p);
        self.counts.field_update.add(upd);

        let resid = SimpleResidual { mass: self.field.divergence_rms(), momentum: momentum_resid };
        self.history.push(resid);
        resid
    }

    /// Runs `n` iterations, returning the final residuals.
    pub fn run(&mut self, n: usize) -> SimpleResidual {
        let mut last = SimpleResidual::default();
        for _ in 0..n {
            last = self.iterate();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cavity_solver() -> SimpleSolver {
        let grid = StaggeredGrid::new(6, 6, 6, 1.0 / 6.0);
        SimpleSolver::new(grid, SimpleParams::default())
    }

    #[test]
    fn lid_motion_develops_and_mass_is_conserved() {
        let mut s = cavity_solver();
        let r = s.run(8);
        // The lid must have set the fluid in motion…
        assert!(s.field.kinetic_energy() > 1e-6, "flow must develop");
        // …and the pressure correction must keep divergence small relative
        // to the velocity scale.
        assert!(r.mass < 0.05, "mass residual {}", r.mass);
    }

    #[test]
    fn top_layer_follows_the_lid() {
        let mut s = cavity_solver();
        s.run(8);
        let g = s.field.grid;
        let um = g.face_mesh(Component::U);
        let top = s.field.u[um.idx(3, 3, g.nz - 1)];
        let bottom = s.field.u[um.idx(3, 3, 0)];
        assert!(top > 0.0, "near-lid fluid moves with the lid: {top}");
        assert!(top > bottom, "shear profile: top {top} vs bottom {bottom}");
    }

    #[test]
    fn recirculation_appears() {
        // In a driven cavity the return flow near the bottom runs against
        // the lid direction.
        let mut s = cavity_solver();
        s.run(12);
        let g = s.field.grid;
        let um = g.face_mesh(Component::U);
        let bottom = s.field.u[um.idx(3, 3, 0)];
        assert!(bottom < 0.0, "expected return flow at the bottom, got {bottom}");
    }

    #[test]
    fn op_counts_accumulate_per_iteration() {
        let mut s = cavity_solver();
        s.iterate();
        let one = s.counts.momentum;
        s.iterate();
        assert_eq!(s.counts.momentum.flop, 2 * one.flop, "counts double after 2 iters");
        assert!(s.counts.initialization.sqrt > 0);
        assert!(s.counts.continuity.div > 0);
        assert!(s.counts.field_update.flop > 0);
    }

    #[test]
    fn solver_iteration_caps_respected() {
        let mut s = cavity_solver();
        s.iterate();
        assert!(s.solver_iters.0 <= 3 * s.params.momentum_iters);
        assert!(s.solver_iters.1 <= s.params.continuity_iters);
    }
}
