//! Flow diagnostics for the lid-driven cavity — the standard quantities the
//! CFD validation literature reports (centerline profiles, primary-vortex
//! location, circulation), used to sanity-check the SIMPLE substrate
//! qualitatively against the classic benchmark behavior.

use crate::fields::FlowField;
use crate::grid::Component;

/// The u-velocity profile along the vertical centerline (x = y = center),
/// bottom to lid — the curve every cavity paper plots.
pub fn centerline_u_profile(field: &FlowField) -> Vec<f64> {
    let g = field.grid;
    let um = g.face_mesh(Component::U);
    let (ic, jc) = (g.nx / 2, g.ny / 2);
    (0..g.nz).map(|k| field.u[um.idx(ic, jc, k)]).collect()
}

/// The w-velocity profile along the horizontal centerline (y, z centered),
/// west to east.
pub fn centerline_w_profile(field: &FlowField) -> Vec<f64> {
    let g = field.grid;
    let wm = g.face_mesh(Component::W);
    let (jc, kc) = (g.ny / 2, g.nz / 2);
    (0..g.nx).map(|i| field.w[wm.idx(i, jc, kc)]).collect()
}

/// Cell-centered y-vorticity `ω_y = ∂u/∂z − ∂w/∂x` on the mid-y plane
/// (the rotation plane of the primary vortex for an x-driven lid).
#[allow(clippy::needless_range_loop)] // 2-D stencil index math reads better with i/k
pub fn vorticity_y_midplane(field: &FlowField) -> Vec<Vec<f64>> {
    let g = field.grid;
    let um = g.face_mesh(Component::U);
    let wm = g.face_mesh(Component::W);
    let j = g.ny / 2;
    let mut out = vec![vec![0.0; g.nz]; g.nx];
    for i in 0..g.nx {
        for k in 0..g.nz {
            // du/dz via u at the two z-extremes of the cell (face averages).
            let u_top = if k + 1 < g.nz {
                0.5 * (field.u[um.idx(i, j, k + 1)] + field.u[um.idx(i + 1, j, k + 1)])
            } else {
                0.0
            };
            let u_bot = if k > 0 {
                0.5 * (field.u[um.idx(i, j, k - 1)] + field.u[um.idx(i + 1, j, k - 1)])
            } else {
                0.0
            };
            let dudz = (u_top - u_bot) / (2.0 * g.h);
            let w_e = if i + 1 < g.nx {
                0.5 * (field.w[wm.idx(i + 1, j, k)] + field.w[wm.idx(i + 1, j, k + 1)])
            } else {
                0.0
            };
            let w_w = if i > 0 {
                0.5 * (field.w[wm.idx(i - 1, j, k)] + field.w[wm.idx(i - 1, j, k + 1)])
            } else {
                0.0
            };
            let dwdx = (w_e - w_w) / (2.0 * g.h);
            out[i][k] = dudz - dwdx;
        }
    }
    out
}

/// Locates the primary vortex: the cell of extreme y-vorticity magnitude on
/// the mid-y plane, returned as normalized `(x, z)` in `[0, 1]²`.
#[allow(clippy::needless_range_loop)] // interior scan over (i, k) cells
pub fn primary_vortex_center(field: &FlowField) -> (f64, f64) {
    let g = field.grid;
    let vort = vorticity_y_midplane(field);
    let mut best = (0usize, 0usize);
    let mut best_mag = -1.0f64;
    for i in 1..g.nx - 1 {
        for k in 1..g.nz - 1 {
            if vort[i][k].abs() > best_mag {
                best_mag = vort[i][k].abs();
                best = (i, k);
            }
        }
    }
    ((best.0 as f64 + 0.5) / g.nx as f64, (best.1 as f64 + 0.5) / g.nz as f64)
}

/// Total circulation on the mid-y plane: Σ ω_y h² (signed).
pub fn circulation(field: &FlowField) -> f64 {
    let g = field.grid;
    vorticity_y_midplane(field).iter().flatten().sum::<f64>() * g.h * g.h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::StaggeredGrid;
    use crate::simple::{SimpleParams, SimpleSolver};

    fn developed(n: usize, iters: usize) -> FlowField {
        let grid = StaggeredGrid::new(n, n, n, 1.0 / n as f64);
        let mut s = SimpleSolver::new(grid, SimpleParams::default());
        s.run(iters);
        s.field
    }

    #[test]
    fn centerline_profile_has_cavity_shape() {
        let f = developed(8, 14);
        let u = centerline_u_profile(&f);
        // Positive at the lid, negative return flow somewhere below.
        assert!(*u.last().unwrap() > 0.0, "lid-adjacent u: {u:?}");
        assert!(u.iter().any(|&v| v < 0.0), "return flow expected: {u:?}");
    }

    #[test]
    fn primary_vortex_sits_in_the_upper_half() {
        // At moderate effective Reynolds numbers the primary vortex of a
        // lid-driven cavity sits above mid-height, biased toward the
        // downstream (lid-motion) side.
        let f = developed(8, 14);
        let (x, z) = primary_vortex_center(&f);
        assert!(z > 0.4, "vortex height {z}");
        assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&z));
    }

    #[test]
    fn circulation_matches_lid_direction() {
        // Lid moving in +x over the +z wall drives clockwise rotation in
        // the x-z plane: ∂u/∂z > 0 near the lid dominates, giving positive
        // net y-vorticity under our sign convention.
        let f = developed(8, 14);
        let c = circulation(&f);
        assert!(c > 0.0, "circulation {c}");
    }

    #[test]
    fn quiescent_field_has_no_structure() {
        let f = FlowField::zeros(StaggeredGrid::new(6, 6, 6, 1.0 / 6.0));
        assert_eq!(circulation(&f), 0.0);
        assert!(centerline_u_profile(&f).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn finer_mesh_refines_not_destroys_the_vortex() {
        let coarse = developed(6, 12);
        let fine = developed(10, 12);
        let (cx, cz) = primary_vortex_center(&coarse);
        let (fx, fz) = primary_vortex_center(&fine);
        // Same qualitative location within a generous tolerance.
        assert!((cx - fx).abs() < 0.5 && (cz - fz).abs() < 0.5, "({cx},{cz}) vs ({fx},{fz})");
    }
}
