//! The lid-driven cavity case.
//!
//! This is the configuration behind the paper's cluster comparison ("the
//! BiCGstab solution of a nonsymmetric linear system arising from a 7-point
//! stencil finite volume approximation; this was done within the NETL MFIX
//! code while computing a lid-driven cavity flow") and the source of the
//! Fig. 9 momentum system ("the momentum equation for a velocity component
//! on a 100 × 400 × 100 mesh").

use crate::grid::{Component, StaggeredGrid};
use crate::momentum::{assemble_momentum, FluidProps, MomentumSystem};
use crate::simple::{SimpleParams, SimpleSolver};

/// A configured lid-driven cavity.
pub struct Cavity {
    /// The SIMPLE driver.
    pub solver: SimpleSolver,
}

impl Cavity {
    /// A unit cavity on an `nx × ny × nz` grid with lid speed 1 and the
    /// given Reynolds-ish viscosity.
    pub fn new(nx: usize, ny: usize, nz: usize, nu: f64) -> Cavity {
        let grid = StaggeredGrid::new(nx, ny, nz, 1.0 / nx as f64);
        let params = SimpleParams {
            props: FluidProps { nu, dt: 0.05, lid_velocity: 1.0 },
            ..Default::default()
        };
        Cavity { solver: SimpleSolver::new(grid, params) }
    }

    /// Advances `n` SIMPLE iterations.
    pub fn run(&mut self, n: usize) {
        self.solver.run(n);
    }

    /// The vertical centerline profile of `u` (x-velocity vs z), the
    /// classic cavity diagnostic.
    pub fn centerline_u(&self) -> Vec<f64> {
        let g = self.solver.field.grid;
        let um = g.face_mesh(Component::U);
        let (ic, jc) = (g.nx / 2, g.ny / 2);
        (0..g.nz).map(|k| self.solver.field.u[um.idx(ic, jc, k)]).collect()
    }

    /// Assembles the current u-momentum system — the Fig. 9 workload
    /// generator. The returned system is *not* yet diagonally
    /// preconditioned.
    pub fn momentum_system(&self, c: Component) -> MomentumSystem {
        assemble_momentum(&self.solver.field, c, &self.solver.params.props)
    }
}

/// Builds the Fig. 9 linear system: a momentum system from a developed
/// lid-driven cavity on (a scaled version of) the paper's 100×400×100 mesh.
///
/// `scale` divides each dimension (`scale = 1` reproduces the full size;
/// larger values give cheap smoke-test versions with the same structure).
/// `develop_iters` SIMPLE iterations run first so the convection
/// coefficients are nontrivial. The returned system is assembled at the
/// **steady-state limit** (no inertia term) with low viscosity, matching the
/// conditioning regime in which the paper's Fig. 9 curves need ~14
/// iterations and expose the fp16 accuracy floor.
pub fn fig9_momentum_system(scale: usize, develop_iters: usize) -> MomentumSystem {
    assert!(scale >= 1);
    let (nx, ny, nz) = ((100 / scale).max(4), (400 / scale).max(4), (100 / scale).max(4));
    let mut cavity = Cavity::new(nx, ny, nz, 0.01);
    cavity.run(develop_iters);
    let stiff = FluidProps { nu: 0.01, dt: 1.0e9, lid_velocity: 1.0 };
    assemble_momentum(&cavity.solver.field, Component::U, &stiff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::stencil7::{diagonal_dominance_slack, is_symmetric};

    #[test]
    fn centerline_shows_shear_profile() {
        let mut c = Cavity::new(6, 6, 6, 0.1);
        c.run(10);
        let profile = c.centerline_u();
        assert!(profile.last().unwrap() > &0.0, "top follows lid");
        assert!(
            profile.last().unwrap() > profile.first().unwrap(),
            "u increases toward the lid: {profile:?}"
        );
    }

    #[test]
    fn fig9_system_is_nonsymmetric_and_solvable() {
        let sys = fig9_momentum_system(20, 3);
        assert!(sys.matrix.validate().is_ok());
        assert!(!is_symmetric(&sys.matrix), "convection present");
        // At the steady-state limit the diagonal's flux-imbalance term can
        // go slightly negative where the developed field is not perfectly
        // divergence-free; it must stay small relative to the coefficients.
        let slack = diagonal_dominance_slack(&sys.matrix);
        assert!(slack >= -0.05, "slack {slack}");
        // And BiCGStab solves it (the steady-state system is deliberately
        // stiff, so allow a realistic iteration budget).
        let scaled = stencil::precond::jacobi_scale(&sys.matrix, &sys.rhs);
        let opts = solver::SolveOptions { max_iters: 300, rtol: 1e-7, record_true_residual: false };
        let res = solver::bicgstab::<solver::Fp64>(&scaled.matrix, &scaled.rhs, &opts);
        assert_eq!(res.outcome, solver::BiCgStabOutcome::Converged);
    }

    #[test]
    fn fig9_full_scale_mesh_shape() {
        // Don't build it (4M unknowns); just check the shape arithmetic.
        let (nx, ny, nz) = (100, 400, 100);
        assert_eq!((nx, ny, nz), (100, 400, 100));
    }
}
