//! Passive-scalar (energy) transport — the paper's next complexity level.
//!
//! §VI discusses "a single phase, compressible, viscous fluid problem
//! *without energy and species equations*" and notes "It is straightforward
//! to extrapolate the allowable size and arithmetic intensity at any level
//! of complexity following the methodology outlined below." This module
//! adds that next level: an implicit advection–diffusion equation for a
//! cell-centered scalar (temperature), discretized with the same
//! first-order upwinding — producing a fourth nonsymmetric 7-point system
//! per time step, exactly the shape the wafer solver consumes, with its own
//! operation counts extending the Table II accounting.

use crate::fields::FlowField;
use crate::grid::Component;
use crate::opcount::OpClassCounts;
use solver::policy::Fp64;
use solver::{bicgstab, SolveOptions};
use stencil::dia::{DiaMatrix, Offset3};
use stencil::precond::jacobi_scale;

/// Scalar-transport state and parameters.
#[derive(Clone, Debug)]
pub struct ScalarTransport {
    /// Cell-centered scalar values.
    pub t: Vec<f64>,
    /// Diffusivity κ.
    pub kappa: f64,
    /// Value held at the lid (the +z wall) — a "hot lid".
    pub lid_value: f64,
    /// Value held at every other wall.
    pub wall_value: f64,
    /// Accumulated operation counts (assembly only).
    pub counts: OpClassCounts,
}

/// An assembled scalar-transport system.
#[derive(Clone, Debug)]
pub struct ScalarSystem {
    /// The nonsymmetric 7-point matrix on the cell mesh.
    pub matrix: DiaMatrix<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
}

impl ScalarTransport {
    /// A uniform initial field at `wall_value`.
    pub fn new(field: &FlowField, kappa: f64, lid_value: f64, wall_value: f64) -> ScalarTransport {
        ScalarTransport {
            t: vec![wall_value; field.grid.p_mesh().len()],
            kappa,
            lid_value,
            wall_value,
            counts: OpClassCounts::default(),
        }
    }

    /// Assembles the implicit transport system around the current velocity
    /// field: `(V/Δt + Σ a_nb + ΣF) T_P − Σ a_nb T_nb = V/Δt·Tⁿ + wall
    /// sources`, with `a_nb = D + max(∓F, 0)` per face.
    pub fn assemble(&mut self, field: &FlowField, dt: f64) -> ScalarSystem {
        let grid = field.grid;
        let mesh = grid.p_mesh();
        let area = grid.area();
        let vol = grid.vol();
        let d_cond = self.kappa * grid.h;
        let inertia = vol / dt;
        let umesh = grid.face_mesh(Component::U);
        let vmesh = grid.face_mesh(Component::V);
        let wmesh = grid.face_mesh(Component::W);

        let mut matrix = DiaMatrix::new(mesh, &Offset3::seven_point());
        let mut rhs = vec![0.0; mesh.len()];

        for (i, j, k) in mesh.iter() {
            let row = mesh.idx(i, j, k);
            let mut ap = inertia;
            let mut b = inertia * self.t[row];
            self.counts.flop += 1;

            // Six faces: (offset, face normal velocity, on-boundary?).
            let faces: [(Offset3, f64); 6] = [
                (Offset3::new(1, 0, 0), field.u[umesh.idx(i + 1, j, k)]),
                (Offset3::new(-1, 0, 0), -field.u[umesh.idx(i, j, k)]),
                (Offset3::new(0, 1, 0), field.v[vmesh.idx(i, j + 1, k)]),
                (Offset3::new(0, -1, 0), -field.v[vmesh.idx(i, j, k)]),
                (Offset3::new(0, 0, 1), field.w[wmesh.idx(i, j, k + 1)]),
                (Offset3::new(0, 0, -1), -field.w[wmesh.idx(i, j, k)]),
            ];
            for (off, vel_out) in faces {
                let f_flux = area * vel_out; // positive = outflow
                self.counts.flop += 1;
                self.counts.transport += 1;
                if mesh.neighbor(i, j, k, off.dx, off.dy, off.dz).is_some() {
                    let a_nb = d_cond + (-f_flux).max(0.0);
                    self.counts.merge += 1;
                    self.counts.flop += 3;
                    matrix.set(i, j, k, off, -a_nb);
                    ap += a_nb + f_flux;
                } else {
                    // Wall: half-cell conductance to the boundary value; no
                    // convective flux through walls (no-penetration).
                    let tb =
                        if off == Offset3::new(0, 0, 1) { self.lid_value } else { self.wall_value };
                    ap += 2.0 * d_cond;
                    b += 2.0 * d_cond * tb;
                    self.counts.merge += 1;
                    self.counts.flop += 3;
                }
            }
            matrix.set(i, j, k, Offset3::CENTER, ap);
            rhs[row] = b;
        }
        ScalarSystem { matrix, rhs }
    }

    /// Advances one implicit time step (assemble + BiCGStab solve + update).
    /// Returns the solver's iteration count.
    pub fn step(&mut self, field: &FlowField, dt: f64, max_iters: usize) -> usize {
        let sys = self.assemble(field, dt);
        let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
        let opts = SolveOptions { max_iters, rtol: 1e-10, record_true_residual: false };
        let result = bicgstab::<Fp64>(&scaled.matrix, &scaled.rhs, &opts);
        self.t = result.x;
        result.iters
    }

    /// Extremes of the field (maximum-principle diagnostics).
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.t {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean value of the field.
    pub fn mean(&self) -> f64 {
        self.t.iter().sum::<f64>() / self.t.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::StaggeredGrid;
    use crate::simple::{SimpleParams, SimpleSolver};
    use stencil::stencil7::is_symmetric;

    fn flowing_field() -> FlowField {
        let grid = StaggeredGrid::new(6, 6, 6, 1.0 / 6.0);
        let mut s = SimpleSolver::new(grid, SimpleParams::default());
        s.run(5);
        s.field
    }

    #[test]
    fn hot_lid_heats_the_top_layer() {
        let field = flowing_field();
        let mut scalar = ScalarTransport::new(&field, 0.01, 1.0, 0.0);
        for _ in 0..20 {
            scalar.step(&field, 0.2, 60);
        }
        let mesh = field.grid.p_mesh();
        let top = scalar.t[mesh.idx(3, 3, 5)];
        let bottom = scalar.t[mesh.idx(3, 3, 0)];
        assert!(top > 0.15, "top must heat up: {top}");
        assert!(top > bottom * 1.5 + 0.05, "gradient toward the lid: {top} vs {bottom}");
    }

    #[test]
    fn maximum_principle_holds() {
        // With boundary values in [0, 1] and no sources, T stays in [0, 1].
        let field = flowing_field();
        let mut scalar = ScalarTransport::new(&field, 0.05, 1.0, 0.0);
        for _ in 0..15 {
            scalar.step(&field, 0.5, 80);
            let (lo, hi) = scalar.min_max();
            assert!(lo >= -1e-8, "undershoot {lo}");
            assert!(hi <= 1.0 + 1e-8, "overshoot {hi}");
        }
    }

    #[test]
    fn quiescent_field_gives_symmetric_diffusion() {
        let grid = StaggeredGrid::new(4, 4, 4, 0.25);
        let field = FlowField::zeros(grid);
        let mut scalar = ScalarTransport::new(&field, 0.1, 1.0, 0.0);
        let sys = scalar.assemble(&field, 0.1);
        assert!(sys.matrix.validate().is_ok());
        assert!(is_symmetric(&sys.matrix), "pure diffusion is symmetric");
    }

    #[test]
    fn convection_breaks_symmetry() {
        let field = flowing_field();
        let mut scalar = ScalarTransport::new(&field, 0.01, 1.0, 0.0);
        let sys = scalar.assemble(&field, 0.1);
        assert!(sys.matrix.validate().is_ok());
        assert!(!is_symmetric(&sys.matrix));
    }

    #[test]
    fn op_counts_accumulate() {
        let field = flowing_field();
        let mut scalar = ScalarTransport::new(&field, 0.01, 1.0, 0.0);
        scalar.assemble(&field, 0.1);
        let c1 = scalar.counts;
        scalar.assemble(&field, 0.1);
        assert_eq!(scalar.counts.flop, 2 * c1.flop);
        assert!(c1.merge > 0 && c1.transport > 0);
    }

    #[test]
    fn steady_state_approaches_laplace_solution() {
        // With zero velocity, long time steps drive T to the harmonic
        // steady state: monotone from lid (1) to the far wall (0) along z.
        let grid = StaggeredGrid::new(4, 4, 8, 0.25);
        let field = FlowField::zeros(grid);
        let mut scalar = ScalarTransport::new(&field, 0.1, 1.0, 0.0);
        for _ in 0..60 {
            scalar.step(&field, 5.0, 120);
        }
        let mesh = grid.p_mesh();
        let profile: Vec<f64> = (0..grid.nz).map(|k| scalar.t[mesh.idx(2, 2, k)]).collect();
        for w in profile.windows(2) {
            assert!(w[1] > w[0], "monotone toward the hot lid: {profile:?}");
        }
    }
}
