//! The flow state: staggered velocity components and cell-centered pressure.

use crate::grid::{Component, StaggeredGrid};
use stencil::mesh::Mesh3D;

/// Velocities on faces, pressure at centers.
#[derive(Clone, Debug)]
pub struct FlowField {
    /// Grid geometry.
    pub grid: StaggeredGrid,
    /// x-velocity on x-faces, `(nx+1) × ny × nz`.
    pub u: Vec<f64>,
    /// y-velocity on y-faces, `nx × (ny+1) × nz`.
    pub v: Vec<f64>,
    /// z-velocity on z-faces, `nx × ny × (nz+1)`.
    pub w: Vec<f64>,
    /// Pressure at cell centers.
    pub p: Vec<f64>,
}

impl FlowField {
    /// A quiescent (zero) field.
    pub fn zeros(grid: StaggeredGrid) -> FlowField {
        FlowField {
            grid,
            u: vec![0.0; grid.face_mesh(Component::U).len()],
            v: vec![0.0; grid.face_mesh(Component::V).len()],
            w: vec![0.0; grid.face_mesh(Component::W).len()],
            p: vec![0.0; grid.p_mesh().len()],
        }
    }

    /// The component's value array.
    pub fn component(&self, c: Component) -> &[f64] {
        match c {
            Component::U => &self.u,
            Component::V => &self.v,
            Component::W => &self.w,
        }
    }

    /// The component's value array, mutable.
    pub fn component_mut(&mut self, c: Component) -> &mut Vec<f64> {
        match c {
            Component::U => &mut self.u,
            Component::V => &mut self.v,
            Component::W => &mut self.w,
        }
    }

    /// `u` at face `(i, j, k)` of the u-mesh.
    #[inline]
    pub fn u_at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.u[self.grid.face_mesh(Component::U).idx(i, j, k)]
    }

    /// `v` at face `(i, j, k)` of the v-mesh.
    #[inline]
    pub fn v_at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.v[self.grid.face_mesh(Component::V).idx(i, j, k)]
    }

    /// `w` at face `(i, j, k)` of the w-mesh.
    #[inline]
    pub fn w_at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.w[self.grid.face_mesh(Component::W).idx(i, j, k)]
    }

    /// Net volumetric outflow of cell `(i, j, k)` divided by `h²` (i.e. the
    /// sum of face-velocity differences) — zero for a divergence-free field.
    pub fn divergence(&self, i: usize, j: usize, k: usize) -> f64 {
        (self.u_at(i + 1, j, k) - self.u_at(i, j, k))
            + (self.v_at(i, j + 1, k) - self.v_at(i, j, k))
            + (self.w_at(i, j, k + 1) - self.w_at(i, j, k))
    }

    /// RMS of the cell divergences — the mass-conservation residual.
    pub fn divergence_rms(&self) -> f64 {
        let mesh = self.grid.p_mesh();
        let mut sum = 0.0;
        for (i, j, k) in mesh.iter() {
            let d = self.divergence(i, j, k);
            sum += d * d;
        }
        (sum / mesh.len() as f64).sqrt()
    }

    /// Total kinetic energy proxy: Σ of squared face velocities.
    pub fn kinetic_energy(&self) -> f64 {
        let s: f64 = self.u.iter().map(|x| x * x).sum::<f64>()
            + self.v.iter().map(|x| x * x).sum::<f64>()
            + self.w.iter().map(|x| x * x).sum::<f64>();
        0.5 * s
    }

    /// The mesh a component's linear system is defined on.
    pub fn mesh_of(&self, c: Component) -> Mesh3D {
        self.grid.face_mesh(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_field_is_divergence_free() {
        let f = FlowField::zeros(StaggeredGrid::new(3, 3, 3, 1.0));
        assert_eq!(f.divergence_rms(), 0.0);
        assert_eq!(f.kinetic_energy(), 0.0);
    }

    #[test]
    fn uniform_flow_is_divergence_free() {
        let mut f = FlowField::zeros(StaggeredGrid::new(4, 3, 2, 1.0));
        for u in f.u.iter_mut() {
            *u = 2.5;
        }
        assert_eq!(f.divergence_rms(), 0.0);
        assert!(f.kinetic_energy() > 0.0);
    }

    #[test]
    fn point_source_shows_divergence() {
        let g = StaggeredGrid::new(3, 3, 3, 1.0);
        let mut f = FlowField::zeros(g);
        // Outflow through the +x face of cell (1,1,1).
        let um = g.face_mesh(Component::U);
        f.u[um.idx(2, 1, 1)] = 1.0;
        assert_eq!(f.divergence(1, 1, 1), 1.0);
        assert_eq!(f.divergence(2, 1, 1), -1.0);
        assert!(f.divergence_rms() > 0.0);
    }

    #[test]
    fn component_accessors_roundtrip() {
        let g = StaggeredGrid::new(2, 2, 2, 1.0);
        let mut f = FlowField::zeros(g);
        f.component_mut(Component::V)[0] = 3.0;
        assert_eq!(f.component(Component::V)[0], 3.0);
        assert_eq!(f.v_at(0, 0, 0), 3.0);
    }
}
