//! The SIMPLE pressure-correction (continuity) equation.
//!
//! Given provisional velocities `u*` from the momentum solves, SIMPLE posts
//! the correction `u = u* − d·∇p'` with `d = h²/a_P` (the momentum diagonal),
//! and enforces mass conservation, producing a 7-point equation for `p'`:
//!
//! ```text
//!   Σ_f  (h²·d_f) (p'_P − p'_nb)  =  −(net outflow of u*)·h²
//! ```
//!
//! The operator is symmetric positive semidefinite with a constant
//! null-space (all-Neumann); one reference cell is pinned. The paper solves
//! this system with BiCGStab too ("BiCGStab Solve Continuity"), with a
//! higher iteration allowance (20 vs 5) because it is the stiffest solve.

use crate::fields::FlowField;
use crate::grid::Component;
use crate::opcount::OpClassCounts;
use stencil::dia::{DiaMatrix, Offset3};

/// The assembled pressure-correction system plus the `d` coefficient arrays
/// needed to apply the correction afterward.
#[derive(Clone, Debug)]
pub struct PressureSystem {
    /// The SPD 7-point correction matrix on the cell mesh.
    pub matrix: DiaMatrix<f64>,
    /// Right-hand side (negative mass imbalance).
    pub rhs: Vec<f64>,
    /// `d = area/a_P` per u-face.
    pub du: Vec<f64>,
    /// `d` per v-face.
    pub dv: Vec<f64>,
    /// `d` per w-face.
    pub dw: Vec<f64>,
    /// Instrumented operation counts.
    pub counts: OpClassCounts,
}

/// Assembles the pressure-correction system from the provisional field and
/// the three momentum diagonals.
pub fn assemble_pressure_correction(
    field: &FlowField,
    ap_u: &[f64],
    ap_v: &[f64],
    ap_w: &[f64],
) -> PressureSystem {
    let grid = field.grid;
    let mesh = grid.p_mesh();
    let area = grid.area();
    let mut counts = OpClassCounts::default();

    // d-coefficients per face; zero on normal-boundary faces (their
    // velocity is fixed, so they admit no correction).
    let mk_d = |c: Component, ap: &[f64], counts: &mut OpClassCounts| -> Vec<f64> {
        let fmesh = grid.face_mesh(c);
        let mut d = vec![0.0; fmesh.len()];
        for (x, y, z) in fmesh.iter() {
            if !grid.is_normal_boundary(c, x, y, z) {
                d[fmesh.idx(x, y, z)] = area / ap[fmesh.idx(x, y, z)];
                counts.div += 1;
            } else {
                counts.merge += 1;
            }
        }
        d
    };
    let du = mk_d(Component::U, ap_u, &mut counts);
    let dv = mk_d(Component::V, ap_v, &mut counts);
    let dw = mk_d(Component::W, ap_w, &mut counts);

    let mut matrix = DiaMatrix::new(mesh, &Offset3::seven_point());
    let mut rhs = vec![0.0; mesh.len()];
    let umesh = grid.face_mesh(Component::U);
    let vmesh = grid.face_mesh(Component::V);
    let wmesh = grid.face_mesh(Component::W);

    for (i, j, k) in mesh.iter() {
        let row = mesh.idx(i, j, k);
        if row == 0 {
            // Pin the reference cell to remove the constant null-space.
            matrix.set(i, j, k, Offset3::CENTER, 1.0);
            rhs[row] = 0.0;
            counts.merge += 1;
            continue;
        }
        let mut ap = 0.0;
        // Six faces: coefficient area·d_f toward the neighbor cell.
        let faces = [
            (Offset3::new(1, 0, 0), du[umesh.idx(i + 1, j, k)]),
            (Offset3::new(-1, 0, 0), du[umesh.idx(i, j, k)]),
            (Offset3::new(0, 1, 0), dv[vmesh.idx(i, j + 1, k)]),
            (Offset3::new(0, -1, 0), dv[vmesh.idx(i, j, k)]),
            (Offset3::new(0, 0, 1), dw[wmesh.idx(i, j, k + 1)]),
            (Offset3::new(0, 0, -1), dw[wmesh.idx(i, j, k)]),
        ];
        for (off, d) in faces {
            let a = area * d;
            counts.flop += 1;
            counts.transport += 1;
            if let Some(nb) = mesh.neighbor(i, j, k, off.dx, off.dy, off.dz) {
                if a != 0.0 {
                    ap += a;
                    if nb != 0 {
                        matrix.set(i, j, k, off, -a);
                    }
                    // Neighbor 0 is the pinned reference (p' = 0): folded.
                }
            }
        }
        matrix.set(i, j, k, Offset3::CENTER, ap.max(1e-30));
        // Negative net outflow of the provisional field: h²·Σ(Δvel).
        let m_dot = area * field.divergence(i, j, k);
        counts.flop += 7;
        counts.transport += 6;
        rhs[row] = -m_dot;
    }

    PressureSystem { matrix, rhs, du, dv, dw, counts }
}

/// Applies the SIMPLE corrections: `p += α_p p'`, and for every interior
/// face `vel += d·(p'_minus − p'_plus)`. Returns operation counts.
pub fn apply_corrections(
    field: &mut FlowField,
    sys: &PressureSystem,
    p_prime: &[f64],
    alpha_p: f64,
) -> OpClassCounts {
    let grid = field.grid;
    let mesh = grid.p_mesh();
    let mut counts = OpClassCounts::default();

    for (i, j, k) in mesh.iter() {
        field.p[mesh.idx(i, j, k)] += alpha_p * p_prime[mesh.idx(i, j, k)];
        counts.flop += 2;
    }

    for c in [Component::U, Component::V, Component::W] {
        let fmesh = grid.face_mesh(c);
        let d = match c {
            Component::U => &sys.du,
            Component::V => &sys.dv,
            Component::W => &sys.dw,
        };
        let n_axis = match c {
            Component::U => 0usize,
            Component::V => 1,
            Component::W => 2,
        };
        // Collect corrections before mutating.
        let mut corr = vec![0.0; fmesh.len()];
        for (x, y, z) in fmesh.iter() {
            let row = fmesh.idx(x, y, z);
            if grid.is_normal_boundary(c, x, y, z) || d[row] == 0.0 {
                counts.merge += 1;
                continue;
            }
            let pos = [x, y, z];
            let mut cm = pos;
            cm[n_axis] -= 1;
            let pmesh = grid.p_mesh();
            let pm = p_prime[pmesh.idx(cm[0], cm[1], cm[2])];
            let pp = p_prime[pmesh.idx(pos[0], pos[1], pos[2])];
            corr[row] = d[row] * (pm - pp);
            counts.flop += 2;
            counts.transport += 2;
        }
        let arr = field.component_mut(c);
        for (row, cv) in corr.iter().enumerate() {
            arr[row] += cv;
            counts.flop += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::StaggeredGrid;
    use crate::momentum::{assemble_momentum, FluidProps};
    use stencil::stencil7::is_symmetric;

    fn setup() -> (FlowField, PressureSystem) {
        let grid = StaggeredGrid::new(4, 4, 4, 0.25);
        let mut f = FlowField::zeros(grid);
        // A provisional field with divergence: a blob of outflow.
        let um = grid.face_mesh(Component::U);
        f.u[um.idx(2, 2, 2)] = 1.0;
        let props = FluidProps::default();
        let su = assemble_momentum(&f, Component::U, &props);
        let sv = assemble_momentum(&f, Component::V, &props);
        let sw = assemble_momentum(&f, Component::W, &props);
        let ps = assemble_pressure_correction(&f, &su.ap, &sv.ap, &sw.ap);
        (f, ps)
    }

    #[test]
    fn pressure_matrix_is_symmetric_and_valid() {
        let (_, ps) = setup();
        assert!(ps.matrix.validate().is_ok());
        assert!(is_symmetric(&ps.matrix));
    }

    #[test]
    fn rhs_opposes_divergence() {
        let (f, ps) = setup();
        let mesh = f.grid.p_mesh();
        // Cell (2,2,2) has inflow from our poked face... the face u(2,2,2)
        // is the west face of cell (2,2,2): inflow → positive divergence in
        // (1,2,2) wait: u(2,2,2) is the +x face of cell (1,2,2) and the −x
        // face of cell (2,2,2). Outflow for (1,2,2), inflow for (2,2,2).
        assert!(ps.rhs[mesh.idx(1, 2, 2)] < 0.0);
        assert!(ps.rhs[mesh.idx(2, 2, 2)] > 0.0);
    }

    #[test]
    fn corrections_reduce_divergence() {
        let (mut f, ps) = setup();
        let before = f.divergence_rms();
        // Solve the correction system accurately with the host solver.
        let scaled = stencil::precond::jacobi_scale(&ps.matrix, &ps.rhs);
        let opts =
            solver::SolveOptions { max_iters: 400, rtol: 1e-10, record_true_residual: false };
        let result = solver::bicgstab::<solver::Fp64>(&scaled.matrix, &scaled.rhs, &opts);
        apply_corrections(&mut f, &ps, &result.x, 1.0);
        let after = f.divergence_rms();
        assert!(
            after < before * 0.2,
            "pressure correction must cut divergence: {before} -> {after}"
        );
    }

    #[test]
    fn boundary_faces_get_no_correction() {
        let (mut f, ps) = setup();
        let um = f.grid.face_mesh(Component::U);
        let wall = um.idx(0, 1, 1);
        let before = f.u[wall];
        let p_prime = vec![1.0; f.grid.p_mesh().len()];
        apply_corrections(&mut f, &ps, &p_prime, 0.5);
        assert_eq!(f.u[wall], before, "wall-normal velocity is pinned");
    }
}
