//! The MAC-staggered Cartesian grid.
//!
//! Pressure lives at cell centers (`nx × ny × nz`); the `u`, `v`, `w`
//! velocity components live on x-, y-, z-normal faces respectively, so each
//! component's unknowns form their own structured mesh — which is why every
//! one of MFIX's four linear systems is a 7-point stencil system on a
//! regular mesh, exactly the shape the wafer solver targets.

use stencil::mesh::Mesh3D;

/// A uniform staggered grid with cubic cells of spacing `h`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StaggeredGrid {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Cell spacing.
    pub h: f64,
}

/// Velocity component selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Component {
    /// x-velocity, on x-normal faces.
    U,
    /// y-velocity, on y-normal faces.
    V,
    /// z-velocity, on z-normal faces.
    W,
}

impl StaggeredGrid {
    /// Creates a grid; all dimensions must be at least 2 cells.
    ///
    /// # Panics
    /// Panics on degenerate dimensions or non-positive spacing.
    pub fn new(nx: usize, ny: usize, nz: usize, h: f64) -> StaggeredGrid {
        assert!(nx >= 2 && ny >= 2 && nz >= 2, "grid needs at least 2 cells per axis");
        assert!(h > 0.0, "cell spacing must be positive");
        StaggeredGrid { nx, ny, nz, h }
    }

    /// The pressure (cell-center) mesh.
    pub fn p_mesh(&self) -> Mesh3D {
        Mesh3D::new(self.nx, self.ny, self.nz)
    }

    /// The mesh of a velocity component's faces.
    pub fn face_mesh(&self, c: Component) -> Mesh3D {
        match c {
            Component::U => Mesh3D::new(self.nx + 1, self.ny, self.nz),
            Component::V => Mesh3D::new(self.nx, self.ny + 1, self.nz),
            Component::W => Mesh3D::new(self.nx, self.ny, self.nz + 1),
        }
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if a face index is on the boundary *in its normal direction*
    /// (these faces carry Dirichlet wall values).
    pub fn is_normal_boundary(&self, c: Component, x: usize, y: usize, z: usize) -> bool {
        match c {
            Component::U => x == 0 || x == self.nx,
            Component::V => y == 0 || y == self.ny,
            Component::W => z == 0 || z == self.nz,
        }
    }

    /// Cell volume `h³`.
    pub fn vol(&self) -> f64 {
        self.h * self.h * self.h
    }

    /// Face area `h²`.
    pub fn area(&self) -> f64 {
        self.h * self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meshes_have_staggered_sizes() {
        let g = StaggeredGrid::new(4, 5, 6, 0.1);
        assert_eq!(g.p_mesh().len(), 120);
        assert_eq!(g.face_mesh(Component::U).len(), 5 * 5 * 6);
        assert_eq!(g.face_mesh(Component::V).len(), 4 * 6 * 6);
        assert_eq!(g.face_mesh(Component::W).len(), 4 * 5 * 7);
    }

    #[test]
    fn normal_boundary_detection() {
        let g = StaggeredGrid::new(3, 3, 3, 1.0);
        assert!(g.is_normal_boundary(Component::U, 0, 1, 1));
        assert!(g.is_normal_boundary(Component::U, 3, 1, 1));
        assert!(!g.is_normal_boundary(Component::U, 1, 0, 0));
        assert!(g.is_normal_boundary(Component::W, 1, 1, 3));
        assert!(!g.is_normal_boundary(Component::V, 1, 1, 0));
    }

    #[test]
    fn geometry_helpers() {
        let g = StaggeredGrid::new(2, 2, 2, 0.5);
        assert_eq!(g.vol(), 0.125);
        assert_eq!(g.area(), 0.25);
        assert_eq!(g.cells(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2 cells")]
    fn tiny_grid_panics() {
        StaggeredGrid::new(1, 2, 2, 1.0);
    }
}
