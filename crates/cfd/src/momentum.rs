//! Implicit momentum assembly with first-order upwinding.
//!
//! For each velocity component, the time-implicit finite-volume
//! discretization on its staggered control volume produces a **nonsymmetric
//! 7-point system** — the exact class of matrix the paper's wafer solver
//! targets, and the source of Fig. 9's test system.
//!
//! Discretization (Patankar power-law simplified to first-order upwind):
//! per control-volume face, diffusive conductance `D = ν·h` and convective
//! mass flux `F = h²·(interpolated normal velocity)`, giving neighbor
//! coefficients `a_nb = D + max(∓F, 0)`. The diagonal collects
//! `Σ a_nb + Σ F (net outflow) + h³/Δt`; the right-hand side carries the
//! previous time level and the pressure gradient. Faces *on* walls in their
//! normal direction become identity rows (Dirichlet); tangential walls enter
//! through a half-cell conductance `2D` ghost coupling (this is how the
//! moving lid drives the cavity).

use crate::fields::FlowField;
use crate::grid::{Component, StaggeredGrid};
use crate::opcount::OpClassCounts;
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;

/// Fluid and scheme parameters.
#[derive(Copy, Clone, Debug)]
pub struct FluidProps {
    /// Kinematic viscosity ν.
    pub nu: f64,
    /// Time step Δt of the implicit discretization.
    pub dt: f64,
    /// Lid speed (x-direction, applied at the z-top wall).
    pub lid_velocity: f64,
}

impl Default for FluidProps {
    fn default() -> FluidProps {
        FluidProps { nu: 0.1, dt: 0.1, lid_velocity: 1.0 }
    }
}

/// One assembled momentum system.
#[derive(Clone, Debug)]
pub struct MomentumSystem {
    /// Which component.
    pub component: Component,
    /// The nonsymmetric 7-point matrix on the component's face mesh.
    pub matrix: DiaMatrix<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Diagonal coefficients (used by the pressure correction's `d`
    /// factors; 1.0 on Dirichlet rows).
    pub ap: Vec<f64>,
    /// Instrumented operation counts for the assembly.
    pub counts: OpClassCounts,
}

/// Axis unit steps for the three directions.
const AXES: [(i32, i32, i32); 3] = [(1, 0, 0), (0, 1, 0), (0, 0, 1)];

fn axis_of(c: Component) -> usize {
    match c {
        Component::U => 0,
        Component::V => 1,
        Component::W => 2,
    }
}

/// The component measuring velocity along `axis`.
fn component_of(axis: usize) -> Component {
    match axis {
        0 => Component::U,
        1 => Component::V,
        _ => Component::W,
    }
}

/// Tangential wall velocity seen by component `c` at the wall normal to
/// `axis` on the `plus` side: the moving lid is the +z wall moving in +x.
fn wall_velocity(c: Component, axis: usize, plus: bool, props: &FluidProps) -> f64 {
    if c == Component::U && axis == 2 && plus {
        props.lid_velocity
    } else {
        0.0
    }
}

/// Assembles the implicit momentum system for component `c` around the
/// current field (coefficients frozen at the current iterate — a Picard
/// linearization, as in MFIX).
pub fn assemble_momentum(field: &FlowField, c: Component, props: &FluidProps) -> MomentumSystem {
    let grid = field.grid;
    let mesh = grid.face_mesh(c);
    let n_axis = axis_of(c);
    let area = grid.area();
    let vol = grid.vol();
    let d_cond = props.nu * grid.h; // ν·h²/h
    let inertia = vol / props.dt;
    let mut counts = OpClassCounts::default();

    let mut matrix = DiaMatrix::new(mesh, &Offset3::seven_point());
    let mut rhs = vec![0.0; mesh.len()];
    let mut ap_out = vec![1.0; mesh.len()];
    let old = field.component(c);

    for (fx, fy, fz) in mesh.iter() {
        let row = mesh.idx(fx, fy, fz);
        if grid.is_normal_boundary(c, fx, fy, fz) {
            // Dirichlet identity row: stationary walls.
            matrix.set(fx, fy, fz, Offset3::CENTER, 1.0);
            rhs[row] = 0.0;
            counts.merge += 1; // boundary mask
            continue;
        }

        let pos = [fx as i32, fy as i32, fz as i32];
        let mut ap = inertia;
        let mut b = inertia * old[row];
        counts.flop += 1; // inertia * old

        // The two cells sharing this face (cell indices on the p-mesh).
        let mut cell_minus = pos;
        cell_minus[n_axis] -= 1;
        let cell_plus = pos;

        for axis in 0..3 {
            for (sign, plus) in [(1i32, true), (-1i32, false)] {
                // Neighbor face in the component's own mesh.
                let (dx, dy, dz) = AXES[axis];
                let nb = [pos[0] + sign * dx, pos[1] + sign * dy, pos[2] + sign * dz];
                let nb_exists =
                    mesh.neighbor(fx, fy, fz, sign * dx, sign * dy, sign * dz).is_some();

                // Convective flux through this CV face.
                let f_flux = if axis == n_axis {
                    // Normal direction: average of this face and the
                    // neighbor face of the same component.
                    let here = old[row];
                    let there = if nb_exists {
                        old[mesh.idx(nb[0] as usize, nb[1] as usize, nb[2] as usize)]
                    } else {
                        0.0
                    };
                    counts.transport += 1;
                    counts.flop += 2; // average
                    area * 0.5 * (here + there)
                } else {
                    // Tangential direction: average the crossing component
                    // at the faces of the two adjacent cells. At a wall
                    // (cell face on the boundary) those values are the
                    // stored boundary-face values (zero for no-penetration).
                    let cross = component_of(axis);
                    let cmesh = grid.face_mesh(cross);
                    let carr = field.component(cross);
                    let face_off = if plus { 1 } else { 0 };
                    let mut f1 = cell_minus;
                    f1[axis] += face_off;
                    let mut f2 = cell_plus;
                    f2[axis] += face_off;
                    let v1 = carr[cmesh.idx(f1[0] as usize, f1[1] as usize, f1[2] as usize)];
                    let v2 = carr[cmesh.idx(f2[0] as usize, f2[1] as usize, f2[2] as usize)];
                    counts.transport += 2;
                    counts.flop += 2;
                    area * 0.5 * (v1 + v2)
                };
                // Outflow-positive on the plus side, inflow-positive on the
                // minus side.
                let f_signed = if plus { f_flux } else { -f_flux };

                if nb_exists {
                    // Upwind neighbor coefficient.
                    let a_nb = d_cond + (-f_signed).max(0.0);
                    counts.merge += 1; // max()
                    counts.flop += 2; // add + sign fold
                    let nb_is_wall =
                        grid.is_normal_boundary(c, nb[0] as usize, nb[1] as usize, nb[2] as usize);
                    if nb_is_wall {
                        // The neighbor is a Dirichlet wall face (value 0):
                        // fold it into the right-hand side so the interior
                        // operator stays decoupled from identity rows.
                        // b += a_nb * 0.0
                    } else {
                        matrix.set(
                            fx,
                            fy,
                            fz,
                            Offset3::new(sign * dx, sign * dy, sign * dz),
                            -a_nb,
                        );
                    }
                    ap += a_nb + f_signed;
                    counts.flop += 2;
                } else {
                    // Tangential wall: half-cell ghost with value from the
                    // wall (the lid for U at the +z wall). No convection
                    // (no penetration).
                    let vw = wall_velocity(c, axis, plus, props);
                    ap += 2.0 * d_cond;
                    b += 2.0 * d_cond * vw;
                    counts.merge += 1; // boundary select
                    counts.flop += 3;
                }
            }
        }

        // Pressure gradient: (p_minus − p_plus) · area along the normal.
        let pmesh = grid.p_mesh();
        let pm = field.p
            [pmesh.idx(cell_minus[0] as usize, cell_minus[1] as usize, cell_minus[2] as usize)];
        let pp =
            field.p[pmesh.idx(cell_plus[0] as usize, cell_plus[1] as usize, cell_plus[2] as usize)];
        b += (pm - pp) * area;
        counts.transport += 2;
        counts.flop += 2;

        matrix.set(fx, fy, fz, Offset3::CENTER, ap);
        rhs[row] = b;
        ap_out[row] = ap;
    }

    MomentumSystem { component: c, matrix, rhs, ap: ap_out, counts }
}

/// Convenience: the mesh a component's system lives on.
pub fn momentum_mesh(grid: StaggeredGrid, c: Component) -> Mesh3D {
    grid.face_mesh(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::stencil7::{diagonal_dominance_slack, is_symmetric};

    fn lid_field() -> FlowField {
        let grid = StaggeredGrid::new(4, 4, 4, 0.25);
        let mut f = FlowField::zeros(grid);
        // A little motion so convection is nonzero.
        for u in f.u.iter_mut() {
            *u = 0.3;
        }
        f
    }

    #[test]
    fn quiescent_system_is_symmetric_diffusion() {
        // With zero velocity everywhere, upwinding has nothing to upwind:
        // the interior of the operator is symmetric (diffusion + inertia).
        let f = FlowField::zeros(StaggeredGrid::new(4, 4, 4, 0.25));
        let sys = assemble_momentum(&f, Component::U, &FluidProps::default());
        assert!(sys.matrix.validate().is_ok());
        assert!(is_symmetric(&sys.matrix));
        assert!(diagonal_dominance_slack(&sys.matrix) > 0.0);
    }

    #[test]
    fn moving_field_gives_nonsymmetric_system() {
        let f = lid_field();
        let sys = assemble_momentum(&f, Component::U, &FluidProps::default());
        assert!(sys.matrix.validate().is_ok());
        assert!(!is_symmetric(&sys.matrix), "convection must break symmetry");
        assert!(
            diagonal_dominance_slack(&sys.matrix) >= -1e-12,
            "upwinding must preserve dominance"
        );
    }

    #[test]
    fn boundary_rows_are_identity() {
        let f = lid_field();
        let sys = assemble_momentum(&f, Component::U, &FluidProps::default());
        let mesh = f.grid.face_mesh(Component::U);
        let row = mesh.idx(0, 2, 2); // x-normal wall face
        assert_eq!(sys.matrix.row_entries(row), vec![(row, 1.0)]);
        assert_eq!(sys.rhs[row], 0.0);
        assert_eq!(sys.ap[row], 1.0);
    }

    #[test]
    fn lid_drives_top_adjacent_u_faces() {
        let f = FlowField::zeros(StaggeredGrid::new(4, 4, 4, 0.25));
        let props = FluidProps { lid_velocity: 2.0, ..Default::default() };
        let sys = assemble_momentum(&f, Component::U, &props);
        let mesh = f.grid.face_mesh(Component::U);
        let top = mesh.idx(2, 2, 3); // k = nz-1: adjacent to the lid
        let inner = mesh.idx(2, 2, 1);
        assert!(sys.rhs[top] > 0.0, "lid must inject momentum");
        assert_eq!(sys.rhs[inner], 0.0);
        // The v-component must NOT be driven by the lid.
        let sysv = assemble_momentum(&f, Component::V, &props);
        assert!(sysv.rhs.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn pressure_gradient_enters_rhs() {
        let grid = StaggeredGrid::new(4, 4, 4, 0.25);
        let mut f = FlowField::zeros(grid);
        let pmesh = grid.p_mesh();
        for (i, j, k) in pmesh.iter() {
            f.p[pmesh.idx(i, j, k)] = i as f64; // gradient in +x
        }
        let sys = assemble_momentum(&f, Component::U, &FluidProps::default());
        let mesh = grid.face_mesh(Component::U);
        let row = mesh.idx(2, 2, 2);
        // p increases with x → (pm - pp) negative → rhs negative.
        assert!(sys.rhs[row] < 0.0);
        // V faces see no x-gradient.
        let sysv = assemble_momentum(&f, Component::V, &FluidProps::default());
        let vrow = grid.face_mesh(Component::V).idx(2, 2, 2);
        assert_eq!(sysv.rhs[vrow], 0.0);
    }

    #[test]
    fn op_counts_are_recorded() {
        let f = lid_field();
        let sys = assemble_momentum(&f, Component::U, &FluidProps::default());
        let interior = (f.grid.nx - 1) * f.grid.ny * f.grid.nz;
        let pp = sys.counts.per_point(interior);
        assert!(pp.flop > 10.0, "flops per point {}", pp.flop);
        assert!(pp.transport >= 6.0, "transports per point {}", pp.transport);
        assert!(pp.merge >= 4.0, "merges per point {}", pp.merge);
    }

    #[test]
    fn all_three_components_assemble() {
        let f = lid_field();
        for c in [Component::U, Component::V, Component::W] {
            let sys = assemble_momentum(&f, c, &FluidProps::default());
            assert!(sys.matrix.validate().is_ok(), "{c:?}");
            assert_eq!(sys.rhs.len(), f.grid.face_mesh(c).len());
        }
    }
}
