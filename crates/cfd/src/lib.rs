//! An MFIX-like incompressible CFD substrate.
//!
//! The paper's application context is the NETL MFIX code: a Cartesian-mesh
//! finite-volume solver using the SIMPLE (Semi-Implicit Method for
//! Pressure-Linked Equations) algorithm, where "four linear systems are
//! solved at every time step, one for each of the solution variables, three
//! velocity components u, v, w and pressure p" — each a nonsymmetric
//! 7-point system handed to BiCGStab. This crate implements that substrate
//! from scratch:
//!
//! * [`grid`] — a MAC-staggered Cartesian grid (velocities on faces,
//!   pressure at cell centers),
//! * [`fields`] — the flow state and its interpolations,
//! * [`momentum`] — implicit momentum assembly with first-order upwinding
//!   ("First order upwinding is the most common scheme and was used to
//!   determine operation types and counts"),
//! * [`continuity`] — the SIMPLE pressure-correction equation,
//! * [`simple`] — Algorithm 2: the outer loop coupling them,
//! * [`cavity`] — the lid-driven cavity case used for the paper's cluster
//!   comparison ("this was done within the NETL MFIX code while computing a
//!   lid-driven cavity flow"),
//! * [`scalar`] — passive-scalar (energy) transport, the next complexity
//!   level §VI defers ("without energy and species equations"),
//! * [`opcount`] — instrumented operation counts per SIMPLE step, the raw
//!   material for Table II.
//!
//! The momentum systems this crate assembles are the Fig. 9 workload: "We
//! took a linear system from the timestep discretization ... of the momentum
//! equation for a velocity component on a 100 × 400 × 100 mesh."

#![warn(missing_docs)]

pub mod cavity;
pub mod continuity;
pub mod diagnostics;
pub mod fields;
pub mod grid;
pub mod momentum;
pub mod opcount;
pub mod scalar;
pub mod simple;

pub use cavity::Cavity;
pub use grid::StaggeredGrid;
pub use simple::{SimpleParams, SimpleSolver};
