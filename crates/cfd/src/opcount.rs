//! Instrumented operation counts per SIMPLE step — the raw material for
//! Table II.
//!
//! The paper groups the work outside the linear solver "into vector merge
//! operations, floating point (FLOP) operations (multiply, add, subtract),
//! square root, divide, and neighbor transport operations", and reports
//! estimated *cycles per meshpoint* for each SIMPLE step. The assembly
//! routines in this crate count those operation classes as they run; the
//! `perf-model` crate converts counts to cycles.

/// Counts of the five operation classes of Table II.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpClassCounts {
    /// Vector merge operations (upwind selections, boundary masking).
    pub merge: u64,
    /// Adds, subtracts and multiplies.
    pub flop: u64,
    /// Square roots.
    pub sqrt: u64,
    /// Divides.
    pub div: u64,
    /// Neighbor transport operations (reads of another mesh point's data).
    pub transport: u64,
}

impl OpClassCounts {
    /// Elementwise sum.
    pub fn add(&mut self, other: OpClassCounts) {
        self.merge += other.merge;
        self.flop += other.flop;
        self.sqrt += other.sqrt;
        self.div += other.div;
        self.transport += other.transport;
    }

    /// Per-meshpoint averages over `points`.
    pub fn per_point(&self, points: usize) -> PerPointClassCounts {
        let d = points as f64;
        PerPointClassCounts {
            merge: self.merge as f64 / d,
            flop: self.flop as f64 / d,
            sqrt: self.sqrt as f64 / d,
            div: self.div as f64 / d,
            transport: self.transport as f64 / d,
        }
    }
}

/// Per-meshpoint operation-class averages.
#[derive(Copy, Clone, Debug, Default)]
pub struct PerPointClassCounts {
    /// Merges per point.
    pub merge: f64,
    /// FLOPs per point.
    pub flop: f64,
    /// Square roots per point.
    pub sqrt: f64,
    /// Divides per point.
    pub div: f64,
    /// Neighbor transports per point.
    pub transport: f64,
}

/// Counts for every step of one SIMPLE iteration (the rows of Table II).
#[derive(Copy, Clone, Debug, Default)]
pub struct SimpleStepCounts {
    /// Initialization (shear and time-dependent source terms).
    pub initialization: OpClassCounts,
    /// One momentum-component assembly (averaged over u, v, w).
    pub momentum: OpClassCounts,
    /// Continuity (pressure-correction) assembly.
    pub continuity: OpClassCounts,
    /// Field update (corrections applied to u, v, w, p).
    pub field_update: OpClassCounts,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut a = OpClassCounts { merge: 1, flop: 2, sqrt: 3, div: 4, transport: 5 };
        a.add(OpClassCounts { merge: 10, flop: 20, sqrt: 30, div: 40, transport: 50 });
        assert_eq!(a, OpClassCounts { merge: 11, flop: 22, sqrt: 33, div: 44, transport: 55 });
    }

    #[test]
    fn per_point_divides() {
        let a = OpClassCounts { merge: 10, flop: 100, sqrt: 0, div: 20, transport: 60 };
        let pp = a.per_point(10);
        assert_eq!(pp.merge, 1.0);
        assert_eq!(pp.flop, 10.0);
        assert_eq!(pp.div, 2.0);
        assert_eq!(pp.transport, 6.0);
    }
}
