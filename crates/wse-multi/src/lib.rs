//! Multi-wafer ensemble runtime.
//!
//! The paper closes by asking whether clustering several wafer-scale
//! systems, with sufficient interconnect bandwidth, can scale the stencil
//! solver beyond one wafer (§VIII.B). `perf-model::multiwafer` answers
//! that analytically; this crate answers it executably: a [`MultiFabric`]
//! holds `k` independent [`Fabric`] instances, each simulating one wafer's
//! X-slab of the global mesh, stitched together along their east/west
//! boundaries by a [`HostLink`] interconnect model. Flits cross between
//! wafers through the declared edge channels added to `wse-arch`
//! ([`Fabric::open_edge`]): seam egress queues are drained by the host,
//! carried across the link, and injected into the neighbor wafer.
//!
//! Two stepping regimes:
//!
//! - **Lockstep / ideal link** ([`HostLink::ideal`]): every wafer steps on
//!   the same global clock, seam credits mirror the remote input queue's
//!   start-of-cycle space, and drained flits are injected before the next
//!   cycle. This reproduces the fused single-fabric simulation *bit for
//!   bit* — a router's cardinal input-queue occupancy at the start of
//!   phase 3 of cycle `t` equals its occupancy at the end of cycle `t-1`
//!   (phases 1–2 only touch ramp queues), so a host-granted credit read
//!   between steps is exactly the snapshot the fused stepper would take.
//!   The distributed solver's transparent mode runs on this and must match
//!   the single-wafer residual trajectory exactly.
//! - **Modeled link** ([`HostLink::new`]): finite bandwidth and latency.
//!   Drained flits serialize onto a full-duplex per-seam channel at
//!   `bytes_per_cycle` and arrive `latency_cycles` later, modeling the
//!   host interconnect that carries fp16 halo planes between neighbor
//!   wafers and the top level of the hierarchical AllReduce.

#![warn(missing_docs)]

use rayon::prelude::*;
use std::collections::VecDeque;
use stencil::decomp::split_even;
use wse_arch::fabric::{Fabric, StallReport};
use wse_arch::types::{Color, Flit, Port};

/// Host interconnect model between neighboring wafers, in units of the
/// wafer clock (the simulator's cycle).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HostLink {
    /// Link bandwidth per direction, in bytes per wafer-clock cycle
    /// (`f64::INFINITY` for the ideal link).
    pub bytes_per_cycle: f64,
    /// One-way link latency in wafer-clock cycles.
    pub latency_cycles: u64,
}

impl HostLink {
    /// A link with the given bandwidth (GB/s), one-way latency (µs), and
    /// wafer clock (GHz), converted to per-cycle units.
    pub fn new(gb_per_s: f64, latency_us: f64, clock_ghz: f64) -> HostLink {
        assert!(gb_per_s > 0.0 && clock_ghz > 0.0 && latency_us >= 0.0);
        HostLink {
            bytes_per_cycle: gb_per_s / clock_ghz,
            latency_cycles: (latency_us * clock_ghz * 1000.0).round() as u64,
        }
    }

    /// The paper-configuration default, matching `perf-model`'s
    /// `MultiWafer`: 1000 GB/s per direction, 0.2 µs one-way, at the
    /// 0.9 GHz paper clock (180 cycles latency, ~1111 bytes/cycle).
    pub fn paper_default() -> HostLink {
        HostLink::new(1000.0, 0.2, 0.9)
    }

    /// An infinitely fast link: unlimited bandwidth, zero latency. Under
    /// this link [`MultiFabric::run_linked`] is bit-for-bit identical to
    /// simulating the unsplit fabric.
    pub fn ideal() -> HostLink {
        HostLink { bytes_per_cycle: f64::INFINITY, latency_cycles: 0 }
    }

    /// `true` for [`HostLink::ideal`].
    pub fn is_ideal(&self) -> bool {
        self.bytes_per_cycle.is_infinite() && self.latency_cycles == 0
    }
}

/// One seam channel: a declared edge egress on the `src` wafer paired
/// with the matching edge ingress on the `dst` wafer.
#[derive(Copy, Clone, Debug)]
struct Channel {
    /// Egress wafer index.
    src: usize,
    /// Egress tile (shard-local) and boundary port.
    sx: usize,
    sy: usize,
    sport: Port,
    /// Ingress wafer index (always `src ± 1`).
    dst: usize,
    /// Ingress tile (shard-local) and boundary port.
    dx: usize,
    dy: usize,
    dport: Port,
    /// The fabric color carried by the channel.
    color: Color,
}

impl Channel {
    /// Seam index (between wafer `min(src,dst)` and `+1`) and direction
    /// (0 = eastward, 1 = westward) — the serialization unit: each seam
    /// is one full-duplex physical link.
    fn seam_dir(&self) -> (usize, usize) {
        if self.dst > self.src {
            (self.src, 0)
        } else {
            (self.dst, 1)
        }
    }
}

/// `k` wafers simulating X-slabs of a `global_w × h` tile grid, linked by
/// a [`HostLink`].
pub struct MultiFabric {
    shards: Vec<Fabric>,
    /// Global x of each shard's first tile column.
    offsets: Vec<usize>,
    global_w: usize,
    h: usize,
    link: HostLink,
    channels: Vec<Channel>,
    /// Per-channel in-flight flits: `(arrival cycle, flit)` in FIFO order.
    in_flight: Vec<VecDeque<(u64, Flit)>>,
    /// Per-seam, per-direction serialization cursor: the cycle (fractional)
    /// at which the link finishes the last byte accepted so far.
    link_ready: Vec<[f64; 2]>,
    /// Flits injected into ingress queues so far — counted as ensemble
    /// progress so a long-latency link never trips the stall watchdog.
    injected: u64,
}

impl MultiFabric {
    /// `k` fresh (empty) wafers covering a `global_w × h` grid with
    /// [`split_even`] X-slab widths. The caller loads per-wafer programs
    /// (through [`MultiFabric::shard_mut`]), declares seam edge channels
    /// on boundary tiles, then calls [`MultiFabric::pair_seams`].
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds `global_w`.
    pub fn new(global_w: usize, h: usize, k: usize, link: HostLink) -> MultiFabric {
        assert!(k > 0 && k <= global_w, "need 1..=width wafers, got {k} for width {global_w}");
        let slabs = split_even(global_w, k);
        let shards: Vec<Fabric> = slabs.iter().map(|s| Fabric::new(s.len(), h)).collect();
        MultiFabric {
            shards,
            offsets: slabs.iter().map(|s| s.start).collect(),
            global_w,
            h,
            link,
            channels: Vec::new(),
            in_flight: Vec::new(),
            link_ready: vec![[0.0; 2]; k.saturating_sub(1)],
            injected: 0,
        }
    }

    /// Splits a fully configured single fabric into `k` X-slab wafers:
    /// tiles (programs, memory, routes, registers) are cloned column
    /// ranges; every route fanout that crossed a cut becomes a paired
    /// seam edge channel. Under [`HostLink::ideal`] the resulting
    /// ensemble steps bit-for-bit like the original. All tile state —
    /// programs, activated tasks, memory, queued flits — carries over;
    /// the ensemble clock restarts at zero.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn split_x(fabric: &Fabric, k: usize, link: HostLink) -> MultiFabric {
        let (w, h) = (fabric.width(), fabric.height());
        let mut multi = MultiFabric::new(w, h, k, link);
        for m in 0..k {
            let x0 = multi.offsets[m];
            let lw = multi.shards[m].width();
            for ly in 0..h {
                for lx in 0..lw {
                    *multi.shards[m].tile_mut(lx, ly) = fabric.tile(x0 + lx, ly).clone();
                }
            }
        }
        // Every fanout crossing a cut becomes a seam channel. One edge
        // channel per (tile, port, color) — multiple in-ports fanning the
        // same color through the same boundary port share it.
        for m in 0..k - 1 {
            let cut = multi.offsets[m + 1];
            let (lw, rw) = (multi.shards[m].width(), multi.shards[m + 1].width());
            debug_assert_eq!(cut, multi.offsets[m] + lw);
            let _ = rw;
            for y in 0..h {
                let mut eastward: Vec<Color> = fabric
                    .tile(cut - 1, y)
                    .router
                    .routes()
                    .filter(|(_, _, fanout)| fanout.contains(&Port::East))
                    .map(|(_, c, _)| c)
                    .collect();
                eastward.sort_unstable();
                eastward.dedup();
                for c in eastward {
                    multi.open_seam_channel(m, lw - 1, y, Port::East, m + 1, 0, y, Port::West, c);
                }
                let mut westward: Vec<Color> = fabric
                    .tile(cut, y)
                    .router
                    .routes()
                    .filter(|(_, _, fanout)| fanout.contains(&Port::West))
                    .map(|(_, c, _)| c)
                    .collect();
                westward.sort_unstable();
                westward.dedup();
                for c in westward {
                    multi.open_seam_channel(m + 1, 0, y, Port::West, m, lw - 1, y, Port::East, c);
                }
            }
        }
        multi
    }

    /// Declares both ends of one seam channel and records it.
    #[allow(clippy::too_many_arguments)]
    fn open_seam_channel(
        &mut self,
        src: usize,
        sx: usize,
        sy: usize,
        sport: Port,
        dst: usize,
        dx: usize,
        dy: usize,
        dport: Port,
        color: Color,
    ) {
        self.shards[src].open_edge(sx, sy, sport, color);
        self.shards[dst].open_edge(dx, dy, dport, color);
        self.channels.push(Channel { src, sx, sy, sport, dst, dx, dy, dport, color });
        self.in_flight.push(VecDeque::new());
    }

    /// Pairs seam channels from the edge declarations the per-wafer
    /// program builders made: an east-edge declaration on wafer `m` pairs
    /// with the matching west-edge declaration at the same `(y, color)`
    /// on wafer `m + 1` (and symmetrically westward). Call once, after
    /// all programs are built. Channels where only one side routes
    /// egress simply never carry flits in that direction.
    ///
    /// # Panics
    /// Panics if an east/west boundary declaration has no matching
    /// declaration on the neighboring wafer.
    pub fn pair_seams(&mut self) {
        assert!(self.channels.is_empty(), "seams already paired");
        let k = self.shards.len();
        let mut pairs: Vec<Channel> = Vec::new();
        for m in 0..k {
            let lw = self.shards[m].width();
            for (x, y, port, color) in self.shards[m].edge_ports() {
                match port {
                    Port::East if m + 1 < k => {
                        assert_eq!(x, lw - 1);
                        assert!(
                            self.shards[m + 1].edge_port_declared(0, y, Port::West, color),
                            "east edge ({x},{y}) color {color} on wafer {m} has no west peer"
                        );
                        pairs.push(Channel {
                            src: m,
                            sx: x,
                            sy: y,
                            sport: Port::East,
                            dst: m + 1,
                            dx: 0,
                            dy: y,
                            dport: Port::West,
                            color,
                        });
                    }
                    Port::West if m > 0 => {
                        assert_eq!(x, 0);
                        let nw = self.shards[m - 1].width();
                        assert!(
                            self.shards[m - 1].edge_port_declared(nw - 1, y, Port::East, color),
                            "west edge ({x},{y}) color {color} on wafer {m} has no east peer"
                        );
                        pairs.push(Channel {
                            src: m,
                            sx: x,
                            sy: y,
                            sport: Port::West,
                            dst: m - 1,
                            dx: nw - 1,
                            dy: y,
                            dport: Port::East,
                            color,
                        });
                    }
                    _ => panic!(
                        "edge port ({x},{y}) {port:?} color {color} on wafer {m} faces no \
                         neighboring wafer"
                    ),
                }
            }
        }
        for ch in pairs {
            self.channels.push(ch);
            self.in_flight.push(VecDeque::new());
        }
    }

    /// Number of wafers.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Global grid width in tiles.
    pub fn global_width(&self) -> usize {
        self.global_w
    }

    /// Grid height in tiles.
    pub fn height(&self) -> usize {
        self.h
    }

    /// The global x-range wafer `m` owns.
    pub fn slab(&self, m: usize) -> std::ops::Range<usize> {
        self.offsets[m]..self.offsets[m] + self.shards[m].width()
    }

    /// Maps a global tile column to `(wafer, local column)`.
    pub fn to_local(&self, gx: usize) -> (usize, usize) {
        assert!(gx < self.global_w, "column {gx} outside global width {}", self.global_w);
        let m = self.offsets.partition_point(|&o| o <= gx) - 1;
        (m, gx - self.offsets[m])
    }

    /// Immutable access to wafer `m`.
    pub fn shard(&self, m: usize) -> &Fabric {
        &self.shards[m]
    }

    /// Mutable access to wafer `m` (program loading).
    pub fn shard_mut(&mut self, m: usize) -> &mut Fabric {
        &mut self.shards[m]
    }

    /// The link model in use.
    pub fn link(&self) -> HostLink {
        self.link
    }

    /// The ensemble clock: wafer 0's cycle (all wafers agree outside the
    /// interior of [`MultiFabric::run_each`]).
    pub fn cycle(&self) -> u64 {
        self.shards[0].cycle()
    }

    /// Sum of per-wafer progress counters plus cross-link deliveries —
    /// the ensemble stall watchdog's progress measure.
    pub fn total_progress(&self) -> u64 {
        self.shards.iter().map(Fabric::progress).sum::<u64>() + self.injected
    }

    /// `true` when every wafer is quiescent and nothing is queued on or
    /// in flight across any seam.
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(Fabric::is_quiescent)
            && self.in_flight.iter().all(VecDeque::is_empty)
            && self
                .channels
                .iter()
                .all(|c| self.shards[c.src].edge_out_len(c.sx, c.sy, c.sport, c.color) == 0)
    }

    /// Opens a named trace phase on every wafer (no-op for untraced ones).
    pub fn phase_begin(&mut self, name: &'static str) {
        for f in &mut self.shards {
            f.phase_begin(name);
        }
    }

    /// Closes the open trace phase on every wafer.
    pub fn phase_end(&mut self) {
        for f in &mut self.shards {
            f.phase_end();
        }
    }

    /// Advances every wafer's clock by `cycles` without stepping
    /// (host-side dead time, e.g. the top level of the hierarchical
    /// AllReduce). Requires ensemble quiescence.
    pub fn advance_idle(&mut self, cycles: u64) {
        for f in &mut self.shards {
            f.advance_idle(cycles);
        }
    }

    /// One linked ensemble cycle: grant seam credits, step every wafer
    /// (in parallel), drain seam egress onto the link, deliver arrivals.
    ///
    /// Under [`HostLink::ideal`], credits mirror the remote input queue's
    /// start-of-cycle space and drained flits are injected immediately —
    /// the constructively bit-exact lockstep of the fused fabric. Under a
    /// modeled link, egress admission is capped only by the channel
    /// buffer, and arrival times follow bandwidth serialization plus
    /// latency.
    pub fn step_linked(&mut self) {
        let ideal = self.link.is_ideal();
        // Seam credits for the coming cycle.
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let credits = if ideal {
                self.shards[c.dst].edge_in_space(c.dx, c.dy, c.dport, c.color)
            } else {
                // The host drains egress every cycle; a small standing
                // budget keeps the fabric streaming without modeling an
                // unbounded host buffer.
                8
            };
            self.shards[c.src].set_edge_credits(c.sx, c.sy, c.sport, c.color, credits);
        }

        self.shards.par_iter_mut().for_each(Fabric::step);
        let now = self.shards[0].cycle();
        debug_assert!(
            self.shards.iter().all(|f| f.cycle() == now),
            "linked wafers must share a clock"
        );

        // Drain egress onto the link in fixed channel order (the
        // deterministic host service order).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let flits = self.shards[c.src].drain_edge_out(c.sx, c.sy, c.sport, c.color);
            if flits.is_empty() {
                continue;
            }
            let (seam, dir) = c.seam_dir();
            for flit in flits {
                let due = if ideal {
                    now
                } else {
                    let ready = &mut self.link_ready[seam][dir];
                    *ready =
                        ready.max(now as f64) + f64::from(flit.bytes()) / self.link.bytes_per_cycle;
                    ready.ceil() as u64 + self.link.latency_cycles
                };
                self.in_flight[ci].push_back((due, flit));
            }
        }

        // Deliver due arrivals, per channel in FIFO order; a full ingress
        // queue holds the head (host-side backpressure).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            while let Some(&(due, flit)) = self.in_flight[ci].front() {
                if due > now {
                    break;
                }
                if !self.shards[c.dst].inject_edge(c.dx, c.dy, c.dport, c.color, flit) {
                    debug_assert!(!ideal, "ideal-link credits guarantee ingress space");
                    break;
                }
                self.in_flight[ci].pop_front();
                self.injected += 1;
            }
        }
    }

    /// Steps the linked ensemble until quiescence under a stall watchdog
    /// (the ensemble analogue of [`Fabric::run_watched`]). Returns cycles
    /// elapsed.
    ///
    /// # Errors
    /// Returns a merged [`StallReport`] (tile coordinates globalized) on
    /// a zero-progress window or an exceeded deadline.
    pub fn run_linked(
        &mut self,
        max_cycles: u64,
        stall_window: u64,
    ) -> Result<u64, Box<StallReport>> {
        assert!(stall_window > 0, "stall window must be nonzero");
        let start = self.cycle();
        let mut last_progress = self.total_progress();
        let mut window_start = start;
        while !self.is_quiescent() {
            if self.cycle() - start >= max_cycles {
                return Err(self.ensemble_stall(self.cycle() - window_start, true));
            }
            self.step_linked();
            let p = self.total_progress();
            if p != last_progress {
                last_progress = p;
                window_start = self.cycle();
            } else if self.cycle() - window_start >= stall_window {
                return Err(self.ensemble_stall(self.cycle() - window_start, false));
            }
        }
        Ok(self.cycle() - start)
    }

    /// Runs every wafer *independently* to quiescence, one thread per
    /// wafer — the compute phases of the hierarchical driver, where
    /// wafers only talk at halo/AllReduce boundaries. Clocks are then
    /// equalized to the slowest wafer (ensemble time is the max), and the
    /// maximum per-wafer elapsed cycle count is returned.
    ///
    /// # Errors
    /// Returns the first failing wafer's [`StallReport`], globalized.
    pub fn run_each(
        &mut self,
        max_cycles: u64,
        stall_window: u64,
    ) -> Result<u64, Box<StallReport>> {
        let results: Vec<Result<u64, Box<StallReport>>> = self
            .shards
            .par_iter_mut()
            .enumerate()
            .map(|(_, f)| f.run_watched(max_cycles, stall_window))
            .collect();
        let mut max_elapsed = 0;
        for (m, r) in results.into_iter().enumerate() {
            match r {
                Ok(c) => max_elapsed = max_elapsed.max(c),
                Err(mut report) => {
                    for t in &mut report.stalled {
                        t.x += self.offsets[m];
                    }
                    return Err(report);
                }
            }
        }
        let target = self.shards.iter().map(Fabric::cycle).max().unwrap();
        for f in &mut self.shards {
            let lag = target - f.cycle();
            if lag > 0 {
                f.advance_idle(lag);
            }
        }
        Ok(max_elapsed)
    }

    /// The paired seam channels in `wse-lint`'s [`SeamEdge`] form — the
    /// ensemble topology the whole-fabric verification passes follow when
    /// tracing producer flows across wafers.
    ///
    /// [`SeamEdge`]: wse_lint::dataflow::SeamEdge
    pub fn seam_edges(&self) -> Vec<wse_lint::dataflow::SeamEdge> {
        self.channels
            .iter()
            .map(|c| wse_lint::dataflow::SeamEdge {
                src_shard: c.src,
                sx: c.sx,
                sy: c.sy,
                sport: c.sport,
                dst_shard: c.dst,
                dx: c.dx,
                dy: c.dy,
                dport: c.dport,
                color: c.color,
            })
            .collect()
    }

    /// Runs every `wse-lint` rule over the whole ensemble: per-shard rules
    /// on each wafer (diagnostic x coordinates globalized by the wafer's
    /// slab offset) plus the whole-ensemble deadlock, race, and progress
    /// passes with seam channels included. Call after the programs are
    /// built and seams are paired; no cycle is stepped.
    pub fn lint(&self) -> Vec<wse_lint::Diagnostic> {
        let ens = wse_lint::dataflow::Ensemble {
            shards: self.shards.iter().collect(),
            offsets: self.offsets.clone(),
            seams: self.seam_edges(),
        };
        wse_lint::lint_ensemble(&ens)
    }

    /// Merges per-wafer stall diagnoses into one globalized report.
    fn ensemble_stall(&self, window: u64, deadline_exceeded: bool) -> Box<StallReport> {
        let mut merged = StallReport {
            cycle: self.cycle(),
            window,
            deadline_exceeded,
            stalled: Vec::new(),
            total_stalled: 0,
        };
        for (m, f) in self.shards.iter().enumerate() {
            let r = f.stall_report(window, deadline_exceeded);
            merged.total_stalled += r.total_stalled;
            for mut t in r.stalled {
                t.x += self.offsets[m];
                if merged.stalled.len() < StallReport::MAX_TILES {
                    merged.stalled.push(t);
                }
            }
        }
        Box::new(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::dsr::mk;
    use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
    use wse_arch::types::Dtype;
    use wse_float::F16;

    /// A 1×w fabric streaming `n` words from (0,0) to (w-1,0) on color 1.
    fn stream_fabric(w: usize, n: u32) -> (Fabric, u32) {
        let mut f = Fabric::new(w, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        for x in 1..w - 1 {
            f.set_route(x, 0, Port::West, 1, &[Port::East]);
        }
        f.set_route(w - 1, 0, Port::West, 1, &[Port::Ramp]);
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = (1..=n).map(|i| F16::from_f64(i as f64)).collect();
            let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
            let dtx = t.core.add_dsr(mk::tx16(1, n));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        let raddr;
        {
            let t = f.tile_mut(w - 1, 0);
            raddr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, n));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, n));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        (f, raddr)
    }

    #[test]
    fn ideal_split_is_bit_identical_to_fused() {
        let n = 24u32;
        let (mut fused, raddr) = stream_fabric(6, n);
        let (template, _) = stream_fabric(6, n);
        for k in [2usize, 3] {
            let mut multi = MultiFabric::split_x(&template, k, HostLink::ideal());
            let fused_cycles = fused.run_until_quiescent(100_000).unwrap();
            let split_cycles = multi.run_linked(100_000, 2_048).unwrap();
            assert_eq!(fused_cycles, split_cycles, "k={k} diverged from the fused fabric");
            let (m, lx) = multi.to_local(5);
            let got = multi.shard(m).tile(lx, 0).mem.load_f16_slice(raddr, n as usize);
            let want = fused.tile(5, 0).mem.load_f16_slice(raddr, n as usize);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
            // Re-run the fused fabric fresh for the next k.
            let (f2, _) = stream_fabric(6, n);
            fused = f2;
        }
    }

    #[test]
    fn modeled_link_adds_latency_and_serialization() {
        let n = 16u32;
        let (template, raddr) = stream_fabric(4, n);
        let mut ideal = MultiFabric::split_x(&template, 2, HostLink::ideal());
        let ideal_cycles = ideal.run_linked(100_000, 2_048).unwrap();

        let mut slow = MultiFabric::split_x(&template, 2, HostLink::new(1000.0, 0.2, 0.9));
        assert_eq!(slow.link().latency_cycles, 180);
        let slow_cycles = slow.run_linked(100_000, 2_048).unwrap();
        assert!(
            slow_cycles >= ideal_cycles + 180,
            "modeled link must pay its latency: {slow_cycles} vs ideal {ideal_cycles}"
        );
        // Payload integrity across the modeled link.
        let (m, lx) = slow.to_local(3);
        let got = slow.shard(m).tile(lx, 0).mem.load_f16_slice(raddr, n as usize);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.to_f64(), (i + 1) as f64);
        }
    }

    #[test]
    fn to_local_round_trips() {
        let multi = MultiFabric::new(10, 2, 3, HostLink::ideal());
        for gx in 0..10 {
            let (m, lx) = multi.to_local(gx);
            assert_eq!(multi.slab(m).start + lx, gx);
        }
        assert_eq!(multi.slab(0).len() + multi.slab(1).len() + multi.slab(2).len(), 10);
    }
}
