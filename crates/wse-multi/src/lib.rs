//! Multi-wafer ensemble runtime.
//!
//! The paper closes by asking whether clustering several wafer-scale
//! systems, with sufficient interconnect bandwidth, can scale the stencil
//! solver beyond one wafer (§VIII.B). `perf-model::multiwafer` answers
//! that analytically; this crate answers it executably: a [`MultiFabric`]
//! holds `k` independent [`Fabric`] instances, each simulating one wafer's
//! X-slab of the global mesh, stitched together along their east/west
//! boundaries by a [`HostLink`] interconnect model. Flits cross between
//! wafers through the declared edge channels added to `wse-arch`
//! ([`Fabric::open_edge`]): seam egress queues are drained by the host,
//! carried across the link, and injected into the neighbor wafer.
//!
//! Two stepping regimes:
//!
//! - **Lockstep / ideal link** ([`HostLink::ideal`]): every wafer steps on
//!   the same global clock, seam credits mirror the remote input queue's
//!   start-of-cycle space, and drained flits are injected before the next
//!   cycle. This reproduces the fused single-fabric simulation *bit for
//!   bit* — a router's cardinal input-queue occupancy at the start of
//!   phase 3 of cycle `t` equals its occupancy at the end of cycle `t-1`
//!   (phases 1–2 only touch ramp queues), so a host-granted credit read
//!   between steps is exactly the snapshot the fused stepper would take.
//!   The distributed solver's transparent mode runs on this and must match
//!   the single-wafer residual trajectory exactly.
//! - **Modeled link** ([`HostLink::new`]): finite bandwidth and latency.
//!   Drained flits serialize onto a full-duplex per-seam channel at
//!   `bytes_per_cycle` and arrive `latency_cycles` later, modeling the
//!   host interconnect that carries fp16 halo planes between neighbor
//!   wafers and the top level of the hierarchical AllReduce.

//!
//! A third concern rides on top of both: **reliable transport**
//! ([`MultiFabric::arm_transport`] / [`MultiFabric::arm_faults`]). When
//! armed, seam traffic is framed with sequence numbers and checksums,
//! acked, and retransmitted on timeout, so injected host-link faults
//! ([`FaultKind::HostLinkDrop`] and friends) are detected and masked —
//! or surfaced as a structured [`LinkDown`] when the retry budget
//! exhausts. Disarmed, the ensemble pays one pointer test per step and
//! is bit-identical to the baseline path.
//!
//! [`FaultKind::HostLinkDrop`]: wse_arch::fault::FaultKind::HostLinkDrop

#![warn(missing_docs)]

pub mod tenancy;
pub mod transport;

use crate::transport::{frame_checksum, Frame, TransportState};
use rayon::prelude::*;
use std::collections::VecDeque;
use stencil::decomp::split_even;
use wse_arch::fabric::{Fabric, StallReport};
use wse_arch::fault::{FaultKind, FaultLog, FaultPlan, FaultRecord};
use wse_arch::types::{Color, Flit, Port};

pub use crate::transport::{LinkDown, LinkStats, ACK_SLACK, MAX_BACKOFF_DOUBLINGS, RETRY_BUDGET};

/// Host interconnect model between neighboring wafers, in units of the
/// wafer clock (the simulator's cycle).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HostLink {
    /// Link bandwidth per direction, in bytes per wafer-clock cycle
    /// (`f64::INFINITY` for the ideal link).
    pub bytes_per_cycle: f64,
    /// One-way link latency in wafer-clock cycles.
    pub latency_cycles: u64,
}

impl HostLink {
    /// A link with the given bandwidth (GB/s), one-way latency (µs), and
    /// wafer clock (GHz), converted to per-cycle units.
    pub fn new(gb_per_s: f64, latency_us: f64, clock_ghz: f64) -> HostLink {
        assert!(gb_per_s > 0.0 && clock_ghz > 0.0 && latency_us >= 0.0);
        HostLink {
            bytes_per_cycle: gb_per_s / clock_ghz,
            latency_cycles: (latency_us * clock_ghz * 1000.0).round() as u64,
        }
    }

    /// The paper-configuration default, matching `perf-model`'s
    /// `MultiWafer`: 1000 GB/s per direction, 0.2 µs one-way, at the
    /// 0.9 GHz paper clock (180 cycles latency, ~1111 bytes/cycle).
    pub fn paper_default() -> HostLink {
        HostLink::new(1000.0, 0.2, 0.9)
    }

    /// An infinitely fast link: unlimited bandwidth, zero latency. Under
    /// this link [`MultiFabric::run_linked`] is bit-for-bit identical to
    /// simulating the unsplit fabric.
    pub fn ideal() -> HostLink {
        HostLink { bytes_per_cycle: f64::INFINITY, latency_cycles: 0 }
    }

    /// `true` for [`HostLink::ideal`].
    pub fn is_ideal(&self) -> bool {
        self.bytes_per_cycle.is_infinite() && self.latency_cycles == 0
    }
}

/// One seam channel: a declared edge egress on the `src` wafer paired
/// with the matching edge ingress on the `dst` wafer.
#[derive(Copy, Clone, Debug)]
struct Channel {
    /// Egress wafer index.
    src: usize,
    /// Egress tile (shard-local) and boundary port.
    sx: usize,
    sy: usize,
    sport: Port,
    /// Ingress wafer index (always `src ± 1`).
    dst: usize,
    /// Ingress tile (shard-local) and boundary port.
    dx: usize,
    dy: usize,
    dport: Port,
    /// The fabric color carried by the channel.
    color: Color,
}

impl Channel {
    /// Seam index (between wafer `min(src,dst)` and `+1`) and direction
    /// (0 = eastward, 1 = westward) — the serialization unit: each seam
    /// is one full-duplex physical link.
    fn seam_dir(&self) -> (usize, usize) {
        if self.dst > self.src {
            (self.src, 0)
        } else {
            (self.dst, 1)
        }
    }
}

/// `k` wafers simulating X-slabs of a `global_w × h` tile grid, linked by
/// a [`HostLink`].
pub struct MultiFabric {
    shards: Vec<Fabric>,
    /// Global x of each shard's first tile column.
    offsets: Vec<usize>,
    global_w: usize,
    h: usize,
    link: HostLink,
    channels: Vec<Channel>,
    /// Per-channel in-flight flits: `(arrival cycle, flit)` in FIFO order.
    in_flight: Vec<VecDeque<(u64, Flit)>>,
    /// Per-seam, per-direction serialization cursor: the cycle (fractional)
    /// at which the link finishes the last byte accepted so far.
    link_ready: Vec<[f64; 2]>,
    /// Flits injected into ingress queues so far — counted as ensemble
    /// progress so a long-latency link never trips the stall watchdog.
    injected: u64,
    /// Reliable-transport state; `None` (the common case) costs one
    /// pointer test per step, mirroring trace/sanitizer arming.
    transport: Option<Box<TransportState>>,
}

impl MultiFabric {
    /// `k` fresh (empty) wafers covering a `global_w × h` grid with
    /// [`split_even`] X-slab widths. The caller loads per-wafer programs
    /// (through [`MultiFabric::shard_mut`]), declares seam edge channels
    /// on boundary tiles, then calls [`MultiFabric::pair_seams`].
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds `global_w`.
    pub fn new(global_w: usize, h: usize, k: usize, link: HostLink) -> MultiFabric {
        assert!(k > 0 && k <= global_w, "need 1..=width wafers, got {k} for width {global_w}");
        let slabs = split_even(global_w, k);
        let shards: Vec<Fabric> = slabs.iter().map(|s| Fabric::new(s.len(), h)).collect();
        MultiFabric {
            shards,
            offsets: slabs.iter().map(|s| s.start).collect(),
            global_w,
            h,
            link,
            channels: Vec::new(),
            in_flight: Vec::new(),
            link_ready: vec![[0.0; 2]; k.saturating_sub(1)],
            injected: 0,
            transport: None,
        }
    }

    /// Splits a fully configured single fabric into `k` X-slab wafers:
    /// tiles (programs, memory, routes, registers) are cloned column
    /// ranges; every route fanout that crossed a cut becomes a paired
    /// seam edge channel. Under [`HostLink::ideal`] the resulting
    /// ensemble steps bit-for-bit like the original. All tile state —
    /// programs, activated tasks, memory, queued flits — carries over;
    /// the ensemble clock restarts at zero.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn split_x(fabric: &Fabric, k: usize, link: HostLink) -> MultiFabric {
        let (w, h) = (fabric.width(), fabric.height());
        let mut multi = MultiFabric::new(w, h, k, link);
        for m in 0..k {
            let x0 = multi.offsets[m];
            let lw = multi.shards[m].width();
            for ly in 0..h {
                for lx in 0..lw {
                    *multi.shards[m].tile_mut(lx, ly) = fabric.tile(x0 + lx, ly).clone();
                }
            }
        }
        // Every fanout crossing a cut becomes a seam channel. One edge
        // channel per (tile, port, color) — multiple in-ports fanning the
        // same color through the same boundary port share it.
        for m in 0..k - 1 {
            let cut = multi.offsets[m + 1];
            let (lw, rw) = (multi.shards[m].width(), multi.shards[m + 1].width());
            debug_assert_eq!(cut, multi.offsets[m] + lw);
            let _ = rw;
            for y in 0..h {
                let mut eastward: Vec<Color> = fabric
                    .tile(cut - 1, y)
                    .router
                    .routes()
                    .filter(|(_, _, fanout)| fanout.contains(&Port::East))
                    .map(|(_, c, _)| c)
                    .collect();
                eastward.sort_unstable();
                eastward.dedup();
                for c in eastward {
                    multi.open_seam_channel(m, lw - 1, y, Port::East, m + 1, 0, y, Port::West, c);
                }
                let mut westward: Vec<Color> = fabric
                    .tile(cut, y)
                    .router
                    .routes()
                    .filter(|(_, _, fanout)| fanout.contains(&Port::West))
                    .map(|(_, c, _)| c)
                    .collect();
                westward.sort_unstable();
                westward.dedup();
                for c in westward {
                    multi.open_seam_channel(m + 1, 0, y, Port::West, m, lw - 1, y, Port::East, c);
                }
            }
        }
        multi
    }

    /// Declares both ends of one seam channel and records it.
    #[allow(clippy::too_many_arguments)]
    fn open_seam_channel(
        &mut self,
        src: usize,
        sx: usize,
        sy: usize,
        sport: Port,
        dst: usize,
        dx: usize,
        dy: usize,
        dport: Port,
        color: Color,
    ) {
        self.shards[src].open_edge(sx, sy, sport, color);
        self.shards[dst].open_edge(dx, dy, dport, color);
        self.channels.push(Channel { src, sx, sy, sport, dst, dx, dy, dport, color });
        self.in_flight.push(VecDeque::new());
    }

    /// Pairs seam channels from the edge declarations the per-wafer
    /// program builders made: an east-edge declaration on wafer `m` pairs
    /// with the matching west-edge declaration at the same `(y, color)`
    /// on wafer `m + 1` (and symmetrically westward). Call once, after
    /// all programs are built. Channels where only one side routes
    /// egress simply never carry flits in that direction.
    ///
    /// # Panics
    /// Panics if an east/west boundary declaration has no matching
    /// declaration on the neighboring wafer.
    pub fn pair_seams(&mut self) {
        assert!(self.channels.is_empty(), "seams already paired");
        let k = self.shards.len();
        let mut pairs: Vec<Channel> = Vec::new();
        for m in 0..k {
            let lw = self.shards[m].width();
            for (x, y, port, color) in self.shards[m].edge_ports() {
                match port {
                    Port::East if m + 1 < k => {
                        assert_eq!(x, lw - 1);
                        assert!(
                            self.shards[m + 1].edge_port_declared(0, y, Port::West, color),
                            "east edge ({x},{y}) color {color} on wafer {m} has no west peer"
                        );
                        pairs.push(Channel {
                            src: m,
                            sx: x,
                            sy: y,
                            sport: Port::East,
                            dst: m + 1,
                            dx: 0,
                            dy: y,
                            dport: Port::West,
                            color,
                        });
                    }
                    Port::West if m > 0 => {
                        assert_eq!(x, 0);
                        let nw = self.shards[m - 1].width();
                        assert!(
                            self.shards[m - 1].edge_port_declared(nw - 1, y, Port::East, color),
                            "west edge ({x},{y}) color {color} on wafer {m} has no east peer"
                        );
                        pairs.push(Channel {
                            src: m,
                            sx: x,
                            sy: y,
                            sport: Port::West,
                            dst: m - 1,
                            dx: nw - 1,
                            dy: y,
                            dport: Port::East,
                            color,
                        });
                    }
                    _ => panic!(
                        "edge port ({x},{y}) {port:?} color {color} on wafer {m} faces no \
                         neighboring wafer"
                    ),
                }
            }
        }
        for ch in pairs {
            self.channels.push(ch);
            self.in_flight.push(VecDeque::new());
        }
    }

    /// Number of wafers.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Global grid width in tiles.
    pub fn global_width(&self) -> usize {
        self.global_w
    }

    /// Grid height in tiles.
    pub fn height(&self) -> usize {
        self.h
    }

    /// The global x-range wafer `m` owns.
    pub fn slab(&self, m: usize) -> std::ops::Range<usize> {
        self.offsets[m]..self.offsets[m] + self.shards[m].width()
    }

    /// Maps a global tile column to `(wafer, local column)`.
    pub fn to_local(&self, gx: usize) -> (usize, usize) {
        assert!(gx < self.global_w, "column {gx} outside global width {}", self.global_w);
        let m = self.offsets.partition_point(|&o| o <= gx) - 1;
        (m, gx - self.offsets[m])
    }

    /// Immutable access to wafer `m`.
    pub fn shard(&self, m: usize) -> &Fabric {
        &self.shards[m]
    }

    /// Mutable access to wafer `m` (program loading).
    pub fn shard_mut(&mut self, m: usize) -> &mut Fabric {
        &mut self.shards[m]
    }

    /// The link model in use.
    pub fn link(&self) -> HostLink {
        self.link
    }

    /// The ensemble clock: wafer 0's cycle (all wafers agree outside the
    /// interior of [`MultiFabric::run_each`]).
    pub fn cycle(&self) -> u64 {
        self.shards[0].cycle()
    }

    /// Sum of per-wafer progress counters plus cross-link deliveries —
    /// the ensemble stall watchdog's progress measure. With the reliable
    /// transport armed, retransmission attempts count too: the watchdog
    /// holds off while the transport is still retrying and fires once it
    /// has declared the link down (or a stall outlasts the window).
    pub fn total_progress(&self) -> u64 {
        self.shards.iter().map(Fabric::progress).sum::<u64>()
            + self.injected
            + self.transport.as_ref().map_or(0, |t| t.activity)
    }

    /// `true` when every wafer is quiescent and nothing is queued on or
    /// in flight across any seam. With the reliable transport armed,
    /// undelivered frames on the wire or held at the receiver also count
    /// as pending work (unacked-but-delivered frames do not: acks are
    /// control plane and never carry payload).
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(Fabric::is_quiescent)
            && self.in_flight.iter().all(VecDeque::is_empty)
            && self.transport.as_ref().is_none_or(|t| {
                t.channels.iter().all(|ch| ch.wire.is_empty() && ch.rx_hold.is_empty())
            })
            && self
                .channels
                .iter()
                .all(|c| self.shards[c.src].edge_out_len(c.sx, c.sy, c.sport, c.color) == 0)
    }

    /// Opens a named trace phase on every wafer (no-op for untraced ones).
    pub fn phase_begin(&mut self, name: &'static str) {
        for f in &mut self.shards {
            f.phase_begin(name);
        }
    }

    /// Closes the open trace phase on every wafer.
    pub fn phase_end(&mut self) {
        for f in &mut self.shards {
            f.phase_end();
        }
    }

    /// Drops a zero-length phase marker on every traced wafer (no-op for
    /// untraced ones) — recovery actions (`checkpoint`, `rollback`,
    /// `halo_retry`) stamp the ensemble timeline through this.
    pub fn phase_marker(&mut self, name: &'static str) {
        for f in &mut self.shards {
            f.phase_marker(name);
        }
    }

    /// Records a retroactive phase span `[start, end]` on every traced
    /// wafer. The overlapped halo schedule uses this: how much of a merged
    /// `spmv+halo` window was hidden (`halo_overlap`) versus exposed
    /// (`halo_exposed`) is only known once the window closes, so the
    /// driver stamps those sub-spans after the fact.
    pub fn phase_span(&mut self, name: &'static str, start: u64, end: u64) {
        for f in &mut self.shards {
            f.phase_span(name, start, end);
        }
    }

    /// Advances every wafer's clock by `cycles` without stepping
    /// (host-side dead time, e.g. the top level of the hierarchical
    /// AllReduce). Requires ensemble quiescence.
    pub fn advance_idle(&mut self, cycles: u64) {
        for f in &mut self.shards {
            f.advance_idle(cycles);
        }
    }

    /// Arms the reliable seam transport with a schedule of ensemble-level
    /// faults (see [`FaultPlan::random_host_link`]). Framing, acks, and
    /// retransmission activate for all seam traffic; the scheduled faults
    /// fire at their cycles. With an empty plan this is
    /// [`MultiFabric::arm_transport`].
    ///
    /// # Panics
    /// Panics if the plan contains an on-wafer fault kind (arm those on
    /// the target shard via [`MultiFabric::shard_mut`]), or if a seam /
    /// wafer index is out of range for this ensemble.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        let k = self.k();
        let events = plan.events();
        for ev in &events {
            match ev.kind {
                FaultKind::HostLinkDrop { seam, dir } => {
                    assert!(seam + 1 < k, "seam {seam} out of range for k={k}");
                    assert!(dir < 2, "direction {dir} out of range");
                }
                FaultKind::HostLinkCorrupt { seam, dir, bit } => {
                    assert!(seam + 1 < k, "seam {seam} out of range for k={k}");
                    assert!(dir < 2, "direction {dir} out of range");
                    assert!(bit < 32, "payload bit {bit} out of range");
                }
                FaultKind::HostLinkStall { seam, cycles } => {
                    assert!(seam + 1 < k, "seam {seam} out of range for k={k}");
                    assert!(cycles > 0, "zero-length stall");
                }
                FaultKind::WaferStall { wafer, cycles } => {
                    assert!(wafer < k, "wafer {wafer} out of range for k={k}");
                    assert!(cycles > 0, "zero-length stall");
                }
                wafer_local => panic!(
                    "{} targets one wafer: arm it on the shard (shard_mut), not the ensemble",
                    wafer_local.label()
                ),
            }
        }
        self.transport =
            Some(Box::new(TransportState::new(self.channels.len(), k.saturating_sub(1), events)));
    }

    /// Arms the reliable transport with no scheduled faults: framing,
    /// acks, and retransmission guard the seams against nothing — and
    /// cost nothing, cycle-for-cycle (the identity is asserted by tests
    /// and the `iter_profile` bench).
    pub fn arm_transport(&mut self) {
        self.arm_faults(&FaultPlan::new());
    }

    /// `true` once [`MultiFabric::arm_faults`] or
    /// [`MultiFabric::arm_transport`] has run.
    pub fn transport_armed(&self) -> bool {
        self.transport.is_some()
    }

    /// The ensemble fault audit trail, if the transport is armed.
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.transport.as_ref().map(|t| &t.log)
    }

    /// Transport counters for seam `seam`, direction `dir` (0 = eastward,
    /// 1 = westward). Zeroes when the transport is disarmed.
    pub fn link_stats(&self, seam: usize, dir: usize) -> LinkStats {
        assert!(seam + 1 < self.k() && dir < 2, "no seam {seam} direction {dir}");
        self.transport.as_ref().map_or(LinkStats::default(), |t| t.stats[seam][dir])
    }

    /// Total frames retransmitted across every seam — the per-link
    /// counter surfaced next to the `link_retransmit` trace markers.
    pub fn retransmits(&self) -> u64 {
        self.transport.as_ref().map_or(0, |t| t.stats.iter().flatten().map(|s| s.retransmits).sum())
    }

    /// Every link-down declaration made so far, oldest first. Survives
    /// [`MultiFabric::reset_transient`] so recovery logs can report the
    /// full history.
    pub fn link_down_records(&self) -> &[LinkDown] {
        self.transport.as_ref().map_or(&[], |t| &t.down_history)
    }

    /// `true` if any seam direction is currently declared down.
    pub fn any_link_down(&self) -> bool {
        self.transport.as_ref().is_some_and(|t| t.down.iter().flatten().any(|&d| d))
    }

    /// Clears in-flight ensemble state after a fault: every shard's
    /// transient core/router/queue state (see [`Fabric::reset_transient`];
    /// SRAM, programs, and clocks survive), everything in flight on the
    /// seams, and — when the transport is armed — all framing state
    /// (sequence spaces restart at zero on both ends) plus down flags, so
    /// a rolled-back solve retries on fresh links. Stall windows, fault
    /// schedules, stats, and the down history persist: the wall clock is
    /// not rewound, so an outage outlives a rollback.
    pub fn reset_transient(&mut self) {
        for f in &mut self.shards {
            f.reset_transient();
        }
        for q in &mut self.in_flight {
            q.clear();
        }
        if let Some(t) = self.transport.as_deref_mut() {
            for ch in &mut t.channels {
                ch.reset();
            }
            for d in t.down.iter_mut().flatten() {
                *d = false;
            }
        }
    }

    /// Applies fault events due at `cycle`: stall windows open, one-shot
    /// drop/corrupt arms against the next matching frame.
    fn apply_due_link_faults(&mut self, cycle: u64) {
        let k = self.shards.len();
        let Some(t) = self.transport.as_deref_mut() else { return };
        while t.next_event < t.events.len() && t.events[t.next_event].at_cycle <= cycle {
            let ev = t.events[t.next_event];
            t.next_event += 1;
            match ev.kind {
                FaultKind::HostLinkDrop { seam, dir } => {
                    t.pending_drop[seam][dir as usize] += 1;
                }
                FaultKind::HostLinkCorrupt { seam, dir, bit } => {
                    t.pending_corrupt[seam][dir as usize].push_back(bit);
                }
                FaultKind::HostLinkStall { seam, cycles } => {
                    for until in &mut t.stall_until[seam] {
                        *until = (*until).max(cycle + cycles);
                    }
                }
                FaultKind::WaferStall { wafer, cycles } => {
                    let mut darken = |seam: usize| {
                        for until in &mut t.stall_until[seam] {
                            *until = (*until).max(cycle + cycles);
                        }
                    };
                    if wafer > 0 {
                        darken(wafer - 1);
                    }
                    if wafer + 1 < k {
                        darken(wafer);
                    }
                }
                _ => unreachable!("arm_faults rejects on-wafer kinds"),
            }
            t.log.applied.push(FaultRecord { cycle, kind: ev.kind });
        }
    }

    /// One linked ensemble cycle: grant seam credits, step every wafer
    /// (in parallel), drain seam egress onto the link, deliver arrivals.
    ///
    /// Under [`HostLink::ideal`], credits mirror the remote input queue's
    /// start-of-cycle space and drained flits are injected immediately —
    /// the constructively bit-exact lockstep of the fused fabric. Under a
    /// modeled link, egress admission is capped only by the channel
    /// buffer, and arrival times follow bandwidth serialization plus
    /// latency.
    pub fn step_linked(&mut self) {
        if self.transport.is_some() {
            self.step_linked_reliable();
            return;
        }
        let ideal = self.link.is_ideal();
        // Seam credits for the coming cycle.
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let credits = if ideal {
                self.shards[c.dst].edge_in_space(c.dx, c.dy, c.dport, c.color)
            } else {
                // The host drains egress every cycle; a small standing
                // budget keeps the fabric streaming without modeling an
                // unbounded host buffer.
                8
            };
            self.shards[c.src].set_edge_credits(c.sx, c.sy, c.sport, c.color, credits);
        }

        self.shards.par_iter_mut().for_each(Fabric::step);
        let now = self.shards[0].cycle();
        debug_assert!(
            self.shards.iter().all(|f| f.cycle() == now),
            "linked wafers must share a clock"
        );

        // Drain egress onto the link in fixed channel order (the
        // deterministic host service order).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let flits = self.shards[c.src].drain_edge_out(c.sx, c.sy, c.sport, c.color);
            if flits.is_empty() {
                continue;
            }
            let (seam, dir) = c.seam_dir();
            for flit in flits {
                let due = if ideal {
                    now
                } else {
                    let ready = &mut self.link_ready[seam][dir];
                    *ready =
                        ready.max(now as f64) + f64::from(flit.bytes()) / self.link.bytes_per_cycle;
                    ready.ceil() as u64 + self.link.latency_cycles
                };
                self.in_flight[ci].push_back((due, flit));
            }
        }

        // Deliver due arrivals, per channel in FIFO order; a full ingress
        // queue holds the head (host-side backpressure).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            while let Some(&(due, flit)) = self.in_flight[ci].front() {
                if due > now {
                    break;
                }
                if !self.shards[c.dst].inject_edge(c.dx, c.dy, c.dport, c.color, flit) {
                    debug_assert!(!ideal, "ideal-link credits guarantee ingress space");
                    break;
                }
                self.in_flight[ci].pop_front();
                self.injected += 1;
            }
        }
    }

    /// [`MultiFabric::step_linked`] with the reliable transport armed:
    /// the same credit grant, parallel step, and serialization model,
    /// plus framing / ack / retransmit bookkeeping and fault application.
    ///
    /// With no fault due, this path is cycle-identical to the disarmed
    /// stepper: fresh frames serialize with the exact arithmetic of the
    /// baseline path (headers and acks are control-plane metadata the
    /// host carries out-of-band), delivery order per channel is FIFO, and
    /// ack timeouts are sized off the frame's own delivery time so a
    /// healthy link never retransmits.
    fn step_linked_reliable(&mut self) {
        let ideal = self.link.is_ideal();
        let link = self.link;
        let now0 = self.cycle();
        self.apply_due_link_faults(now0);

        // Sender side, before the step: process due acks, then fire any
        // ack timeouts (go-back-N retransmission with bounded backoff).
        for ci in 0..self.channels.len() {
            let (seam, dir) = self.channels[ci].seam_dir();
            let src = self.channels[ci].src;
            let TransportState {
                channels,
                stats,
                stall_until,
                down,
                down_history,
                pending_drop,
                pending_corrupt,
                log,
                activity,
                ..
            } = self.transport.as_deref_mut().unwrap();
            if now0 < stall_until[seam][dir] {
                continue; // the dark seam holds frames *and* acks
            }
            let ch = &mut channels[ci];
            while let Some(&(due, cum)) = ch.acks.front() {
                if due > now0 {
                    break;
                }
                ch.acks.pop_front();
                stats[seam][dir].acks += 1;
                while ch.unacked.front().is_some_and(|f| f.seq < cum) {
                    ch.unacked.pop_front();
                    ch.attempts = 0;
                }
                if ch.unacked.is_empty() {
                    ch.deadline = u64::MAX;
                }
            }
            if down[seam][dir] || now0 < ch.deadline {
                continue;
            }
            ch.attempts += 1;
            if ch.attempts > RETRY_BUDGET {
                down[seam][dir] = true;
                down_history.push(LinkDown { cycle: now0, seam, dir, attempts: ch.attempts - 1 });
                ch.deadline = u64::MAX;
                continue;
            }
            stats[seam][dir].retransmits += ch.unacked.len() as u64;
            *activity += ch.unacked.len() as u64;
            let mut last_due = now0;
            for i in 0..ch.unacked.len() {
                let frame = ch.unacked[i];
                let due = if ideal {
                    now0
                } else {
                    let ready = &mut self.link_ready[seam][dir];
                    *ready = ready.max(now0 as f64)
                        + f64::from(frame.flit.bytes()) / link.bytes_per_cycle;
                    ready.ceil() as u64 + link.latency_cycles
                };
                last_due = last_due.max(due);
                // Retransmissions cross the same flaky wire: a pending
                // one-shot fault hits whatever frame crosses next.
                if pending_drop[seam][dir] > 0 {
                    pending_drop[seam][dir] -= 1;
                    stats[seam][dir].fault_dropped += 1;
                    log.dropped_flits += 1;
                } else {
                    let mut wired = frame;
                    if let Some(bit) = pending_corrupt[seam][dir].pop_front() {
                        wired.flit.bits ^= 1 << bit;
                        stats[seam][dir].fault_corrupted += 1;
                        log.corrupted_flits += 1;
                    }
                    ch.wire.push_back((due, wired));
                }
            }
            ch.deadline = last_due + link.latency_cycles + TransportState::slack(ch.attempts);
            self.shards[src].phase_marker("link_retransmit");
        }

        // Seam credits for the coming cycle (identical to the baseline).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let credits = if ideal {
                self.shards[c.dst].edge_in_space(c.dx, c.dy, c.dport, c.color)
            } else {
                8
            };
            self.shards[c.src].set_edge_credits(c.sx, c.sy, c.sport, c.color, credits);
        }

        self.shards.par_iter_mut().for_each(Fabric::step);
        let now = self.shards[0].cycle();
        debug_assert!(
            self.shards.iter().all(|f| f.cycle() == now),
            "linked wafers must share a clock"
        );

        // Drain egress into frames, applying any armed one-shot faults.
        // Fresh frames serialize with the baseline arithmetic (a faulted
        // frame occupies the wire whether or not it survives it).
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let flits = self.shards[c.src].drain_edge_out(c.sx, c.sy, c.sport, c.color);
            if flits.is_empty() {
                continue;
            }
            let (seam, dir) = c.seam_dir();
            let TransportState { channels, stats, pending_drop, pending_corrupt, log, .. } =
                self.transport.as_deref_mut().unwrap();
            let ch = &mut channels[ci];
            for flit in flits {
                let seq = ch.next_seq;
                ch.next_seq += 1;
                let frame = Frame { seq, flit, checksum: frame_checksum(seq, flit) };
                stats[seam][dir].frames += 1;
                let due = if ideal {
                    now
                } else {
                    let ready = &mut self.link_ready[seam][dir];
                    *ready = ready.max(now as f64) + f64::from(flit.bytes()) / link.bytes_per_cycle;
                    ready.ceil() as u64 + link.latency_cycles
                };
                if pending_drop[seam][dir] > 0 {
                    pending_drop[seam][dir] -= 1;
                    stats[seam][dir].fault_dropped += 1;
                    log.dropped_flits += 1;
                } else {
                    let mut wired = frame;
                    if let Some(bit) = pending_corrupt[seam][dir].pop_front() {
                        wired.flit.bits ^= 1 << bit;
                        stats[seam][dir].fault_corrupted += 1;
                        log.corrupted_flits += 1;
                    }
                    ch.wire.push_back((due, wired));
                }
                ch.unacked.push_back(frame);
                let deadline = due + link.latency_cycles + TransportState::slack(ch.attempts);
                ch.deadline =
                    if ch.deadline == u64::MAX { deadline } else { ch.deadline.max(deadline) };
            }
        }

        // Receiver side: validated payloads held for ingress space drain
        // first (FIFO with the wire), then due arrivals — checksum, then
        // sequence check; in-order frames deliver and ack cumulatively.
        for ci in 0..self.channels.len() {
            let c = self.channels[ci];
            let (seam, dir) = c.seam_dir();
            let TransportState { channels, stats, stall_until, .. } =
                self.transport.as_deref_mut().unwrap();
            let dark = now < stall_until[seam][dir];
            let ch = &mut channels[ci];
            loop {
                if let Some(&flit) = ch.rx_hold.front() {
                    if self.shards[c.dst].inject_edge(c.dx, c.dy, c.dport, c.color, flit) {
                        ch.rx_hold.pop_front();
                        self.injected += 1;
                        continue;
                    }
                    debug_assert!(!ideal, "ideal-link credits guarantee ingress space");
                    break;
                }
                let Some(&(due, frame)) = ch.wire.front() else { break };
                if due > now || dark {
                    break;
                }
                ch.wire.pop_front();
                if frame_checksum(frame.seq, frame.flit) != frame.checksum {
                    stats[seam][dir].checksum_discarded += 1;
                    continue; // no ack: the sender's timeout recovers it
                }
                match frame.seq.cmp(&ch.expected) {
                    std::cmp::Ordering::Less => {
                        stats[seam][dir].dup_discarded += 1;
                        ch.acks.push_back((now + link.latency_cycles, ch.expected));
                    }
                    std::cmp::Ordering::Greater => {
                        // A gap: an earlier frame was lost. Go-back-N
                        // discards until the retransmission arrives.
                        stats[seam][dir].gap_discarded += 1;
                        ch.acks.push_back((now + link.latency_cycles, ch.expected));
                    }
                    std::cmp::Ordering::Equal => {
                        ch.expected += 1;
                        ch.rx_hold.push_back(frame.flit);
                        ch.acks.push_back((now + link.latency_cycles, ch.expected));
                    }
                }
            }
        }
    }

    /// Steps the linked ensemble until quiescence under a stall watchdog
    /// (the ensemble analogue of [`Fabric::run_watched`]). Returns cycles
    /// elapsed.
    ///
    /// # Errors
    /// Returns a merged [`StallReport`] (tile coordinates globalized) on
    /// a zero-progress window or an exceeded deadline.
    pub fn run_linked(
        &mut self,
        max_cycles: u64,
        stall_window: u64,
    ) -> Result<u64, Box<StallReport>> {
        assert!(stall_window > 0, "stall window must be nonzero");
        let start = self.cycle();
        let mut last_progress = self.total_progress();
        let mut window_start = start;
        while !self.is_quiescent() {
            if self.cycle() - start >= max_cycles {
                return Err(self.ensemble_stall(self.cycle() - window_start, true));
            }
            self.step_linked();
            let p = self.total_progress();
            if p != last_progress {
                last_progress = p;
                window_start = self.cycle();
            } else if self.cycle() - window_start >= stall_window {
                return Err(self.ensemble_stall(self.cycle() - window_start, false));
            }
        }
        Ok(self.cycle() - start)
    }

    /// Runs every wafer *independently* to quiescence, one thread per
    /// wafer — the compute phases of the hierarchical driver, where
    /// wafers only talk at halo/AllReduce boundaries. Clocks are then
    /// equalized to the slowest wafer (ensemble time is the max), and the
    /// maximum per-wafer elapsed cycle count is returned.
    ///
    /// # Errors
    /// Returns the first failing wafer's [`StallReport`], globalized.
    pub fn run_each(
        &mut self,
        max_cycles: u64,
        stall_window: u64,
    ) -> Result<u64, Box<StallReport>> {
        let results: Vec<Result<u64, Box<StallReport>>> = self
            .shards
            .par_iter_mut()
            .enumerate()
            .map(|(_, f)| f.run_watched(max_cycles, stall_window))
            .collect();
        let mut max_elapsed = 0;
        for (m, r) in results.into_iter().enumerate() {
            match r {
                Ok(c) => max_elapsed = max_elapsed.max(c),
                Err(mut report) => {
                    for t in &mut report.stalled {
                        t.x += self.offsets[m];
                    }
                    return Err(report);
                }
            }
        }
        let target = self.shards.iter().map(Fabric::cycle).max().unwrap();
        for f in &mut self.shards {
            let lag = target - f.cycle();
            if lag > 0 {
                f.advance_idle(lag);
            }
        }
        Ok(max_elapsed)
    }

    /// The paired seam channels in `wse-lint`'s [`SeamEdge`] form — the
    /// ensemble topology the whole-fabric verification passes follow when
    /// tracing producer flows across wafers.
    ///
    /// [`SeamEdge`]: wse_lint::dataflow::SeamEdge
    pub fn seam_edges(&self) -> Vec<wse_lint::dataflow::SeamEdge> {
        self.channels
            .iter()
            .map(|c| wse_lint::dataflow::SeamEdge {
                src_shard: c.src,
                sx: c.sx,
                sy: c.sy,
                sport: c.sport,
                dst_shard: c.dst,
                dx: c.dx,
                dy: c.dy,
                dport: c.dport,
                color: c.color,
            })
            .collect()
    }

    /// Runs every `wse-lint` rule over the whole ensemble: per-shard rules
    /// on each wafer (diagnostic x coordinates globalized by the wafer's
    /// slab offset) plus the whole-ensemble deadlock, race, and progress
    /// passes with seam channels included. Call after the programs are
    /// built and seams are paired; no cycle is stepped.
    pub fn lint(&self) -> Vec<wse_lint::Diagnostic> {
        let ens = wse_lint::dataflow::Ensemble {
            shards: self.shards.iter().collect(),
            offsets: self.offsets.clone(),
            seams: self.seam_edges(),
        };
        wse_lint::lint_ensemble(&ens)
    }

    /// Merges per-wafer stall diagnoses into one globalized report.
    fn ensemble_stall(&self, window: u64, deadline_exceeded: bool) -> Box<StallReport> {
        let mut merged = StallReport {
            cycle: self.cycle(),
            window,
            deadline_exceeded,
            stalled: Vec::new(),
            total_stalled: 0,
        };
        for (m, f) in self.shards.iter().enumerate() {
            let r = f.stall_report(window, deadline_exceeded);
            merged.total_stalled += r.total_stalled;
            for mut t in r.stalled {
                t.x += self.offsets[m];
                if merged.stalled.len() < StallReport::MAX_TILES {
                    merged.stalled.push(t);
                }
            }
        }
        Box::new(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::dsr::mk;
    use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
    use wse_arch::types::Dtype;
    use wse_float::F16;

    /// A 1×w fabric streaming `n` words from (0,0) to (w-1,0) on color 1.
    fn stream_fabric(w: usize, n: u32) -> (Fabric, u32) {
        let mut f = Fabric::new(w, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        for x in 1..w - 1 {
            f.set_route(x, 0, Port::West, 1, &[Port::East]);
        }
        f.set_route(w - 1, 0, Port::West, 1, &[Port::Ramp]);
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = (1..=n).map(|i| F16::from_f64(i as f64)).collect();
            let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
            let dtx = t.core.add_dsr(mk::tx16(1, n));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        let raddr;
        {
            let t = f.tile_mut(w - 1, 0);
            raddr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, n));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, n));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        (f, raddr)
    }

    #[test]
    fn ideal_split_is_bit_identical_to_fused() {
        let n = 24u32;
        let (mut fused, raddr) = stream_fabric(6, n);
        let (template, _) = stream_fabric(6, n);
        for k in [2usize, 3] {
            let mut multi = MultiFabric::split_x(&template, k, HostLink::ideal());
            let fused_cycles = fused.run_until_quiescent(100_000).unwrap();
            let split_cycles = multi.run_linked(100_000, 2_048).unwrap();
            assert_eq!(fused_cycles, split_cycles, "k={k} diverged from the fused fabric");
            let (m, lx) = multi.to_local(5);
            let got = multi.shard(m).tile(lx, 0).mem.load_f16_slice(raddr, n as usize);
            let want = fused.tile(5, 0).mem.load_f16_slice(raddr, n as usize);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
            // Re-run the fused fabric fresh for the next k.
            let (f2, _) = stream_fabric(6, n);
            fused = f2;
        }
    }

    #[test]
    fn modeled_link_adds_latency_and_serialization() {
        let n = 16u32;
        let (template, raddr) = stream_fabric(4, n);
        let mut ideal = MultiFabric::split_x(&template, 2, HostLink::ideal());
        let ideal_cycles = ideal.run_linked(100_000, 2_048).unwrap();

        let mut slow = MultiFabric::split_x(&template, 2, HostLink::new(1000.0, 0.2, 0.9));
        assert_eq!(slow.link().latency_cycles, 180);
        let slow_cycles = slow.run_linked(100_000, 2_048).unwrap();
        assert!(
            slow_cycles >= ideal_cycles + 180,
            "modeled link must pay its latency: {slow_cycles} vs ideal {ideal_cycles}"
        );
        // Payload integrity across the modeled link.
        let (m, lx) = slow.to_local(3);
        let got = slow.shard(m).tile(lx, 0).mem.load_f16_slice(raddr, n as usize);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.to_f64(), (i + 1) as f64);
        }
    }

    /// Runs `stream_fabric(w, n)` split across `k` wafers and returns
    /// (elapsed cycles, the received payload bits).
    fn run_split(
        multi: &mut MultiFabric,
        w: usize,
        n: u32,
        raddr: u32,
    ) -> Result<(u64, Vec<u16>), Box<StallReport>> {
        let cycles = multi.run_linked(200_000, 2_048)?;
        let (m, lx) = multi.to_local(w - 1);
        let bits = multi
            .shard(m)
            .tile(lx, 0)
            .mem
            .load_f16_slice(raddr, n as usize)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        Ok((cycles, bits))
    }

    #[test]
    fn armed_transport_without_faults_is_cycle_identical() {
        let n = 24u32;
        let (template, raddr) = stream_fabric(6, n);
        for link in [HostLink::ideal(), HostLink::paper_default(), HostLink::new(10.0, 0.05, 0.9)] {
            let mut plain = MultiFabric::split_x(&template, 2, link);
            let (base_cycles, base_bits) = run_split(&mut plain, 6, n, raddr).unwrap();

            let mut armed = MultiFabric::split_x(&template, 2, link);
            armed.arm_transport();
            let (cycles, bits) = run_split(&mut armed, 6, n, raddr).unwrap();
            assert_eq!(base_cycles, cycles, "armed transport changed timing on {link:?}");
            assert_eq!(base_bits, bits, "armed transport changed payload on {link:?}");
            assert_eq!(armed.retransmits(), 0, "healthy link retransmitted on {link:?}");
            let stats = armed.link_stats(0, 0);
            assert_eq!(stats.frames, u64::from(n), "every flit must be framed");
            assert!(armed.link_down_records().is_empty());
        }
    }

    #[test]
    fn host_link_drop_recovers_via_retransmission() {
        let n = 16u32;
        let (template, raddr) = stream_fabric(4, n);
        let mut plain = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        let (base_cycles, base_bits) = run_split(&mut plain, 4, n, raddr).unwrap();

        let mut armed = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        armed.arm_faults(&FaultPlan::new().with(2, FaultKind::HostLinkDrop { seam: 0, dir: 0 }));
        let (cycles, bits) = run_split(&mut armed, 4, n, raddr).unwrap();
        assert_eq!(base_bits, bits, "retransmission must mask the drop bit-exactly");
        assert!(cycles > base_cycles, "the retransmit round-trip costs cycles");
        let stats = armed.link_stats(0, 0);
        assert_eq!(stats.fault_dropped, 1);
        assert!(stats.retransmits >= 1, "the lost frame must be re-sent");
        assert!(stats.gap_discarded >= 1, "frames behind the loss are go-back-N discards");
        assert_eq!(armed.fault_log().unwrap().dropped_flits, 1);
        assert!(armed.link_down_records().is_empty());
    }

    #[test]
    fn host_link_corrupt_is_detected_and_masked() {
        let n = 16u32;
        let (template, raddr) = stream_fabric(4, n);
        let mut plain = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        let (_, base_bits) = run_split(&mut plain, 4, n, raddr).unwrap();

        let mut armed = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        armed.arm_faults(
            &FaultPlan::new().with(2, FaultKind::HostLinkCorrupt { seam: 0, dir: 0, bit: 7 }),
        );
        let (_, bits) = run_split(&mut armed, 4, n, raddr).unwrap();
        assert_eq!(base_bits, bits, "checksum must catch the flip; retransmit must mask it");
        let stats = armed.link_stats(0, 0);
        assert_eq!(stats.fault_corrupted, 1);
        assert_eq!(stats.checksum_discarded, 1, "the damaged frame is discarded, not delivered");
        assert!(stats.retransmits >= 1);
    }

    #[test]
    fn short_host_link_stall_rides_through() {
        let n = 16u32;
        let (template, raddr) = stream_fabric(4, n);
        let mut plain = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        let (base_cycles, base_bits) = run_split(&mut plain, 4, n, raddr).unwrap();

        for kind in [
            FaultKind::HostLinkStall { seam: 0, cycles: 300 },
            FaultKind::WaferStall { wafer: 1, cycles: 300 },
        ] {
            let mut armed = MultiFabric::split_x(&template, 2, HostLink::paper_default());
            armed.arm_faults(&FaultPlan::new().with(5, kind));
            let (cycles, bits) = run_split(&mut armed, 4, n, raddr).unwrap();
            assert_eq!(base_bits, bits, "{kind:?} must not damage payload");
            assert!(cycles >= base_cycles, "{kind:?} cannot speed the stream up");
            assert!(armed.link_down_records().is_empty(), "{kind:?} is transient");
        }
    }

    #[test]
    fn unrelenting_drops_declare_the_link_down() {
        let n = 16u32;
        let (template, _) = stream_fabric(4, n);
        let mut armed = MultiFabric::split_x(&template, 2, HostLink::paper_default());
        // Swallow every frame and every retransmission: the retry budget
        // must exhaust into a structured LinkDown, then the watchdog
        // reports the stall — never a silent partial delivery.
        let mut plan = FaultPlan::new();
        for _ in 0..10_000 {
            plan.push(0, FaultKind::HostLinkDrop { seam: 0, dir: 0 });
        }
        armed.arm_faults(&plan);
        let err = armed.run_linked(200_000, 2_048).unwrap_err();
        assert!(!err.deadline_exceeded, "this is a stall, not a deadline");
        let downs = armed.link_down_records();
        assert_eq!(downs.len(), 1, "exactly one declaration per seam direction");
        assert_eq!((downs[0].seam, downs[0].dir), (0, 0));
        assert_eq!(downs[0].attempts, RETRY_BUDGET);
        assert!(armed.any_link_down());
        // Rollback path: transient reset clears the down flag but keeps
        // the history and the (already-applied) fault arming.
        armed.reset_transient();
        assert!(!armed.any_link_down());
        assert_eq!(armed.link_down_records().len(), 1);
    }

    #[test]
    #[should_panic(expected = "targets one wafer")]
    fn ensemble_rejects_on_wafer_fault_kinds() {
        let (template, _) = stream_fabric(4, 4);
        let mut multi = MultiFabric::split_x(&template, 2, HostLink::ideal());
        multi.arm_faults(
            &FaultPlan::new().with(0, FaultKind::LinkDrop { x: 0, y: 0, port: Port::East }),
        );
    }

    #[test]
    fn to_local_round_trips() {
        let multi = MultiFabric::new(10, 2, 3, HostLink::ideal());
        for gx in 0..10 {
            let (m, lx) = multi.to_local(gx);
            assert_eq!(multi.slab(m).start + lx, gx);
        }
        assert_eq!(multi.slab(0).len() + multi.slab(1).len() + multi.slab(2).len(), 10);
    }
}
