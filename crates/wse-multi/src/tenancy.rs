//! Deterministic placement of tenant regions across an ensemble.
//!
//! The multi-tenant service partitions each wafer into rectangular tenant
//! regions. On a [`MultiFabric`](crate::MultiFabric) the extra constraint
//! is the seam: a tenant program's routes must stay inside one shard (the
//! containment invariant `wse-lint`'s region lint enforces), so a region
//! may never span a wafer boundary. This module is the placement policy:
//! first-fit **shelf packing**, shard by shard, in request order — a
//! deterministic function of the inputs, so the same admission sequence
//! always yields the same layout (the service's replayability depends on
//! this).
//!
//! Shelf packing is the classic rectangle heuristic: within a shard,
//! regions are laid left-to-right on a shelf; when a region does not fit
//! horizontally, a new shelf opens below the tallest region of the current
//! one. It is not optimal (no packing heuristic is), but it is simple,
//! deterministic, and wastes at most one shelf height per shelf — adequate
//! for the handful of tenants a wafer hosts.

use std::fmt;
use wse_arch::Region;

/// Where one requested region landed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Index of the shard (wafer) the region lives on.
    pub shard: usize,
    /// The region, in that shard's local tile coordinates.
    pub region: Region,
}

/// Placement failure: the request that did not fit anywhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementOverflow {
    /// Index of the offending request in the input slice.
    pub index: usize,
    /// The requested extents.
    pub w: usize,
    /// The requested extents.
    pub h: usize,
}

impl fmt::Display for PlacementOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region request #{} ({}x{} tiles) fits on no shard", self.index, self.w, self.h)
    }
}

impl std::error::Error for PlacementOverflow {}

/// One shard's open shelves during packing.
struct ShardPacker {
    w: usize,
    h: usize,
    /// y of the current shelf's top edge.
    shelf_y: usize,
    /// Height of the tallest region on the current shelf.
    shelf_h: usize,
    /// x cursor on the current shelf.
    cursor_x: usize,
}

impl ShardPacker {
    fn new(w: usize, h: usize) -> ShardPacker {
        ShardPacker { w, h, shelf_y: 0, shelf_h: 0, cursor_x: 0 }
    }

    /// Tries to place a `w × h` region; first-fit on the current shelf,
    /// then on a fresh shelf below it.
    fn place(&mut self, w: usize, h: usize) -> Option<Region> {
        if w > self.w || h > self.h {
            return None;
        }
        if self.cursor_x + w <= self.w && self.shelf_y + h <= self.h {
            let r = Region::new(self.cursor_x, self.shelf_y, w, h);
            self.cursor_x += w;
            self.shelf_h = self.shelf_h.max(h);
            return Some(r);
        }
        // Open a new shelf below the current one.
        let next_y = self.shelf_y + self.shelf_h;
        if next_y + h <= self.h {
            let r = Region::new(0, next_y, w, h);
            self.shelf_y = next_y;
            self.shelf_h = h;
            self.cursor_x = w;
            return Some(r);
        }
        None
    }
}

/// Places `requests` (as `(w, h)` tile extents) onto shards of the given
/// `(w, h)` tile dimensions, in order, first-fit across shards in index
/// order. Returns one [`Placement`] per request, or the first request that
/// fits nowhere. Placements on one shard never overlap, never cross the
/// shard edge (and therefore never span a seam), and are a deterministic
/// function of the inputs.
pub fn place_regions(
    shard_dims: &[(usize, usize)],
    requests: &[(usize, usize)],
) -> Result<Vec<Placement>, PlacementOverflow> {
    let mut packers: Vec<ShardPacker> =
        shard_dims.iter().map(|&(w, h)| ShardPacker::new(w, h)).collect();
    let mut out = Vec::with_capacity(requests.len());
    'next: for (index, &(w, h)) in requests.iter().enumerate() {
        for (shard, p) in packers.iter_mut().enumerate() {
            if let Some(region) = p.place(w, h) {
                out.push(Placement { shard, region });
                continue 'next;
            }
        }
        return Err(PlacementOverflow { index, w, h });
    }
    Ok(out)
}

/// [`place_regions`] over the shards of a built ensemble.
pub fn place_on_ensemble(
    multi: &crate::MultiFabric,
    requests: &[(usize, usize)],
) -> Result<Vec<Placement>, PlacementOverflow> {
    let dims: Vec<(usize, usize)> =
        (0..multi.k()).map(|m| (multi.shard(m).width(), multi.shard(m).height())).collect();
    place_regions(&dims, requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_disjoint_regions_on_one_shard() {
        let placed = place_regions(&[(8, 8)], &[(4, 4), (4, 4), (8, 2), (2, 2)]).unwrap();
        assert_eq!(placed.len(), 4);
        assert!(placed.iter().all(|p| p.shard == 0));
        for (i, a) in placed.iter().enumerate() {
            assert!(a.region.x + a.region.w <= 8 && a.region.y + a.region.h <= 8, "{a:?}");
            for b in &placed[i + 1..] {
                assert!(!a.region.overlaps(&b.region), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn spills_to_the_next_shard_rather_than_the_seam() {
        // Two 4x4 shards; two 3x4 tenants. The second cannot fit on shard
        // 0 (only a 1-tile-wide sliver remains, and regions never span the
        // seam), so it must land at shard 1's origin.
        let placed = place_regions(&[(4, 4), (4, 4)], &[(3, 4), (3, 4)]).unwrap();
        assert_eq!(placed[0], Placement { shard: 0, region: Region::new(0, 0, 3, 4) });
        assert_eq!(placed[1], Placement { shard: 1, region: Region::new(0, 0, 3, 4) });
        // A third such tenant fits on neither shard: overflow, not a
        // seam-spanning placement.
        let err = place_regions(&[(4, 4), (4, 4)], &[(3, 4), (3, 4), (3, 4)]).unwrap_err();
        assert_eq!(err.index, 2);
    }

    #[test]
    fn opens_a_new_shelf_below_the_tallest() {
        let placed = place_regions(&[(6, 10)], &[(4, 3), (2, 5), (6, 4)]).unwrap();
        // Shelf 1 holds the 4x3 and 2x5; its height is 5, so the 6x4 opens
        // a shelf at y = 5.
        assert_eq!(placed[2].region, Region::new(0, 5, 6, 4));
    }

    #[test]
    fn overflow_is_an_error_naming_the_request() {
        let err = place_regions(&[(4, 4)], &[(4, 4), (2, 2)]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("#1"));
        // A request bigger than any shard fails immediately.
        let err = place_regions(&[(4, 4), (4, 4)], &[(5, 2)]).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn placement_is_deterministic() {
        let dims = [(7, 9), (5, 5)];
        let reqs = [(3, 3), (4, 2), (2, 6), (5, 5), (2, 2)];
        assert_eq!(place_regions(&dims, &reqs).unwrap(), place_regions(&dims, &reqs).unwrap());
    }
}
