//! Reliable seam transport: framing, acks, retransmission, fault arming.
//!
//! The baseline [`MultiFabric`] stepper trusts the host interconnect: a
//! drained flit always arrives. Production host links do not deserve that
//! trust — PCIe hiccups drop frames, marginal cables flip bits, driver
//! resets make a wafer vanish for milliseconds. This module wraps every
//! seam channel in a go-back-N reliable transport when armed:
//!
//! * each flit is framed with a **sequence number** and a **checksum**
//!   computed before the wire, so drops surface as sequence gaps and
//!   corruption surfaces as checksum mismatches;
//! * the receiver acks cumulatively; the sender retransmits its unacked
//!   window on **ack timeout** with bounded exponential backoff;
//! * when the retry budget exhausts, the link is declared down — a
//!   structured [`LinkDown`] record, never silent data loss.
//!
//! Arming follows the one-pointer-test discipline of trace/sanitizer
//! arming in `wse-arch`: a disarmed ensemble pays a single `Option` test
//! per step and is bit-identical to the baseline path. An **armed but
//! fault-free** ensemble is also cycle-identical: frame headers and acks
//! are control-plane metadata carried out-of-band by the host (only
//! payload bytes charge the data-plane bandwidth model), and the ack
//! timeout is derived from the frame's own delivery time plus link
//! latency plus slack, so a healthy link never times out spuriously.
//!
//! [`MultiFabric`]: crate::MultiFabric

use std::collections::VecDeque;
use wse_arch::fault::{FaultEvent, FaultLog};
use wse_arch::types::Flit;

/// Consecutive ack-timeout retransmissions of the same window before the
/// sender declares the link down.
pub const RETRY_BUDGET: u32 = 8;

/// Grace cycles added on top of the expected round-trip (frame delivery +
/// ack latency) before an ack timeout fires. Doubled per retry, capped at
/// [`MAX_BACKOFF_DOUBLINGS`].
pub const ACK_SLACK: u64 = 64;

/// Cap on exponential-backoff doublings of [`ACK_SLACK`]. Chosen so the
/// worst inter-retry gap (`ACK_SLACK << 4` plus link latency and
/// serialization) stays inside the canonical 2048-cycle stall window:
/// the ensemble watchdog must never preempt a transport that is still
/// actively retrying.
pub const MAX_BACKOFF_DOUBLINGS: u32 = 4;

/// One framed flit: payload plus the control-plane header the reliable
/// transport adds (sequence number and pre-wire checksum).
#[derive(Copy, Clone, Debug)]
pub(crate) struct Frame {
    pub seq: u64,
    pub flit: Flit,
    pub checksum: u32,
}

/// FNV-1a over the sequence number, payload bits, and payload width —
/// computed before the wire so any in-flight bit damage is detected.
pub(crate) fn frame_checksum(seq: u64, flit: Flit) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    for b in seq.to_le_bytes() {
        eat(b);
    }
    for b in flit.bits.to_le_bytes() {
        eat(b);
    }
    eat(flit.bytes() as u8);
    h
}

/// Per-seam, per-direction transport counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Fresh frames handed to the wire (excludes retransmissions).
    pub frames: u64,
    /// Frames re-sent on ack timeout (go-back-N counts every frame in the
    /// retransmitted window).
    pub retransmits: u64,
    /// Frames consumed by an armed [`HostLinkDrop`] fault.
    ///
    /// [`HostLinkDrop`]: wse_arch::fault::FaultKind::HostLinkDrop
    pub fault_dropped: u64,
    /// Frames damaged by an armed [`HostLinkCorrupt`] fault.
    ///
    /// [`HostLinkCorrupt`]: wse_arch::fault::FaultKind::HostLinkCorrupt
    pub fault_corrupted: u64,
    /// Frames the receiver discarded on checksum mismatch.
    pub checksum_discarded: u64,
    /// Duplicate frames (sequence below expected) the receiver discarded.
    pub dup_discarded: u64,
    /// Out-of-order frames (sequence above expected — a gap) discarded.
    pub gap_discarded: u64,
    /// Cumulative acks processed by the sender.
    pub acks: u64,
}

/// A structured link-down declaration: the sender on one seam direction
/// exhausted its retry budget without ack progress.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LinkDown {
    /// Ensemble cycle of the declaration.
    pub cycle: u64,
    /// Seam index (between wafer `seam` and `seam + 1`).
    pub seam: usize,
    /// Direction: 0 = eastward, 1 = westward.
    pub dir: usize,
    /// Retransmission attempts made before giving up.
    pub attempts: u32,
}

impl LinkDown {
    /// One-line description for recovery logs.
    pub fn describe(&self) -> String {
        format!(
            "link down: seam {} {} declared dead at cycle {} after {} retransmit attempts",
            self.seam,
            if self.dir == 0 { "eastward" } else { "westward" },
            self.cycle,
            self.attempts
        )
    }
}

/// Per-channel reliable-transport state (parallel to
/// `MultiFabric::channels`).
#[derive(Clone, Debug)]
pub(crate) struct ChannelState {
    /// Next fresh sequence number the sender assigns.
    pub next_seq: u64,
    /// Sent-but-unacked frames, in sequence order (the go-back-N window).
    pub unacked: VecDeque<Frame>,
    /// Ensemble cycle at which an ack timeout fires (`u64::MAX` when the
    /// window is empty).
    pub deadline: u64,
    /// Consecutive timeout retransmissions without ack progress.
    pub attempts: u32,
    /// Receiver: next expected sequence number.
    pub expected: u64,
    /// Frames in flight on the wire: `(arrival cycle, frame)` FIFO.
    pub wire: VecDeque<(u64, Frame)>,
    /// Cumulative acks in flight back to the sender: `(arrival cycle,
    /// next-expected-seq)` FIFO.
    pub acks: VecDeque<(u64, u64)>,
    /// Validated in-order payloads awaiting ingress-queue space.
    pub rx_hold: VecDeque<Flit>,
}

impl ChannelState {
    pub fn new() -> ChannelState {
        ChannelState {
            next_seq: 0,
            unacked: VecDeque::new(),
            deadline: u64::MAX,
            attempts: 0,
            expected: 0,
            wire: VecDeque::new(),
            acks: VecDeque::new(),
            rx_hold: VecDeque::new(),
        }
    }

    /// Drops transient traffic and restarts both ends at sequence zero
    /// (ensemble rollback: sender and receiver replay from the same
    /// checkpoint, so their sequence spaces must agree).
    pub fn reset(&mut self) {
        self.next_seq = 0;
        self.unacked.clear();
        self.deadline = u64::MAX;
        self.attempts = 0;
        self.expected = 0;
        self.wire.clear();
        self.acks.clear();
        self.rx_hold.clear();
    }
}

/// Whole-ensemble transport state, armed via `MultiFabric::arm_faults` /
/// `MultiFabric::arm_transport`.
#[derive(Clone, Debug)]
pub(crate) struct TransportState {
    /// Per-channel go-back-N state.
    pub channels: Vec<ChannelState>,
    /// Per-seam `[eastward, westward]` counters.
    pub stats: Vec<[LinkStats; 2]>,
    /// Per-seam `[eastward, westward]` dark-until cycle (stall faults).
    pub stall_until: Vec<[u64; 2]>,
    /// Per-seam `[eastward, westward]` link-down flags.
    pub down: Vec<[bool; 2]>,
    /// Every link-down declaration made so far (survives
    /// `reset_transient`, so recovery logs can report them).
    pub down_history: Vec<LinkDown>,
    /// Armed one-shot drops pending per seam-direction.
    pub pending_drop: Vec<[u64; 2]>,
    /// Armed one-shot corruptions (payload bit) pending per
    /// seam-direction, consumed FIFO.
    pub pending_corrupt: Vec<[VecDeque<u8>; 2]>,
    /// Monotone count of recovery actions taken (frames retransmitted).
    /// Feeds the ensemble progress measure so the stall watchdog holds
    /// off while the transport is still actively retrying — and fires
    /// once it has given up.
    pub activity: u64,
    /// The scheduled fault events, sorted by cycle.
    pub events: Vec<FaultEvent>,
    /// Index of the next unapplied event.
    pub next_event: usize,
    /// Audit trail (same shape as the on-wafer fault log).
    pub log: FaultLog,
}

impl TransportState {
    pub fn new(n_channels: usize, n_seams: usize, events: Vec<FaultEvent>) -> TransportState {
        TransportState {
            channels: (0..n_channels).map(|_| ChannelState::new()).collect(),
            stats: vec![[LinkStats::default(); 2]; n_seams],
            stall_until: vec![[0; 2]; n_seams],
            down: vec![[false; 2]; n_seams],
            down_history: Vec::new(),
            pending_drop: vec![[0; 2]; n_seams],
            pending_corrupt: vec![[VecDeque::new(), VecDeque::new()]; n_seams],
            activity: 0,
            events,
            next_event: 0,
            log: FaultLog::default(),
        }
    }

    /// The backoff-scaled ack slack for the current attempt count.
    pub fn slack(attempts: u32) -> u64 {
        ACK_SLACK << attempts.min(MAX_BACKOFF_DOUBLINGS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let flit = Flit::f16(0x3c00);
        let good = frame_checksum(7, flit);
        for bit in 0..16 {
            let mut damaged = flit;
            damaged.bits ^= 1 << bit;
            assert_ne!(good, frame_checksum(7, damaged), "bit {bit} slipped through");
        }
        assert_ne!(good, frame_checksum(8, flit), "sequence change slipped through");
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(TransportState::slack(0), ACK_SLACK);
        assert_eq!(TransportState::slack(3), ACK_SLACK * 8);
        assert_eq!(TransportState::slack(60), ACK_SLACK << MAX_BACKOFF_DOUBLINGS);
    }
}
