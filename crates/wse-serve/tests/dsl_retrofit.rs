//! DSL-retrofit bit-exactness regression.
//!
//! `wse-core`'s `WaferSpmv` (3D 7-point) and `WaferSpmv2d` (2D 9-point)
//! builders now route through `wse-dsl`'s lowering layer. This test pins the
//! refactor: it carries **frozen copies of the pre-refactor hand-written
//! builders** (verbatim snapshots of the code they replaced) and asserts the
//! lowered programs are **byte-identical** — equal [`program_digest`]s,
//! which hash every tile's SRAM contents, textual program dump, register
//! file, and routing table.
//!
//! If a change to the lowering layer alters allocation order, DSR order,
//! task order, route insertion order, task names, or any emitted byte, this
//! test fails — exactly the regression the retrofit promised not to cause.

use stencil::decomp::{Block2D, Mapping3D};
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::{Mesh2D, Mesh3D};
use stencil::precond::jacobi_scale;
use stencil::stencil7::convection_diffusion;
use stencil::stencil9::laplace9;
use wse_arch::dsr::{mk, Descriptor};
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::{Dtype, Port, TaskId};
use wse_arch::{Fabric, Tile};
use wse_core::routing::configure_spmv_routes;
use wse_core::spmv2d::WaferSpmv2d;
use wse_core::spmv3d::{
    build_spmv_tile, load_coefficients, tile_coefficients, SpmvLayout, WaferSpmv,
};
use wse_float::F16;
use wse_serve::program::program_digest;

// ---------------------------------------------------------------------------
// Frozen pre-refactor 3D builder (hand-written `WaferSpmv::build`, verbatim
// loop structure; the per-tile emitters were moved, not rewritten, so they
// are shared).
// ---------------------------------------------------------------------------

fn legacy_build_3d(fabric: &mut Fabric, a: &DiaMatrix<F16>) {
    let mesh = a.mesh();
    let mapping = Mapping3D::new(mesh, fabric.width(), fabric.height());
    configure_spmv_routes(fabric, mapping.fabric_w, mapping.fabric_h);
    for y in 0..mapping.fabric_h {
        for x in 0..mapping.fabric_w {
            let tile = fabric.tile_mut(x, y);
            let layout = SpmvLayout::alloc(tile, mapping.z as u32);
            let coeffs = tile_coefficients(a, x, y);
            load_coefficients(tile, &layout, &coeffs);
            let _ = build_spmv_tile(tile, x, y, mapping.fabric_w, mapping.fabric_h, layout, None);
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen pre-refactor 2D builder: a verbatim snapshot of the hand-written
// `WaferSpmv2d` internals (layout, routes, coefficient load, task emission)
// as they stood before the DSL retrofit.
// ---------------------------------------------------------------------------

mod frozen2d {
    use super::*;

    pub const HALO_E: u8 = 16;
    pub const HALO_W: u8 = 17;
    pub const HALO_S: u8 = 18;
    pub const HALO_N: u8 = 19;

    const R_ZERO: usize = 30;

    #[derive(Copy, Clone, Debug)]
    pub struct Spmv2dLayout {
        pub block: Block2D,
        pub coef: [u32; 9],
        pub v: u32,
        pub ubuf: u32,
    }

    impl Spmv2dLayout {
        pub fn alloc(tile: &mut Tile, block: Block2D) -> Spmv2dLayout {
            let n = (block.bx * block.by) as u32;
            let mut coef = [0u32; 9];
            for c in &mut coef {
                *c = tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: 2D coefficients");
            }
            let v = tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: 2D iterate");
            let ubuf = tile
                .mem
                .alloc_vec(((block.bx + 2) * (block.by + 2)) as u32, Dtype::F16)
                .expect("SRAM: 2D output buffer");
            Spmv2dLayout { block, coef, v, ubuf }
        }

        pub fn u_addr(&self, i: usize, j: usize) -> u32 {
            self.ubuf + 2 * (i * (self.block.by + 2) + j) as u32
        }

        pub fn v_addr(&self, i: usize, j: usize) -> u32 {
            self.v + 2 * (i * self.block.by + j) as u32
        }
    }

    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>, block: Block2D) {
        let mesh3 = a.mesh();
        assert_eq!(mesh3.nz, 1, "2D kernel requires nz == 1");
        assert_eq!(a.offsets().len(), 9, "9-point stencil required");
        let (w, h) = (mesh3.nx / block.bx, mesh3.ny / block.by);
        assert_eq!(w * block.bx, mesh3.nx, "mesh x must tile evenly");
        assert_eq!(h * block.by, mesh3.ny, "mesh y must tile evenly");
        assert!(w <= fabric.width() && h <= fabric.height(), "mesh exceeds fabric");

        configure_routes(fabric, w, h);

        for ty in 0..h {
            for tx in 0..w {
                let tile = fabric.tile_mut(tx, ty);
                let layout = Spmv2dLayout::alloc(tile, block);
                load_tile_coefficients(tile, &layout, a, tx, ty);
                let task = build_tile_task(tile, &layout, tx, ty, w, h);
                tile.core.mark_entry(task);
            }
        }
    }

    fn configure_routes(fabric: &mut Fabric, w: usize, h: usize) {
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    fabric.set_route(x, y, Port::Ramp, HALO_E, &[Port::East]);
                    fabric.set_route(x, y, Port::East, HALO_W, &[Port::Ramp]);
                }
                if x > 0 {
                    fabric.set_route(x, y, Port::Ramp, HALO_W, &[Port::West]);
                    fabric.set_route(x, y, Port::West, HALO_E, &[Port::Ramp]);
                }
                if y + 1 < h {
                    fabric.set_route(x, y, Port::Ramp, HALO_S, &[Port::South]);
                    fabric.set_route(x, y, Port::South, HALO_N, &[Port::Ramp]);
                }
                if y > 0 {
                    fabric.set_route(x, y, Port::Ramp, HALO_N, &[Port::North]);
                    fabric.set_route(x, y, Port::North, HALO_S, &[Port::Ramp]);
                }
            }
        }
    }

    fn load_tile_coefficients(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        a: &DiaMatrix<F16>,
        tx: usize,
        ty: usize,
    ) {
        let mesh = a.mesh();
        let b = layout.block;
        for (o, off) in Offset3::nine_point_2d().iter().enumerate() {
            let mut data = vec![F16::ZERO; b.bx * b.by];
            for i in 0..b.bx {
                for j in 0..b.by {
                    let gi = tx * b.bx + i;
                    let gj = ty * b.by + j;
                    let ri = gi as i64 + off.dx as i64;
                    let rj = gj as i64 + off.dy as i64;
                    if ri < 0 || rj < 0 || ri >= mesh.nx as i64 || rj >= mesh.ny as i64 {
                        continue;
                    }
                    let mirror = Offset3::new(-off.dx, -off.dy, 0);
                    data[i * b.by + j] = a.coeff(ri as usize, rj as usize, 0, mirror);
                }
            }
            tile.mem.store_f16_slice(layout.coef[o], &data);
        }
    }

    fn build_tile_task(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        tx: usize,
        ty: usize,
        w: usize,
        h: usize,
    ) -> TaskId {
        let b = layout.block;
        let (bx, by) = (b.bx, b.by);
        let core = &mut tile.core;
        let ub_w = (by + 2) as u32;

        let mut body: Vec<Stmt> = vec![Stmt::SetReg { reg: R_ZERO, value: 0.0 }];

        let n_ub = ((bx + 2) * (by + 2)) as u32;
        let d_ub_all = core.add_dsr(mk::tensor16(layout.ubuf, n_ub));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::StoreReg { reg: R_ZERO },
            dst: Some(d_ub_all),
            a: None,
            b: None,
        }));

        for (o, off) in Offset3::nine_point_2d().iter().enumerate() {
            for i in 0..bx {
                let d_dst = core.add_dsr(mk::tensor16(
                    layout.u_addr((i as i64 + 1 + off.dx as i64) as usize, (1 + off.dy) as usize),
                    by as u32,
                ));
                let d_coef =
                    core.add_dsr(mk::tensor16(layout.coef[o] + 2 * (i * by) as u32, by as u32));
                let d_v = core.add_dsr(mk::tensor16(layout.v_addr(i, 0), by as u32));
                body.push(Stmt::Exec(TensorInstr {
                    op: Op::FmaAssign,
                    dst: Some(d_dst),
                    a: Some(d_coef),
                    b: Some(d_v),
                }));
            }
        }

        let strip_h = (by + 2) as u32;
        let has_e = tx + 1 < w;
        let has_w = tx > 0;
        let has_s = ty + 1 < h;
        let has_n = ty > 0;

        let round2 = core.add_task(Task::new("halo-y", vec![]));
        let mut r1_threads = 0usize;
        r1_threads += usize::from(has_e) * 2;
        r1_threads += usize::from(has_w) * 2;
        let mut chain: Vec<TaskId> = Vec::new();
        if r1_threads >= 2 {
            let n = r1_threads - 1;
            for _ in 0..n {
                chain.push(core.add_task(Task::new("halo-x-barrier", vec![]).blocked()));
            }
            for i in 0..n {
                let next = if i + 1 < n {
                    Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate }
                } else {
                    Stmt::TaskCtl { task: round2, action: TaskAction::Activate }
                };
                core.set_task_body(
                    chain[i],
                    vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }, next],
                );
            }
        }
        let trigger = |k: usize, chain: &Vec<TaskId>| -> Option<(TaskId, TaskAction)> {
            if chain.is_empty() {
                return None;
            }
            Some(match k {
                0 => (chain[0], TaskAction::Activate),
                1 => (chain[0], TaskAction::Unblock),
                k => (chain[k - 1], TaskAction::Unblock),
            })
        };

        let mut k = 0usize;
        let mut slot = 0u8;
        if has_e {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(bx + 1, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_E, strip_h));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_E, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_W, strip_h));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(bx, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_W, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
        }
        if has_w {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(0, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_W, strip_h));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_W, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_E, strip_h));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_E, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: trigger(k, &chain),
            });
            k += 1;
        }
        let _ = (slot, k);
        if chain.is_empty() {
            body.push(Stmt::TaskCtl { task: round2, action: TaskAction::Activate });
        }

        let mut r2_body: Vec<Stmt> = Vec::new();
        let strip_w = bx as u32;
        let stride = ub_w;
        let mut slot2 = 4u8;
        if has_s {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, by + 1),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_S, strip_w));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_S, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_N, strip_w));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, by),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_N, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
            slot2 += 1;
        }
        if has_n {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 0),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_N, strip_w));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_N, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_S, strip_w));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 1),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_S, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
        }
        core.set_task_body(round2, r2_body);

        core.add_task(Task::new("spmv2d", body))
    }
}

// ---------------------------------------------------------------------------
// Test systems.
// ---------------------------------------------------------------------------

fn system_3d(mesh: Mesh3D) -> DiaMatrix<F16> {
    let a = convection_diffusion(mesh, (1.0, -0.5, 0.25), 1.0);
    let sys = jacobi_scale(&a, &vec![0.0; mesh.len()]);
    sys.matrix.convert()
}

fn system_2d(nx: usize, ny: usize) -> DiaMatrix<F16> {
    laplace9(Mesh2D::new(nx, ny)).convert()
}

// ---------------------------------------------------------------------------
// The regressions.
// ---------------------------------------------------------------------------

#[test]
fn lowered_spmv3d_program_is_byte_identical_to_legacy_builder() {
    let mesh = Mesh3D::new(3, 3, 12);
    let a = system_3d(mesh);

    let mut legacy = Fabric::new(3, 3);
    legacy_build_3d(&mut legacy, &a);

    let mut lowered = Fabric::new(3, 3);
    let _ = WaferSpmv::build(&mut lowered, &a);

    assert_eq!(
        program_digest(&legacy),
        program_digest(&lowered),
        "3D retrofit changed the emitted program"
    );
}

#[test]
fn lowered_spmv3d_single_column_is_byte_identical_to_legacy_builder() {
    let mesh = Mesh3D::new(1, 1, 16);
    let a = system_3d(mesh);

    let mut legacy = Fabric::new(1, 1);
    legacy_build_3d(&mut legacy, &a);

    let mut lowered = Fabric::new(1, 1);
    let _ = WaferSpmv::build(&mut lowered, &a);

    assert_eq!(program_digest(&legacy), program_digest(&lowered));
}

#[test]
fn lowered_spmv2d_program_is_byte_identical_to_legacy_builder() {
    let a = system_2d(12, 8);
    let block = Block2D::new(4, 4);

    let mut legacy = Fabric::new(3, 2);
    frozen2d::build(&mut legacy, &a, block);

    let mut lowered = Fabric::new(3, 2);
    let _ = WaferSpmv2d::build(&mut lowered, &a, block);

    assert_eq!(
        program_digest(&legacy),
        program_digest(&lowered),
        "2D retrofit changed the emitted program"
    );
}

#[test]
fn lowered_spmv2d_single_tile_is_byte_identical_to_legacy_builder() {
    let a = system_2d(6, 6);
    let block = Block2D::new(6, 6);

    let mut legacy = Fabric::new(1, 1);
    frozen2d::build(&mut legacy, &a, block);

    let mut lowered = Fabric::new(1, 1);
    let _ = WaferSpmv2d::build(&mut lowered, &a, block);

    assert_eq!(program_digest(&legacy), program_digest(&lowered));
}

#[test]
fn lowered_spmv2d_tall_and_wide_edge_tiles_are_byte_identical() {
    // Asymmetric fabric shapes exercise every has_e/has_w/has_s/has_n
    // combination in the halo-exchange task emission.
    for (nx, ny, bx, by, fw, fh) in [(12, 3, 3, 3, 4, 1), (3, 12, 3, 3, 1, 4)] {
        let a = system_2d(nx, ny);
        let block = Block2D::new(bx, by);

        let mut legacy = Fabric::new(fw, fh);
        frozen2d::build(&mut legacy, &a, block);

        let mut lowered = Fabric::new(fw, fh);
        let _ = WaferSpmv2d::build(&mut lowered, &a, block);

        assert_eq!(
            program_digest(&legacy),
            program_digest(&lowered),
            "digest mismatch for {nx}x{ny} mesh on {fw}x{fh} fabric"
        );
    }
}

// ---------------------------------------------------------------------------
// Cache soundness for DSL-keyed tenants: same DSL source => same key =>
// same compiled digest, so `box9-2d` jobs from different tenants share one
// cache entry exactly like the built-in operators do.
// ---------------------------------------------------------------------------

#[test]
fn dsl_operator_is_a_cacheable_tenant() {
    use wse_serve::program::CompiledProgram;
    use wse_serve::{ProgramKey, StencilKind};

    let key = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::dsl("box9-2d"));
    assert_eq!(key, ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::dsl("box9-2d")));

    // Same DSL source, two independent compiles: the lint gate passes and
    // the images are byte-identical.
    let a = CompiledProgram::compile(&key).expect("DSL operator must pass the admission gate");
    let b = CompiledProgram::compile(&key).expect("DSL operator must pass the admission gate");
    assert_eq!(a.digest, b.digest, "same DSL source must compile to the same digest");

    // `box9-2d` (center 1, eight neighbors -1/8) IS the Jacobi-scaled
    // 9-point Laplacian, so the DSL source must reproduce the hand-built
    // `Laplace9` program byte for byte — distinct keys, identical images.
    let laplace = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9);
    assert_ne!(key, laplace);
    let c = CompiledProgram::compile(&laplace).unwrap();
    assert_eq!(a.digest, c.digest, "box9-2d must lower to the scaled-Laplacian program");

    // A genuinely different operator compiles to a different program.
    let conv = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5));
    let d = CompiledProgram::compile(&conv).unwrap();
    assert_ne!(a.digest, d.digest, "distinct operators must not share an image");
}
