//! Deterministic workload generation and the service cost model.
//!
//! The front door is driven open-loop: jobs arrive on a seeded Poisson
//! process regardless of how fast the service drains them, which is how
//! real multi-tenant load looks and what makes p99 sojourn time a
//! meaningful number. Everything here is a pure function of the seed —
//! two runs with the same seed produce the same arrival times to the bit.

use wse_arch::SplitMix64;

/// Simulated-time cost model for the service scheduler.
///
/// Solve time comes from the cycle-stepped simulation (cycles ÷ 0.9 GHz).
/// The host-side costs — compiling a program and DMA-loading a region
/// image over the host link — are modeled with fixed, documented constants
/// so the latency report is deterministic; host *wall-clock* is measured
/// separately and only feeds the cold-vs-warm speedup figure.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Fabric clock in GHz (paper: 0.9).
    pub clock_ghz: f64,
    /// Charged once per cold compile (builder + lint on the host), in µs.
    /// Stands in for the minutes-scale place-and-route of the real
    /// toolchain, scaled to keep the simulation balanced.
    pub compile_us: f64,
    /// Host-link bandwidth used to charge region-image loads, in bytes/µs
    /// (16 GB/s ≈ 16 000 B/µs, the ideal host link).
    pub load_bytes_per_us: f64,
    /// Fixed per-load latency floor, in µs.
    pub load_floor_us: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            clock_ghz: 0.9,
            compile_us: 10_000.0,
            load_bytes_per_us: 16_000.0,
            load_floor_us: 10.0,
        }
    }
}

impl CostModel {
    /// Converts fabric cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Cost of blitting a region image of `bytes` program state onto the
    /// fabric through the host link.
    pub fn load_us(&self, bytes: u64) -> f64 {
        self.load_floor_us + bytes as f64 / self.load_bytes_per_us
    }
}

/// Arrival times (µs) of `n` jobs from a seeded open-loop Poisson process
/// with mean rate `per_us` (jobs per microsecond). Inter-arrival gaps are
/// exponential via inverse-transform sampling on a [`SplitMix64`] stream;
/// the same `(seed, n, per_us)` always yields the same times.
///
/// # Panics
/// Panics if `per_us` is not strictly positive.
pub fn open_loop_arrivals(seed: u64, n: usize, per_us: f64) -> Vec<f64> {
    assert!(per_us > 0.0, "arrival rate must be positive");
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // u uniform in (0, 1]: take 53 high bits, bias away from zero so
        // ln(u) is finite.
        let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        t += -u.ln() / per_us;
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_increasing() {
        let a = open_loop_arrivals(42, 100, 0.01);
        let b = open_loop_arrivals(42, 100, 0.01);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let c = open_loop_arrivals(43, 100, 0.01);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        // 4000 exponential gaps at rate 0.01/µs: mean 100 µs, sample mean
        // within a loose 10% band.
        let a = open_loop_arrivals(7, 4000, 0.01);
        let mean = a.last().unwrap() / a.len() as f64;
        assert!((mean - 100.0).abs() < 10.0, "mean gap {mean}");
    }

    #[test]
    fn cost_model_arithmetic() {
        let m = CostModel::default();
        assert!((m.cycles_to_us(900) - 1.0).abs() < 1e-12);
        assert!((m.load_us(16_000) - 11.0).abs() < 1e-12);
    }
}
