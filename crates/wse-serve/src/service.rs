//! The multi-tenant wafer service: admission, placement, batching,
//! execution under recovery, and per-tenant billing.
//!
//! One [`WaferService`] owns the machine (a single [`Fabric`] or a
//! [`MultiFabric`] ensemble) and a set of tenants, each pinned to a
//! rectangular region placed by `wse-multi`'s shelf packer. Jobs flow
//! through a fixed pipeline:
//!
//! ```text
//! submit → admission (quota, region fit, SRAM estimate, lint gate)
//!        → program cache (cold compile on scratch / hit)
//!        → placement (blit image into region + rebase solver; skipped
//!          when the program is already resident)
//!        → solve under checkpoint/rollback recovery, labeled tenant/job
//!        → billing (per-job cycle window carved from the shard trace)
//! ```
//!
//! Time accounting is split in two, deliberately. *Simulated* time — the
//! numbers in every report — is deterministic: fabric cycles at 0.9 GHz
//! plus the [`CostModel`]'s fixed compile/load charges, scheduled against
//! seeded open-loop arrivals. *Host wall-clock* is measured only around
//! cache lookups to report the cold-vs-warm compile speedup, and is kept
//! out of the deterministic report text.

use crate::cache::{CacheStats, ProgramCache};
use crate::key::ProgramKey;
use crate::program::AdmitError;
use crate::sim::CostModel;
use std::fmt::Write as _;
use std::time::Instant;
use wse_arch::{Fabric, Region, TraceConfig, TILE_SRAM_BYTES};
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_core::recovery::RecoveryPolicy;
use wse_float::F16;
use wse_multi::tenancy::{place_regions, PlacementOverflow};
use wse_multi::MultiFabric;
use wse_trace::PhaseReport;

/// The machine a service fronts: one wafer or a seam-linked ensemble.
// One Backend exists per service (never stored in bulk), so the size
// spread between a whole Fabric and a MultiFabric handle is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum Backend {
    /// A single fabric.
    Single(Fabric),
    /// A multi-wafer ensemble; tenant regions never span a seam.
    Ensemble(MultiFabric),
}

impl Backend {
    /// Tile dimensions of each shard, in shard index order.
    pub fn shard_dims(&self) -> Vec<(usize, usize)> {
        match self {
            Backend::Single(f) => vec![(f.width(), f.height())],
            Backend::Ensemble(m) => {
                (0..m.k()).map(|i| (m.shard(i).width(), m.shard(i).height())).collect()
            }
        }
    }

    fn shard_mut(&mut self, m: usize) -> &mut Fabric {
        match self {
            Backend::Single(f) => {
                assert_eq!(m, 0, "single-fabric backend has one shard");
                f
            }
            Backend::Ensemble(multi) => multi.shard_mut(m),
        }
    }
}

/// A tenant's static contract with the service.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (used in recovery labels and billing rows).
    pub name: String,
    /// Requested region extents in tiles.
    pub tiles: (usize, usize),
    /// Jobs this tenant may have admitted per service run.
    pub quota: usize,
}

impl TenantSpec {
    /// A tenant named `name` holding `tiles` with the given job quota.
    pub fn new(name: impl Into<String>, tiles: (usize, usize), quota: usize) -> TenantSpec {
        TenantSpec { name: name.into(), tiles, quota }
    }
}

/// One solve request.
#[derive(Copy, Clone, Debug)]
pub struct JobSpec {
    /// Index of the submitting tenant.
    pub tenant: usize,
    /// The program shape to run.
    pub key: ProgramKey,
    /// Seed for the manufactured right-hand side.
    pub rhs_seed: u64,
    /// Iteration budget.
    pub max_iters: usize,
}

/// How a job's program reached the fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// Compiled from scratch (builder + lint), then blitted.
    Cold,
    /// Served from the program cache, blitted (no builder, no lint).
    Hit,
    /// Already resident in the tenant's region — no blit at all.
    Resident,
}

/// The service's account of one submitted job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Submission index.
    pub job: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// The program shape.
    pub key: ProgramKey,
    /// `None` when the job was refused admission.
    pub tier: Option<CacheTier>,
    /// The admission error for refused jobs.
    pub reject: Option<AdmitError>,
    /// Shard the tenant lives on.
    pub shard: usize,
    /// Arrival time, µs (from the open-loop process).
    pub arrival_us: f64,
    /// When service began (≥ arrival; the shard is a serial server).
    pub start_us: f64,
    /// When service finished.
    pub completion_us: f64,
    /// Fabric cycle window `[start, end)` of the solve, for billing.
    pub window: (u64, u64),
    /// Committed solver iterations.
    pub iterations: usize,
    /// Rollbacks taken by the recovery engine.
    pub rollbacks: usize,
    /// Final recursive relative residual.
    pub final_rel: f64,
    /// Whether the solve verified convergence.
    pub converged: bool,
}

impl JobRecord {
    /// Sojourn time (queueing + service), µs. Zero for rejected jobs.
    pub fn sojourn_us(&self) -> f64 {
        self.completion_us - self.arrival_us
    }
}

/// Per-tenant billing: attributed cycles and recovery activity.
#[derive(Clone, Debug)]
pub struct BillingRow {
    /// Tenant name.
    pub tenant: String,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs refused admission.
    pub rejected: usize,
    /// Total fabric cycles attributed to this tenant's job windows.
    pub cycles: u64,
    /// Cycles by phase name, first-seen order, from the shard trace
    /// windows of this tenant's jobs.
    pub phase_cycles: Vec<(&'static str, u64)>,
    /// Instant-marker counts (e.g. `checkpoint`, `rollback`) in the same
    /// windows — see `PhaseReport::marker_counts`.
    pub markers: Vec<(&'static str, u64)>,
    /// Rollbacks across this tenant's jobs.
    pub rollbacks: usize,
    /// Cold compiles this tenant triggered.
    pub cold_builds: usize,
}

/// Everything a service run produced. [`ServiceReport::render`] is
/// deterministic; the host-wall-clock fields are not and stay out of it.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs refused admission.
    pub rejected: usize,
    /// Completed jobs per tier: `(cold, hit, resident)`.
    pub tiers: (usize, usize, usize),
    /// Program-cache counters.
    pub cache: CacheStats,
    /// Median sojourn over completed jobs, µs.
    pub p50_us: f64,
    /// 99th-percentile sojourn over completed jobs, µs.
    pub p99_us: f64,
    /// Mean sojourn over completed jobs, µs.
    pub mean_us: f64,
    /// Last completion time, µs.
    pub makespan_us: f64,
    /// Completed solves per simulated second.
    pub solves_per_sec: f64,
    /// Per-tenant billing rows, tenant order.
    pub billing: Vec<BillingRow>,
    /// Per-job records, submission order.
    pub records: Vec<JobRecord>,
    /// Host wall-clock µs of each cold cache fill (builder + lint).
    pub cold_host_us: Vec<f64>,
    /// Host wall-clock µs of each warm cache lookup.
    pub warm_host_us: Vec<f64>,
}

impl ServiceReport {
    /// Mean host wall-clock speedup of a warm lookup over a cold compile,
    /// `None` until both have happened. Nondeterministic (wall clock).
    pub fn warm_speedup(&self) -> Option<f64> {
        if self.cold_host_us.is_empty() || self.warm_host_us.is_empty() {
            return None;
        }
        let cold = self.cold_host_us.iter().sum::<f64>() / self.cold_host_us.len() as f64;
        let warm = self.warm_host_us.iter().sum::<f64>() / self.warm_host_us.len() as f64;
        Some(cold / warm.max(1e-9))
    }

    /// Deterministic fixed-precision report: identical inputs render
    /// identical text (the smoke test diffs two runs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "wse-serve report");
        let _ = writeln!(
            out,
            "jobs: submitted={} completed={} rejected={}",
            self.submitted, self.completed, self.rejected
        );
        let _ = writeln!(
            out,
            "tiers: cold={} hit={} resident={}",
            self.tiers.0, self.tiers.1, self.tiers.2
        );
        let _ = writeln!(
            out,
            "cache: cold={} hits={} rejected={} hit-rate={:.3}",
            self.cache.cold,
            self.cache.hits,
            self.cache.rejected,
            self.cache.hit_rate()
        );
        let _ = writeln!(
            out,
            "latency-us: p50={:.3} p99={:.3} mean={:.3} makespan={:.3}",
            self.p50_us, self.p99_us, self.mean_us, self.makespan_us
        );
        let _ = writeln!(out, "throughput: {:.3} solves/sec", self.solves_per_sec);
        for row in &self.billing {
            let _ = writeln!(
                out,
                "tenant {}: completed={} rejected={} cycles={} rollbacks={} cold-builds={}",
                row.tenant, row.completed, row.rejected, row.cycles, row.rollbacks, row.cold_builds
            );
            for (name, cycles) in &row.phase_cycles {
                let _ = writeln!(out, "  phase {name}: {cycles}");
            }
            for (name, count) in &row.markers {
                let _ = writeln!(out, "  marker {name}: {count}");
            }
        }
        out
    }
}

/// Per-tenant runtime state.
struct Tenant {
    spec: TenantSpec,
    shard: usize,
    region: Region,
    /// Key of the program currently blitted into the region, if any.
    resident: Option<ProgramKey>,
    /// Solver handle rebased to the region origin, paired with
    /// `resident`.
    solver: Option<WaferBicgstab2d>,
    admitted: usize,
    rejected: usize,
}

/// The service front door. See the module docs for the pipeline.
pub struct WaferService {
    backend: Backend,
    tenants: Vec<Tenant>,
    cache: ProgramCache,
    cost: CostModel,
    /// Max same-`(tenant, key)` jobs coalesced into one placement.
    batch_max: usize,
    /// Per-shard serial-server horizon, µs.
    server_free: Vec<f64>,
    records: Vec<JobRecord>,
    cold_host_us: Vec<f64>,
    warm_host_us: Vec<f64>,
}

impl WaferService {
    /// Builds a service over `backend`, placing every tenant's region via
    /// first-fit shelf packing (deterministic) and arming a trace on each
    /// shard for billing attribution.
    pub fn new(
        mut backend: Backend,
        specs: Vec<TenantSpec>,
    ) -> Result<WaferService, PlacementOverflow> {
        let dims = backend.shard_dims();
        let requests: Vec<(usize, usize)> = specs.iter().map(|t| t.tiles).collect();
        let placements = place_regions(&dims, &requests)?;
        let shards = dims.len();
        for m in 0..shards {
            backend.shard_mut(m).arm_trace(TraceConfig::default());
        }
        let tenants = specs
            .into_iter()
            .zip(placements)
            .map(|(spec, p)| Tenant {
                spec,
                shard: p.shard,
                region: p.region,
                resident: None,
                solver: None,
                admitted: 0,
                rejected: 0,
            })
            .collect();
        Ok(WaferService {
            backend,
            tenants,
            cache: ProgramCache::new(),
            cost: CostModel::default(),
            batch_max: 4,
            server_free: vec![0.0; shards],
            records: Vec::new(),
            cold_host_us: Vec::new(),
            warm_host_us: Vec::new(),
        })
    }

    /// Overrides the cost model (defaults to [`CostModel::default`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> WaferService {
        self.cost = cost;
        self
    }

    /// Overrides the batching limit (default 4; `1` disables batching).
    pub fn with_batch_max(mut self, batch_max: usize) -> WaferService {
        assert!(batch_max > 0, "batch_max must be positive");
        self.batch_max = batch_max;
        self
    }

    /// A tenant's placed region (shard index, region in shard tiles).
    pub fn placement(&self, tenant: usize) -> (usize, Region) {
        (self.tenants[tenant].shard, self.tenants[tenant].region)
    }

    /// The program-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs `jobs` against their `arrivals` (µs, nondecreasing, one per
    /// job — use [`crate::sim::open_loop_arrivals`]). Jobs are served in
    /// submission order per tenant; consecutive same-`(tenant, key)` jobs
    /// are batched (up to `batch_max`) so one placement serves all of
    /// them. Returns the records appended by this call.
    ///
    /// # Panics
    /// Panics if the slices differ in length, a job names an unknown
    /// tenant, or arrivals decrease.
    pub fn run(&mut self, jobs: &[JobSpec], arrivals: &[f64]) -> &[JobRecord] {
        assert_eq!(jobs.len(), arrivals.len(), "one arrival per job");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "arrivals must be nondecreasing");
        let first = self.records.len();
        let mut done = vec![false; jobs.len()];
        for i in 0..jobs.len() {
            if done[i] {
                continue;
            }
            assert!(jobs[i].tenant < self.tenants.len(), "unknown tenant {}", jobs[i].tenant);
            // Batch: pull forward later same-(tenant, key) jobs, stopping
            // at the tenant's next different-shaped job so per-tenant FIFO
            // order is preserved (other tenants' jobs are skipped over —
            // that is scheduling, not reordering).
            let mut batch = vec![i];
            for (j, job) in jobs.iter().enumerate().skip(i + 1) {
                if batch.len() >= self.batch_max {
                    break;
                }
                if done[j] || job.tenant != jobs[i].tenant {
                    continue;
                }
                if job.key != jobs[i].key {
                    break;
                }
                batch.push(j);
            }
            for &j in &batch {
                done[j] = true;
                self.execute(j, &jobs[j], arrivals[j]);
            }
        }
        &self.records[first..]
    }

    /// Admits and executes one job, appending its record.
    fn execute(&mut self, index: usize, job: &JobSpec, arrival_us: f64) {
        let (shard, region) = (self.tenants[job.tenant].shard, self.tenants[job.tenant].region);
        let reject = |err: AdmitError, this: &mut WaferService| {
            this.tenants[job.tenant].rejected += 1;
            this.records.push(JobRecord {
                job: index,
                tenant: job.tenant,
                key: job.key,
                tier: None,
                reject: Some(err),
                shard,
                arrival_us,
                start_us: arrival_us,
                completion_us: arrival_us,
                window: (0, 0),
                iterations: 0,
                rollbacks: 0,
                final_rel: f64::NAN,
                converged: false,
            });
        };

        // Admission. Shape checks first (static properties of the request,
        // refused regardless of quota), then the quota; the lint gate runs
        // inside the cold compile itself.
        let need = job.key.region_tiles();
        if !region.fits(need.0, need.1) {
            return reject(AdmitError::RegionTooSmall { need, have: (region.w, region.h) }, self);
        }
        if job.key.sram_estimate() > TILE_SRAM_BYTES {
            let err = AdmitError::SramOverBudget {
                need: job.key.sram_estimate(),
                budget: TILE_SRAM_BYTES,
            };
            return reject(err, self);
        }
        let quota = self.tenants[job.tenant].spec.quota;
        if self.tenants[job.tenant].admitted >= quota {
            let err = AdmitError::QuotaExceeded {
                tenant: self.tenants[job.tenant].spec.name.clone(),
                quota,
            };
            return reject(err, self);
        }

        let t0 = Instant::now();
        let (program, hit) = match self.cache.get_or_compile(&job.key) {
            Ok(pair) => pair,
            Err(err) => return reject(err, self),
        };
        let lookup_us = t0.elapsed().as_secs_f64() * 1e6;
        if hit {
            self.warm_host_us.push(lookup_us);
        } else {
            self.cold_host_us.push(program.build_host_us);
        }

        // Placement: blit unless this exact program is already resident in
        // the tenant's region (the batching payoff).
        let resident = self.tenants[job.tenant].resident == Some(job.key);
        let tier = match (resident, hit) {
            (true, _) => CacheTier::Resident,
            (false, true) => CacheTier::Hit,
            (false, false) => CacheTier::Cold,
        };
        let (w, h) = need;
        let slot = Region::new(region.x, region.y, w, h);
        let fabric = self.backend.shard_mut(shard);
        if !resident {
            fabric.blit_region(slot, &program.image);
            // Containment re-check on the placed copy. Debug builds only:
            // the identical bytes already passed the full lint at compile
            // time and blitting is translation-invariant (the determinism
            // test pins this down), so the warm path genuinely skips lint
            // in release — that skip is the cache's point.
            #[cfg(debug_assertions)]
            {
                let diags = wse_lint::lint_region(fabric, slot);
                assert!(diags.is_empty(), "placed program failed region lint: {}", diags[0]);
            }
            self.tenants[job.tenant].resident = Some(job.key);
            self.tenants[job.tenant].solver = Some(program.solver.rebased((region.x, region.y)));
        }
        let solver = self.tenants[job.tenant].solver.as_ref().expect("resident solver");

        // Manufacture the right-hand side: a seeded exact solution pushed
        // through the scaled operator, so convergence is checkable.
        let n = job.key.points();
        let mut rng = wse_arch::SplitMix64::new(job.rhs_seed);
        let exact: Vec<f64> =
            (0..n).map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5).collect();
        let mut b64 = vec![0.0f64; n];
        program.matrix_f64.matvec_f64(&exact, &mut b64);
        let b: Vec<F16> = b64.iter().map(|&v| F16::from_f64(v)).collect();

        let policy = RecoveryPolicy::default()
            .labeled(format!("{}/job{}", self.tenants[job.tenant].spec.name, index));
        let cycle_start = fabric.cycle();
        let (_, residuals, log) =
            solver.solve_with_recovery(fabric, &program.matrix, &b, job.max_iters, &policy);
        let cycle_end = fabric.cycle();

        // Deterministic latency: solve cycles plus the modeled host-side
        // cost of whatever this tier actually did.
        let image_bytes = program.sram_peak as u64 * (w * h) as u64;
        let penalty_us = match tier {
            CacheTier::Cold => self.cost.compile_us + self.cost.load_us(image_bytes),
            CacheTier::Hit => self.cost.load_us(image_bytes),
            CacheTier::Resident => 0.0,
        };
        let service_us = self.cost.cycles_to_us(cycle_end - cycle_start) + penalty_us;
        let start_us = arrival_us.max(self.server_free[shard]);
        let completion_us = start_us + service_us;
        self.server_free[shard] = completion_us;

        self.tenants[job.tenant].admitted += 1;
        self.records.push(JobRecord {
            job: index,
            tenant: job.tenant,
            key: job.key,
            tier: Some(tier),
            reject: None,
            shard,
            arrival_us,
            start_us,
            completion_us,
            window: (cycle_start, cycle_end),
            iterations: log.iterations,
            rollbacks: log.rollbacks,
            final_rel: residuals.last().copied().unwrap_or(f64::NAN),
            converged: log.outcome == wse_core::recovery::RecoveryOutcome::Converged,
        });
    }

    /// Closes the books: drains every shard's trace, attributes each job's
    /// cycle window to its tenant, and summarizes latency and throughput.
    /// The service can keep running afterwards (traces are re-armed).
    pub fn report(&mut self) -> ServiceReport {
        let shards = self.server_free.len();
        let traces: Vec<_> = (0..shards)
            .map(|m| {
                let f = self.backend.shard_mut(m);
                let t = f.take_trace();
                f.arm_trace(TraceConfig::default());
                t
            })
            .collect();

        let mut billing: Vec<BillingRow> = self
            .tenants
            .iter()
            .map(|t| BillingRow {
                tenant: t.spec.name.clone(),
                completed: 0,
                rejected: t.rejected,
                cycles: 0,
                phase_cycles: Vec::new(),
                markers: Vec::new(),
                rollbacks: 0,
                cold_builds: 0,
            })
            .collect();
        let mut tiers = (0usize, 0usize, 0usize);
        let mut sojourns: Vec<f64> = Vec::new();
        let mut makespan = 0.0f64;
        for rec in &self.records {
            let row = &mut billing[rec.tenant];
            match rec.tier {
                None => continue,
                Some(CacheTier::Cold) => {
                    tiers.0 += 1;
                    row.cold_builds += 1;
                }
                Some(CacheTier::Hit) => tiers.1 += 1,
                Some(CacheTier::Resident) => tiers.2 += 1,
            }
            row.completed += 1;
            row.cycles += rec.window.1 - rec.window.0;
            row.rollbacks += rec.rollbacks;
            if let Some(trace) = &traces[rec.shard] {
                let phase = PhaseReport::from_trace_window(trace, rec.window.0, rec.window.1);
                for r in &phase.rows {
                    if r.cycles > 0 {
                        match row.phase_cycles.iter_mut().find(|(n, _)| *n == r.name) {
                            Some((_, c)) => *c += r.cycles,
                            None => row.phase_cycles.push((r.name, r.cycles)),
                        }
                    }
                }
                for (name, count) in phase.marker_counts() {
                    match row.markers.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, c)) => *c += count,
                        None => row.markers.push((name, count)),
                    }
                }
            }
            sojourns.push(rec.sojourn_us());
            makespan = makespan.max(rec.completion_us);
        }
        sojourns.sort_by(f64::total_cmp);
        let completed = sojourns.len();
        let pct = |q: f64| -> f64 {
            if sojourns.is_empty() {
                return 0.0;
            }
            let k = ((q * completed as f64).ceil() as usize).clamp(1, completed) - 1;
            sojourns[k]
        };
        let mean =
            if completed == 0 { 0.0 } else { sojourns.iter().sum::<f64>() / completed as f64 };
        ServiceReport {
            submitted: self.records.len(),
            completed,
            rejected: self.records.len() - completed,
            tiers,
            cache: self.cache.stats(),
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            mean_us: mean,
            makespan_us: makespan,
            solves_per_sec: if makespan > 0.0 { completed as f64 / (makespan / 1e6) } else { 0.0 },
            billing,
            records: self.records.clone(),
            cold_host_us: self.cold_host_us.clone(),
            warm_host_us: self.warm_host_us.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::StencilKind;
    use crate::sim::open_loop_arrivals;

    fn key_8x8() -> ProgramKey {
        ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9)
    }

    fn key_12x8() -> ProgramKey {
        ProgramKey::bicgstab2d((12, 8), (4, 4), StencilKind::convection(1.5, -0.5))
    }

    fn two_tenant_service() -> WaferService {
        WaferService::new(
            Backend::Single(Fabric::new(8, 4)),
            vec![TenantSpec::new("acme", (3, 2), 8), TenantSpec::new("zenith", (3, 2), 8)],
        )
        .unwrap()
    }

    #[test]
    fn tenants_get_disjoint_regions() {
        let svc = two_tenant_service();
        let (s0, r0) = svc.placement(0);
        let (s1, r1) = svc.placement(1);
        assert_eq!((s0, s1), (0, 0));
        assert!(!r0.overlaps(&r1));
    }

    #[test]
    fn repeat_shapes_hit_the_cache_and_go_resident() {
        let mut svc = two_tenant_service();
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 100 + i, max_iters: 4 })
            .collect();
        let arrivals = open_loop_arrivals(1, 4, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        assert_eq!(report.completed, 4);
        // First job compiles cold; the batch keeps the program resident.
        assert_eq!(report.tiers, (1, 0, 3));
        assert_eq!(report.cache.cold, 1);
        assert!(report.records.iter().all(|r| r.iterations > 0));
    }

    #[test]
    fn second_tenant_same_shape_is_a_cache_hit_not_a_rebuild() {
        let mut svc = two_tenant_service();
        let jobs = [
            JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 1, max_iters: 3 },
            JobSpec { tenant: 1, key: key_8x8(), rhs_seed: 2, max_iters: 3 },
        ];
        let arrivals = open_loop_arrivals(2, 2, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        assert_eq!(report.tiers, (1, 1, 0));
        assert_eq!(report.cache.cold, 1);
        assert_eq!(report.cache.hits, 1);
        assert!(report.cache.hit_rate() > 0.0);
    }

    #[test]
    fn quota_and_fit_rejections_are_recorded() {
        let mut svc = WaferService::new(
            Backend::Single(Fabric::new(8, 4)),
            vec![TenantSpec::new("tiny", (2, 2), 1)],
        )
        .unwrap();
        let jobs = [
            JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 1, max_iters: 2 },
            // 3x2 tiles do not fit the 2x2 region.
            JobSpec { tenant: 0, key: key_12x8(), rhs_seed: 2, max_iters: 2 },
            // Over quota (quota = 1, one job already admitted).
            JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 3, max_iters: 2 },
        ];
        let arrivals = open_loop_arrivals(3, 3, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejected, 2);
        let rejects: Vec<_> = report.records.iter().filter_map(|r| r.reject.as_ref()).collect();
        assert!(rejects.iter().any(|e| matches!(e, AdmitError::RegionTooSmall { .. })));
        assert!(rejects.iter().any(|e| matches!(e, AdmitError::QuotaExceeded { .. })));
    }

    #[test]
    fn billing_attributes_cycles_to_the_right_tenant() {
        let mut svc = two_tenant_service();
        let jobs = [
            JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 1, max_iters: 3 },
            JobSpec { tenant: 1, key: key_8x8(), rhs_seed: 2, max_iters: 6 },
        ];
        let arrivals = open_loop_arrivals(4, 2, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        assert_eq!(report.billing.len(), 2);
        let (a, z) = (&report.billing[0], &report.billing[1]);
        assert!(a.cycles > 0 && z.cycles > 0);
        // Twice the iterations ⇒ strictly more cycles billed.
        assert!(z.cycles > a.cycles, "acme {} vs zenith {}", a.cycles, z.cycles);
        // Phase attribution covers the solver's marked phases.
        assert!(a.phase_cycles.iter().any(|(n, _)| *n == "spmv"));
        // The recovery engine stamps its post-load checkpoint per job.
        assert!(a.markers.iter().any(|(n, c)| *n == "checkpoint" && *c > 0));
    }

    #[test]
    fn batching_pulls_forward_same_key_jobs_but_keeps_tenant_fifo() {
        let mut svc = two_tenant_service();
        let (a, b) = (key_8x8(), key_12x8());
        // Tenant 0 submits a, a, b, a: the third `a` must NOT jump the `b`.
        let jobs = [
            JobSpec { tenant: 0, key: a, rhs_seed: 1, max_iters: 2 },
            JobSpec { tenant: 0, key: a, rhs_seed: 2, max_iters: 2 },
            JobSpec { tenant: 0, key: b, rhs_seed: 3, max_iters: 2 },
            JobSpec { tenant: 0, key: a, rhs_seed: 4, max_iters: 2 },
        ];
        let arrivals = open_loop_arrivals(5, 4, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        let order: Vec<usize> = report.records.iter().map(|r| r.job).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "per-tenant submission order preserved");
        // Job 3 re-places `a` after `b` evicted it: a cache hit, not cold.
        assert_eq!(report.records[3].tier, Some(CacheTier::Hit));
        assert_eq!(report.cache.cold, 2);
    }

    #[test]
    fn ensemble_backend_spreads_tenants_across_shards() {
        let multi = MultiFabric::new(8, 4, 2, wse_multi::HostLink::ideal());
        let mut svc = WaferService::new(
            Backend::Ensemble(multi),
            vec![TenantSpec::new("left", (3, 3), 4), TenantSpec::new("right", (3, 3), 4)],
        )
        .unwrap();
        assert_eq!(svc.placement(0).0, 0);
        assert_eq!(svc.placement(1).0, 1, "second 3x3 cannot fit beside the first on a 4x4 shard");
        let jobs = [
            JobSpec { tenant: 0, key: key_8x8(), rhs_seed: 1, max_iters: 3 },
            JobSpec { tenant: 1, key: key_8x8(), rhs_seed: 2, max_iters: 3 },
        ];
        let arrivals = open_loop_arrivals(6, 2, 0.001);
        svc.run(&jobs, &arrivals);
        let report = svc.report();
        assert_eq!(report.completed, 2);
        assert!(report.billing.iter().all(|row| row.cycles > 0));
    }

    #[test]
    fn latency_accounting_is_deterministic_and_ordered() {
        let run = || {
            let mut svc = two_tenant_service();
            let jobs: Vec<JobSpec> = (0..6)
                .map(|i| JobSpec {
                    tenant: (i % 2) as usize,
                    key: key_8x8(),
                    rhs_seed: i,
                    max_iters: 3,
                })
                .collect();
            let arrivals = open_loop_arrivals(7, 6, 0.01);
            svc.run(&jobs, &arrivals);
            svc.report()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.render(), b.render(), "deterministic report text");
        for rec in &a.records {
            assert!(rec.start_us >= rec.arrival_us);
            assert!(rec.completion_us > rec.start_us);
        }
        assert!(a.p99_us >= a.p50_us);
        assert!(a.solves_per_sec > 0.0);
    }
}
