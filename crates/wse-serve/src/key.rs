//! Cache keys for compiled wafer programs.
//!
//! A compiled program is fully determined by the problem geometry and the
//! kernel configuration — the builders are deterministic functions of
//! these (the program-build determinism test in `tests/` proves it), which
//! is the correctness precondition for caching compiled images by value.

use std::fmt;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh2D;

/// Which 9-point operator a job solves.
///
/// Real-valued parameters are stored as IEEE-754 bit patterns so the key
/// stays `Eq + Hash` without tolerating any numeric fuzz: two jobs share a
/// compiled program only if their operators are bit-identical.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StencilKind {
    /// The 9-point Laplacian.
    Laplace9,
    /// 9-point convection–diffusion with the given velocity field
    /// (`f64::to_bits` of each component).
    ConvectionDiffusion9 {
        /// Bit pattern of the x velocity.
        vx_bits: u64,
        /// Bit pattern of the y velocity.
        vy_bits: u64,
    },
    /// A declarative operator from the `wse-dsl` catalog.
    ///
    /// The name alone is not a sound cache key — a catalog revision could
    /// silently alias a stale compiled program — so the key also pins the
    /// spec's [`wse_dsl::StencilSpec::fingerprint`], which covers every
    /// tap, coefficient bit pattern, precision, and boundary condition.
    Dsl {
        /// Catalog name (see [`wse_dsl::catalog::NAMES`]), e.g. `box9-2d`.
        name: &'static str,
        /// Fingerprint of the named spec at key-construction time.
        fingerprint: u64,
    },
}

impl StencilKind {
    /// Convection–diffusion with velocity `(vx, vy)`.
    pub fn convection(vx: f64, vy: f64) -> StencilKind {
        StencilKind::ConvectionDiffusion9 { vx_bits: vx.to_bits(), vy_bits: vy.to_bits() }
    }

    /// A catalog-defined DSL operator as a cacheable tenant stencil.
    ///
    /// The 2D solver consumes 9-point radius-1 operators, so the named
    /// spec must cover exactly the 2D box neighborhood: nine constant taps
    /// with `|dx| ≤ 1`, `|dy| ≤ 1`, `dz = 0` (`box9-2d` qualifies;
    /// `star5-2d` and the wider stars do not).
    ///
    /// # Panics
    /// Panics if the name is not in the catalog or the spec is not a
    /// 9-point 2D box operator.
    pub fn dsl(name: &'static str) -> StencilKind {
        let spec = wse_dsl::catalog::get(name).unwrap_or_else(|| {
            panic!(
                "unknown catalog operator `{name}`; available: {}",
                wse_dsl::catalog::NAMES.join(", ")
            )
        });
        let offsets = spec.offsets();
        let is_box9 = offsets.len() == 9
            && offsets.iter().all(|o| o.dx.abs() <= 1 && o.dy.abs() <= 1 && o.dz == 0);
        assert!(
            is_box9,
            "catalog operator `{name}` is not a 9-point 2D box stencil \
             (the 2D solver's operator shape)"
        );
        StencilKind::Dsl { name, fingerprint: spec.fingerprint() }
    }

    /// Assembles the operator on `mesh` (unscaled, f64).
    pub fn matrix(&self, mesh: Mesh2D) -> DiaMatrix<f64> {
        match *self {
            StencilKind::Laplace9 => stencil::stencil9::laplace9(mesh),
            StencilKind::ConvectionDiffusion9 { vx_bits, vy_bits } => {
                stencil::stencil9::convection_diffusion9(
                    mesh,
                    (f64::from_bits(vx_bits), f64::from_bits(vy_bits)),
                )
            }
            StencilKind::Dsl { name, fingerprint } => {
                let spec = wse_dsl::catalog::get(name)
                    .unwrap_or_else(|| panic!("catalog operator `{name}` vanished"));
                assert_eq!(
                    spec.fingerprint(),
                    fingerprint,
                    "catalog operator `{name}` changed since this key was built"
                );
                spec.matrix(mesh.as_3d()).expect("catalog operator must assemble")
            }
        }
    }
}

impl fmt::Display for StencilKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StencilKind::Laplace9 => write!(f, "laplace9"),
            StencilKind::ConvectionDiffusion9 { vx_bits, vy_bits } => {
                write!(f, "convdiff9({},{})", f64::from_bits(vx_bits), f64::from_bits(vy_bits))
            }
            StencilKind::Dsl { name, fingerprint } => {
                write!(f, "dsl:{name}@{fingerprint:016x}")
            }
        }
    }
}

/// Which wafer solver the program runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// BiCGStab on the 2D block mapping (§IV.2).
    Bicgstab2d,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::Bicgstab2d => write!(f, "bicgstab2d"),
        }
    }
}

/// On-wafer storage precision of the Krylov state.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// fp16 vectors, fp32 scalars (the paper's mixed precision).
    F16,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F16 => write!(f, "f16"),
        }
    }
}

/// The compiled-program cache key: everything the builders read.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// Global mesh extents `(nx, ny)`.
    pub mesh: (usize, usize),
    /// Per-core block extents `(bx, by)`; must divide the mesh evenly.
    pub block: (usize, usize),
    /// The operator.
    pub stencil: StencilKind,
    /// The solver.
    pub solver: SolverKind,
    /// The storage precision.
    pub precision: Precision,
}

impl ProgramKey {
    /// A 2D BiCGStab key. `mesh` must tile evenly by `block` into a region
    /// of at least 2×2 tiles (the solver's minimum).
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent.
    pub fn bicgstab2d(mesh: (usize, usize), block: (usize, usize), stencil: StencilKind) -> Self {
        let key = ProgramKey {
            mesh,
            block,
            stencil,
            solver: SolverKind::Bicgstab2d,
            precision: Precision::F16,
        };
        let (w, h) = key.region_tiles();
        assert!(w >= 2 && h >= 2, "2D solver needs at least 2x2 tiles, got {w}x{h}");
        key
    }

    /// Tile extents `(w, h)` of the region this program occupies.
    ///
    /// # Panics
    /// Panics if the mesh does not tile evenly by the block.
    pub fn region_tiles(&self) -> (usize, usize) {
        let (nx, ny) = self.mesh;
        let (bx, by) = self.block;
        assert!(bx > 0 && by > 0 && nx % bx == 0 && ny % by == 0, "mesh must tile evenly");
        (nx / bx, ny / by)
    }

    /// Number of mesh points.
    pub fn points(&self) -> usize {
        self.mesh.0 * self.mesh.1
    }

    /// Conservative per-tile SRAM footprint estimate in bytes, used by
    /// admission control *before* compiling: 9 coefficient arrays, the two
    /// SpMV inputs `p`/`q`, the vectors `r`/`r0`/`x`, and two extended
    /// `(bx+2)(by+2)` output buffers, all fp16. The builder's bump
    /// allocator enforces the real budget; this estimate only lets the
    /// service refuse obviously-oversized jobs without building them.
    pub fn sram_estimate(&self) -> u32 {
        let (bx, by) = self.block;
        let block_arrays = 14 * bx * by;
        let ubufs = 2 * (bx + 2) * (by + 2);
        (2 * (block_arrays + ubufs)) as u32
    }
}

impl fmt::Display for ProgramKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/{}x{}/{}/{}/{}",
            self.mesh.0,
            self.mesh.1,
            self.block.0,
            self.block.1,
            self.stencil,
            self.solver,
            self.precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_hash_and_compare_by_value() {
        use std::collections::HashSet;
        let a = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5));
        let b = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5));
        let c = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.25));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn region_and_estimate_arithmetic() {
        let k = ProgramKey::bicgstab2d((12, 8), (4, 4), StencilKind::Laplace9);
        assert_eq!(k.region_tiles(), (3, 2));
        assert_eq!(k.points(), 96);
        // 14 arrays of 16 + 2 buffers of 36, fp16.
        assert_eq!(k.sram_estimate(), 2 * (14 * 16 + 2 * 36));
        assert_eq!(k.to_string(), "12x8/4x4/laplace9/bicgstab2d/f16");
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_regions() {
        let _ = ProgramKey::bicgstab2d((8, 4), (4, 4), StencilKind::Laplace9);
    }

    #[test]
    fn dsl_keys_are_stable_values() {
        let a = StencilKind::dsl("box9-2d");
        let b = StencilKind::dsl("box9-2d");
        assert_eq!(a, b);
        assert_ne!(a, StencilKind::Laplace9);
        let k = ProgramKey::bicgstab2d((8, 8), (4, 4), a);
        let fp = wse_dsl::catalog::get("box9-2d").unwrap().fingerprint();
        assert_eq!(k.to_string(), format!("8x8/4x4/dsl:box9-2d@{fp:016x}/bicgstab2d/f16"));
        // The DSL operator assembles over the same mesh shape the built-in
        // stencils do: 9 bands on an nz = 1 mesh.
        let m = a.matrix(Mesh2D::new(8, 8));
        assert_eq!(m.offsets().len(), 9);
        assert_eq!(m.mesh().nz, 1);
    }

    #[test]
    #[should_panic(expected = "not a 9-point 2D box stencil")]
    fn rejects_non_box9_dsl_operators() {
        let _ = StencilKind::dsl("star5-2d");
    }

    #[test]
    #[should_panic(expected = "unknown catalog operator")]
    fn rejects_unknown_dsl_operators() {
        let _ = StencilKind::dsl("no-such-operator");
    }
}
