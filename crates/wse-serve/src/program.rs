//! Compiled program images: build-on-scratch, lint gate, and digests.
//!
//! A compiled program is a *region-sized scratch [`Fabric`]* holding the
//! fully built wafer program at origin `(0, 0)`, together with the solver
//! handle that drives it. Because all routing and task state is per-tile,
//! the image is translation-invariant: placing it is a pure
//! [`Fabric::blit_region`] of tile state, and the handle is rebased to the
//! target origin. Compilation happens entirely off the shared machine —
//! the admission lint gate runs on the scratch image, so a program that
//! fails verification never touches a fabric tenants are running on.

use crate::key::ProgramKey;
use std::fmt;
use std::time::Instant;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh2D;
use wse_arch::{Fabric, Region, TILE_SRAM_BYTES};
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_float::F16;

/// Why a job was refused admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant's per-run job quota is exhausted.
    QuotaExceeded {
        /// Tenant name.
        tenant: String,
        /// The quota that was hit.
        quota: usize,
    },
    /// The program's tile region does not fit inside the tenant's region.
    RegionTooSmall {
        /// Requested tile extents.
        need: (usize, usize),
        /// The tenant region's tile extents.
        have: (usize, usize),
    },
    /// The conservative SRAM estimate exceeds the per-tile budget.
    SramOverBudget {
        /// Estimated bytes per tile.
        need: u32,
        /// The hardware budget.
        budget: u32,
    },
    /// The compiled program failed the static lint gate.
    LintRejected {
        /// Number of diagnostics.
        findings: usize,
        /// The first diagnostic, for the log.
        first: String,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant {tenant}: job quota {quota} exhausted")
            }
            AdmitError::RegionTooSmall { need, have } => {
                write!(
                    f,
                    "program needs {}x{} tiles, region has {}x{}",
                    need.0, need.1, have.0, have.1
                )
            }
            AdmitError::SramOverBudget { need, budget } => {
                write!(f, "estimated {need} B/tile exceeds the {budget} B SRAM budget")
            }
            AdmitError::LintRejected { findings, first } => {
                write!(f, "lint gate: {findings} finding(s), first: {first}")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// A compiled, lint-verified, cache-resident wafer program.
pub struct CompiledProgram {
    /// The key this program was compiled from.
    pub key: ProgramKey,
    /// The region-sized scratch fabric holding the program at `(0, 0)`,
    /// quiescent and never stepped — the blit source.
    pub image: Fabric,
    /// Solver handle at origin `(0, 0)`; rebase to drive a placed copy.
    pub solver: WaferBicgstab2d,
    /// The Jacobi-scaled operator in f64 (for manufacturing right-hand
    /// sides and the recovery engine's true-residual verification).
    pub matrix_f64: DiaMatrix<f64>,
    /// The same operator in the on-wafer fp16 precision.
    pub matrix: DiaMatrix<F16>,
    /// Peak per-tile SRAM actually allocated by the builder, in bytes.
    pub sram_peak: u32,
    /// FNV-1a digest of the full per-tile program state (see
    /// [`program_digest`]).
    pub digest: u64,
    /// Host wall-clock microseconds spent in builder + lint for this
    /// compile. **Nondeterministic** — reported for the cold-vs-warm
    /// speedup measurement only, never in deterministic output.
    pub build_host_us: f64,
}

impl CompiledProgram {
    /// Compiles `key` on a scratch fabric and runs the admission lint
    /// gate. `Err` means the program must not be placed; `Ok` images are
    /// verified route-contained by construction (the scratch fabric is
    /// exactly the region, so any escaping route would have surfaced as
    /// `route-off-fabric`).
    pub fn compile(key: &ProgramKey) -> Result<CompiledProgram, AdmitError> {
        let est = key.sram_estimate();
        if est > TILE_SRAM_BYTES {
            return Err(AdmitError::SramOverBudget { need: est, budget: TILE_SRAM_BYTES });
        }
        let t0 = Instant::now();
        let (w, h) = key.region_tiles();
        let mesh = Mesh2D::new(key.mesh.0, key.mesh.1);
        let a64 = key.stencil.matrix(mesh);
        // Scale once with a zero rhs: per-job right-hand sides are
        // manufactured directly in the scaled system, so the diagonal is
        // not needed again.
        let scaled = stencil::precond::jacobi_scale(&a64, &vec![0.0; mesh.len()]);
        let matrix_f64 = scaled.matrix;
        let matrix: DiaMatrix<F16> = matrix_f64.convert();

        let mut image = Fabric::new(w, h);
        let block = stencil::decomp::Block2D::new(key.block.0, key.block.1);
        let solver = WaferBicgstab2d::build(&mut image, &matrix, block);

        // The admission lint gate — unconditional (debug_lint inside the
        // builder is compiled out of release builds; the service gate is
        // not optional).
        let diags = wse_lint::lint(&image);
        let build_host_us = t0.elapsed().as_secs_f64() * 1e6;
        if !diags.is_empty() {
            return Err(AdmitError::LintRejected {
                findings: diags.len(),
                first: diags[0].to_string(),
            });
        }

        let sram_peak = image.region(Region::new(0, 0, w, h)).sram_used_max();
        let digest = program_digest(&image);
        Ok(CompiledProgram {
            key: *key,
            image,
            solver,
            matrix_f64,
            matrix,
            sram_peak,
            digest,
            build_host_us,
        })
    }
}

/// FNV-1a digest of every tile's complete program state: allocated SRAM
/// contents, the textual core program dump (tasks, DSRs, FIFOs, bindings),
/// the routing table, and the scalar register file. Two fabrics with equal
/// digests hold byte-identical programs tile for tile — this is what the
/// program-build determinism test pins down, and what makes cache keying
/// by [`ProgramKey`] sound.
pub fn program_digest(fabric: &Fabric) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(fabric.width() as u64).to_le_bytes());
    eat(&(fabric.height() as u64).to_le_bytes());
    for y in 0..fabric.height() {
        for x in 0..fabric.width() {
            let tile = fabric.tile(x, y);
            let used = tile.mem.used() as usize;
            eat(&tile.mem.as_bytes()[..used]);
            eat(tile.core.dump_program().as_bytes());
            for r in &tile.core.regs {
                eat(&r.to_bits().to_le_bytes());
            }
            for (port, color, outs) in tile.router.routes() {
                eat(&[port.index() as u8, color]);
                for o in outs {
                    eat(&[o.index() as u8]);
                }
            }
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::StencilKind;

    fn small_key() -> ProgramKey {
        ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5))
    }

    #[test]
    fn compile_produces_a_clean_resident_image() {
        let p = CompiledProgram::compile(&small_key()).unwrap();
        assert_eq!(p.image.width(), 2);
        assert_eq!(p.image.height(), 2);
        assert!(p.image.is_quiescent());
        assert!(p.sram_peak > 0);
        assert!(p.sram_peak <= TILE_SRAM_BYTES);
        assert!(p.build_host_us > 0.0);
    }

    #[test]
    fn oversized_blocks_are_refused_before_building() {
        // A 48x48 block wants ~14*48*48*2 B ≈ 64 KB of fp16 arrays: over
        // the 48 KB budget; admission must refuse without panicking.
        let key = ProgramKey::bicgstab2d((96, 96), (48, 48), StencilKind::Laplace9);
        match CompiledProgram::compile(&key) {
            Err(AdmitError::SramOverBudget { need, budget }) => {
                assert!(need > budget);
            }
            other => panic!("expected SramOverBudget, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn digest_is_sensitive_to_program_state() {
        let p = CompiledProgram::compile(&small_key()).unwrap();
        let mut copy = p.image.extract_region(Region::new(0, 0, 2, 2));
        assert_eq!(program_digest(&copy), p.digest);
        // Flip one bit of one tile's SRAM: the digest must move.
        copy.tile_mut(1, 1).mem.flip_bit(0, 0);
        assert_ne!(program_digest(&copy), p.digest);
    }
}
