//! Multi-tenant wafer service.
//!
//! The paper demonstrates one solve running fast on one wafer; the missing
//! layer between that demonstration and a production system serving heavy
//! traffic is a *service* in front of the fabric. This crate supplies it:
//!
//! * **Tenancy** — a [`Fabric`](wse_arch::Fabric) (or a
//!   [`MultiFabric`](wse_multi::MultiFabric) ensemble) is partitioned into
//!   rectangular tenant regions by the deterministic shelf packer in
//!   `wse-multi::tenancy`; tenant programs are built region-contained, so
//!   co-residents cannot interact (routing never crosses a region edge —
//!   `wse-lint`'s region lint proves it).
//! * **Admission control** ([`service`]) — per-tenant job quotas, a
//!   region-fit check, a conservative SRAM footprint check, and the lint
//!   gate: a tenant program is compiled and statically verified on a
//!   *scratch* fabric before it ever touches the shared machine.
//! * **Compiled-program cache** ([`cache`]) — wafer program construction
//!   (layout + routing + task compilation + lint) dominates turnaround for
//!   repeat shapes, so compiled region images are cached under a
//!   [`ProgramKey`] of `(mesh, block, stencil, solver, precision)`.
//!   Programs are translation-invariant (routing is per-tile state), so a
//!   cached image built at origin `(0,0)` is *blitted* into any tenant
//!   region and driven through a rebased solver handle — repeat shapes
//!   skip builder and lint entirely.
//! * **Batching** ([`service`]) — consecutive queued solves of the same
//!   `(tenant, key)` are coalesced so one program placement serves the
//!   whole batch; later jobs of a batch run against the already-resident
//!   image ("resident" tier, no blit at all).
//! * **Recovery & billing** — each job runs under the checkpoint/rollback
//!   engine with a `tenant/job` label, so rollbacks are attributable; the
//!   per-job cycle window is carved out of the shared fabric trace
//!   (`PhaseReport::from_trace_window`) into a per-tenant billing table.
//!
//! The whole front door is deterministic: arrivals come from a seeded
//! open-loop process ([`sim`]), service order, placement, batching, and
//! every report number are pure functions of the seeds. Host wall-clock is
//! measured only to report the cold-build vs cache-hit speedup and never
//! enters the simulated-time accounting.

#![warn(missing_docs)]

pub mod cache;
pub mod key;
pub mod program;
pub mod service;
pub mod sim;

pub use cache::{CacheStats, ProgramCache};
pub use key::{Precision, ProgramKey, SolverKind, StencilKind};
pub use program::{program_digest, AdmitError, CompiledProgram};
pub use service::{
    Backend, BillingRow, CacheTier, JobRecord, JobSpec, ServiceReport, TenantSpec, WaferService,
};
pub use sim::{open_loop_arrivals, CostModel};
