//! The compiled-program cache.
//!
//! Wafer program construction — operator assembly, layout, routing, task
//! compilation, and the lint gate — dominates turnaround for repeat
//! shapes. Builds are deterministic functions of the [`ProgramKey`] (the
//! determinism test proves byte-identical images), so caching by key is
//! sound: a hit returns the *same bytes* a fresh compile would have
//! produced, and skips builder and lint entirely.

use crate::key::ProgramKey;
use crate::program::{AdmitError, CompiledProgram};
use std::collections::HashMap;

/// Hit/miss counters for the cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cold compiles (misses that ran builder + lint).
    pub cold: usize,
    /// Hits served from the cache.
    pub hits: usize,
    /// Compiles refused by admission (not cached; counted separately).
    pub rejected: usize,
}

impl CacheStats {
    /// Hits as a fraction of all successful lookups, `0.0` when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cold + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A map from [`ProgramKey`] to verified [`CompiledProgram`] images.
///
/// There is no eviction: a service run touches a handful of shapes, and an
/// image is a region-sized fabric (a few tiles of SRAM), so the cache is
/// tiny next to the machine it serves.
#[derive(Default)]
pub struct ProgramCache {
    map: HashMap<ProgramKey, CompiledProgram>,
    stats: CacheStats,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the compiled program for `key`, compiling (and lint-gating)
    /// it on a miss. The boolean is `true` on a hit. Admission rejections
    /// are not cached — a rejected key re-runs the gate if resubmitted,
    /// which keeps the error fresh and costs nothing on the shared fabric.
    pub fn get_or_compile(
        &mut self,
        key: &ProgramKey,
    ) -> Result<(&CompiledProgram, bool), AdmitError> {
        if self.map.contains_key(key) {
            self.stats.hits += 1;
            return Ok((&self.map[key], true));
        }
        match CompiledProgram::compile(key) {
            Ok(program) => {
                self.stats.cold += 1;
                Ok((self.map.entry(*key).or_insert(program), false))
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Lookup without compiling.
    pub fn peek(&self, key: &ProgramKey) -> Option<&CompiledProgram> {
        self.map.get(key)
    }

    /// Number of distinct cached programs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::StencilKind;

    #[test]
    fn second_lookup_is_a_hit_with_the_same_digest() {
        let mut cache = ProgramCache::new();
        let key = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9);
        let (first, hit) = cache.get_or_compile(&key).map(|(p, h)| (p.digest, h)).unwrap();
        assert!(!hit);
        let (second, hit) = cache.get_or_compile(&key).map(|(p, h)| (p.digest, h)).unwrap();
        assert!(hit);
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { cold: 1, hits: 1, rejected: 0 });
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let mut cache = ProgramCache::new();
        let a = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9);
        let b = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.0, 0.0));
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        assert_eq!(cache.stats().cold, 2);
        assert_eq!(cache.len(), 2);
        assert_ne!(cache.peek(&a).unwrap().digest, cache.peek(&b).unwrap().digest);
    }

    #[test]
    fn rejections_are_counted_and_not_cached() {
        let mut cache = ProgramCache::new();
        let big = ProgramKey::bicgstab2d((96, 96), (48, 48), StencilKind::Laplace9);
        assert!(cache.get_or_compile(&big).is_err());
        assert!(cache.get_or_compile(&big).is_err());
        assert_eq!(cache.stats().rejected, 2);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
