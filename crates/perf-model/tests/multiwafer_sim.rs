//! Cross-validation of `MultiWafer` against the `wse-multi` simulation:
//! the model's interconnect terms (halo transfer + host-level AllReduce
//! hops) must bracket the cycles the cycle-accurate ensemble actually
//! spends in its `halo` and `host_allreduce` phases.
//!
//! The model is a *floor*: it prices pure wire time (serialization +
//! link latency), while the simulation additionally executes the on-wafer
//! seam tasks (DSR arming, launch slots, ramp traversal) and the on-wafer
//! re-broadcast half of the hierarchical AllReduce. The measured delta is
//! documented in DESIGN.md §12.

use perf_model::cs1::Cs1Model;
use perf_model::multiwafer::MultiWafer;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::stencil7::poisson;
use wse_core::WaferBicgstabMulti;
use wse_float::F16;
use wse_multi::{HostLink, MultiFabric};

#[test]
fn simulated_k2_interconnect_time_brackets_model_prediction() {
    // Small weak-scaled problem: 2 wafers, 4×4 tiles each, z=16.
    let (gw, h, z, k) = (8usize, 4usize, 16usize, 2usize);
    let mesh = Mesh3D::new(gw, h, z);
    let a64 = poisson(mesh);
    let b64: Vec<f64> = (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
    let sys = jacobi_scale(&a64, &b64);
    let a: DiaMatrix<F16> = sys.matrix.convert();
    let b: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let clock_ghz = Cs1Model::default().clock_ghz;
    let mut multi = MultiFabric::new(gw, h, k, HostLink::new(1000.0, 0.2, clock_ghz));
    let dist = WaferBicgstabMulti::build(&mut multi, &a);
    dist.load_rhs(&mut multi, &b);
    let c = dist.iterate(&mut multi);
    let sim_extra = c.halo + c.host_allreduce;

    let model = MultiWafer { k, ..Default::default() };
    let (halo_us, reduce_us) = model.interconnect_us(h, z);
    let model_cycles = ((halo_us + reduce_us) * clock_ghz * 1e3) as u64;

    // The wire-time floor must hold, and the simulation's task overhead
    // must stay within a small constant factor of it.
    assert!(
        sim_extra >= model_cycles,
        "simulation ({sim_extra} cycles) beat the wire-time model ({model_cycles} cycles)"
    );
    // Measured: 1826 simulated vs 1800 modeled cycles (+1.4%) at this
    // shape — the delta is the on-wafer seam-task execution and the
    // broadcast half of the hierarchical AllReduce, both sub-first-order.
    assert!(
        sim_extra <= 2 * model_cycles,
        "simulation ({sim_extra} cycles) far exceeds the model ({model_cycles} cycles): \
         the model is missing a first-order term"
    );
}

#[test]
fn predict_mesh_generalizes_predict() {
    let mw = MultiWafer::default();
    for z in [64usize, 512, 1536] {
        let a = mw.predict(z);
        let b = mw.predict_mesh(600, 595, z);
        assert!((a.time_us - b.time_us).abs() < 1e-12);
        assert_eq!(a.mesh, b.mesh);
    }
    // Smaller meshes scale the halo term with the seam plane area.
    let small = mw.predict_mesh(4, 4, 16);
    let (halo_small, _) = mw.interconnect_us(4, 16);
    let (halo_paper, _) = mw.interconnect_us(595, 1536);
    assert!(halo_small < halo_paper);
    assert_eq!(small.mesh, (8, 4, 16));
}
