//! Cross-validation of `MultiWafer` against the `wse-multi` simulation:
//! the model's interconnect terms (halo transfer + host-level AllReduce
//! hops) must bracket the cycles the cycle-accurate ensemble actually
//! spends in its `halo` and `host_allreduce` phases.
//!
//! The model is a *floor*: it prices pure wire time (serialization +
//! link latency), while the simulation additionally executes the on-wafer
//! seam tasks (DSR arming, launch slots, ramp traversal) and the on-wafer
//! re-broadcast half of the hierarchical AllReduce. The measured delta is
//! documented in DESIGN.md §12.

use perf_model::cs1::Cs1Model;
use perf_model::multiwafer::MultiWafer;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::stencil7::poisson;
use wse_core::WaferBicgstabMulti;
use wse_float::F16;
use wse_multi::{HostLink, MultiFabric};

#[test]
fn simulated_k2_interconnect_time_brackets_model_prediction() {
    // Small weak-scaled problem: 2 wafers, 4×4 tiles each, z=16.
    let (gw, h, z, k) = (8usize, 4usize, 16usize, 2usize);
    let mesh = Mesh3D::new(gw, h, z);
    let a64 = poisson(mesh);
    let b64: Vec<f64> = (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
    let sys = jacobi_scale(&a64, &b64);
    let a: DiaMatrix<F16> = sys.matrix.convert();
    let b: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let clock_ghz = Cs1Model::default().clock_ghz;
    let mut multi = MultiFabric::new(gw, h, k, HostLink::new(1000.0, 0.2, clock_ghz));
    // The serial model prices the serial schedule: every halo plane and all
    // four scalar rounds sit on the critical path. The overlapped default
    // deliberately undercuts this floor — see the companion test below.
    let dist = WaferBicgstabMulti::build_serial(&mut multi, &a);
    dist.load_rhs(&mut multi, &b);
    let c = dist.iterate(&mut multi);
    let sim_extra = c.halo + c.host_allreduce;

    let model = MultiWafer { k, ..Default::default() };
    let (halo_us, reduce_us) = model.interconnect_us(h, z);
    let model_cycles = ((halo_us + reduce_us) * clock_ghz * 1e3) as u64;

    // The wire-time floor must hold, and the simulation's task overhead
    // must stay within a small constant factor of it.
    assert!(
        sim_extra >= model_cycles,
        "simulation ({sim_extra} cycles) beat the wire-time model ({model_cycles} cycles)"
    );
    // Measured: 1826 simulated vs 1800 modeled cycles (+1.4%) at this
    // shape — the delta is the on-wafer seam-task execution and the
    // broadcast half of the hierarchical AllReduce, both sub-first-order.
    assert!(
        sim_extra <= 2 * model_cycles,
        "simulation ({sim_extra} cycles) far exceeds the model ({model_cycles} cycles): \
         the model is missing a first-order term"
    );
}

#[test]
fn simulated_k2_overlapped_fused_beats_the_serial_wire_floor() {
    // Same weak-scaled shape as above, but the overlapped interior-first
    // schedule plus the single-reduction fused solver.
    let (gw, h, z, k) = (8usize, 4usize, 16usize, 2usize);
    let mesh = Mesh3D::new(gw, h, z);
    let a64 = poisson(mesh);
    let b64: Vec<f64> = (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
    let sys = jacobi_scale(&a64, &b64);
    let a: DiaMatrix<F16> = sys.matrix.convert();
    let b: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let clock_ghz = Cs1Model::default().clock_ghz;
    let mut multi = MultiFabric::new(gw, h, k, HostLink::new(1000.0, 0.2, clock_ghz));
    let dist = WaferBicgstabMulti::build_fused(&mut multi, &a);
    dist.load_rhs(&mut multi, &b);
    let c = dist.iterate(&mut multi);
    let sim_extra = c.halo + c.host_allreduce;
    eprintln!(
        "fused k=2: halo_exposed={} halo_hidden={} host_allreduce={} spmv={}",
        c.halo, c.halo_hidden, c.host_allreduce, c.compute.spmv
    );

    // The whole point of the PR: the overlapped + fused interconnect time
    // drops below the serial schedule's wire-time floor.
    let model = MultiWafer { k, ..Default::default() };
    let (halo_us, reduce_us) = model.interconnect_us(h, z);
    let serial_floor = ((halo_us + reduce_us) * clock_ghz * 1e3) as u64;
    assert!(
        sim_extra < serial_floor,
        "overlapped+fused ({sim_extra} cycles) should beat the serial wire floor ({serial_floor})"
    );

    // The overlapped model brackets the measured terms when fed the
    // simulator's own SpMV window (two windows per iteration).
    let window_us = (c.compute.spmv as f64 / 2.0) / (clock_ghz * 1e3);
    let (exposed_us, fused_reduce_us) = model.interconnect_overlapped_us(h, z, window_us);
    let reduce_cycles = (fused_reduce_us * clock_ghz * 1e3) as u64;
    assert!(
        c.host_allreduce >= reduce_cycles && c.host_allreduce <= 2 * reduce_cycles,
        "fused host round-trip {} outside [{reduce_cycles}, {}]",
        c.host_allreduce,
        2 * reduce_cycles
    );
    let exposed_floor = (exposed_us * clock_ghz * 1e3) as u64;
    assert!(
        c.halo >= exposed_floor,
        "measured exposure {} beat the model's exposed wire time {exposed_floor}",
        c.halo
    );
}

#[test]
fn predict_mesh_generalizes_predict() {
    let mw = MultiWafer::default();
    for z in [64usize, 512, 1536] {
        let a = mw.predict(z);
        let b = mw.predict_mesh(600, 595, z);
        assert!((a.time_us - b.time_us).abs() < 1e-12);
        assert_eq!(a.mesh, b.mesh);
    }
    // Smaller meshes scale the halo term with the seam plane area.
    let small = mw.predict_mesh(4, 4, 16);
    let (halo_small, _) = mw.interconnect_us(4, 16);
    let (halo_paper, _) = mw.interconnect_us(595, 1536);
    assert!(halo_small < halo_paper);
    assert_eq!(small.mesh, (8, 4, 16));
}
