//! The Joule-cluster strong-scaling model (Figs. 7–8).
//!
//! The paper's measurement: 64-bit BiCGStab inside MFIX on Joule 2.0 (HPE
//! ProLiant, dual Xeon Gold 6148, Omni-Path). Anchors: on a **600³** mesh,
//! "time per BiCGstab iteration on Joule ranges from 75 ms on 1024 cores,
//! and scales down to about 6 ms on 16K cores" — "about 214 times more than
//! the 28.1 microseconds per iteration ... on the CS-1". On a **370³** mesh
//! the code "fail\[s\] to scale beyond 8K cores".
//!
//! Model:
//!
//! ```text
//!   t(n, P) = a·n³/P · penalty(s) + b·√P + c
//!   s       = n / P^(1/3)                 (block side per core)
//!   penalty = max(1, s_crit/s)²           (small-block inefficiency)
//! ```
//!
//! The `a` term is memory-bandwidth-bound sweep time (calibrated from the
//! 1024-core anchor — MFIX achieves an *effective* ~0.36 µs per meshpoint
//! per core-fraction, i.e. ≈0.4 GB/s of effective stream bandwidth per core,
//! far from hardware peak, consistent with the paper's HPCG discussion).
//! The `b·√P` term models the growth of collective/communication cost with
//! scale on a shared fat-tree (calibrated from the 16K anchor). The
//! small-block penalty captures halo-dominated surface work when a core's
//! block side drops under `s_crit` cells — this is what flattens the 370³
//! curve beyond 8K cores while leaving 600³ unaffected.

/// Calibrated Joule model.
#[derive(Copy, Clone, Debug)]
pub struct JouleModel {
    /// Per-point sweep time coefficient `a` (seconds per meshpoint per
    /// 1/P).
    pub a_per_point: f64,
    /// Collective scaling coefficient `b` (seconds per √core).
    pub b_sqrt_p: f64,
    /// Fixed per-iteration overhead `c` (seconds).
    pub c_fixed: f64,
    /// Block side below which surface work dominates.
    pub s_crit: f64,
}

impl Default for JouleModel {
    fn default() -> JouleModel {
        // Calibration (see module docs):
        //   75 ms = a·600³/1024 + b·32 + c
        //    6 ms = a·600³/16384 + b·128 + c
        // with c = 0.1 ms chosen small; solve for a and b.
        let n3 = 600f64.powi(3);
        let c = 1.0e-4;
        // b·128 − b·32·(1/16) ... solve the 2×2 system directly:
        //   a·n3/1024  + 32·b = 0.075 − c
        //   a·n3/16384 + 128·b = 0.006 − c
        let (r1, r2) = (0.075 - c, 0.006 - c);
        // From the two equations:
        let b = (r2 - r1 / 16.0) / (128.0 - 2.0);
        let a = (r1 - 32.0 * b) * 1024.0 / n3;
        JouleModel { a_per_point: a, b_sqrt_p: b, c_fixed: c, s_crit: 20.0 }
    }
}

impl JouleModel {
    /// Block side per core for mesh `n³` on `p` cores.
    pub fn block_side(&self, n: usize, p: usize) -> f64 {
        n as f64 / (p as f64).cbrt()
    }

    /// Small-block penalty factor (≥ 1).
    pub fn penalty(&self, n: usize, p: usize) -> f64 {
        let s = self.block_side(n, p);
        (self.s_crit / s).max(1.0).powi(2)
    }

    /// Time per BiCGStab iteration (seconds) for an `n³` mesh on `p` cores.
    pub fn time_per_iteration(&self, n: usize, p: usize) -> f64 {
        let n3 = (n as f64).powi(3);
        self.a_per_point * n3 / p as f64 * self.penalty(n, p)
            + self.b_sqrt_p * (p as f64).sqrt()
            + self.c_fixed
    }

    /// A scaling curve over core counts (the x-axes of Figs. 7–8).
    pub fn scaling_curve(&self, n: usize, cores: &[usize]) -> Vec<(usize, f64)> {
        cores.iter().map(|&p| (p, self.time_per_iteration(n, p))).collect()
    }

    /// The core counts the paper sweeps (1024 … 16384).
    pub fn paper_core_counts() -> Vec<usize> {
        vec![1024, 2048, 4096, 8192, 16384]
    }

    /// Parallel speedup of `p` cores over `p0` cores at mesh `n³`.
    pub fn speedup(&self, n: usize, p0: usize, p: usize) -> f64 {
        self.time_per_iteration(n, p0) / self.time_per_iteration(n, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_reproduced() {
        let m = JouleModel::default();
        let t1024 = m.time_per_iteration(600, 1024);
        let t16k = m.time_per_iteration(600, 16384);
        assert!((t1024 - 0.075).abs() / 0.075 < 0.02, "75 ms anchor: {t1024}");
        assert!((t16k - 0.006).abs() / 0.006 < 0.02, "6 ms anchor: {t16k}");
    }

    #[test]
    fn cs1_is_about_214x_faster_on_600_cubed() {
        let m = JouleModel::default();
        let t16k = m.time_per_iteration(600, 16384);
        let ratio = t16k / 28.1e-6;
        assert!((170.0..260.0).contains(&ratio), "paper: about 214×; model gives {ratio:.0}×");
    }

    #[test]
    fn small_mesh_stops_scaling_beyond_8k() {
        let m = JouleModel::default();
        let t8k = m.time_per_iteration(370, 8192);
        let t16k = m.time_per_iteration(370, 16384);
        // "The failure to scale beyond 8K cores on the smaller mesh":
        // doubling cores buys (essentially) nothing.
        assert!(t16k > t8k * 0.9, "370³ must not speed up meaningfully past 8K: {t8k} -> {t16k}");
        // While the larger mesh still gains.
        let b8k = m.time_per_iteration(600, 8192);
        let b16k = m.time_per_iteration(600, 16384);
        assert!(b16k < b8k * 0.75, "600³ still scales: {b8k} -> {b16k}");
    }

    #[test]
    fn scaling_curve_is_monotone_for_large_mesh() {
        let m = JouleModel::default();
        let curve = m.scaling_curve(600, &JouleModel::paper_core_counts());
        for w in curve.windows(2) {
            assert!(w[1].1 < w[0].1, "600³ monotone down: {curve:?}");
        }
    }

    #[test]
    fn penalty_only_hits_small_blocks() {
        let m = JouleModel::default();
        assert_eq!(m.penalty(600, 16384), 1.0, "600³ blocks are 23.6 wide");
        assert!(m.penalty(370, 16384) > 1.5, "370³ blocks are 14.5 wide");
        assert!(m.block_side(370, 16384) < m.s_crit);
    }

    #[test]
    fn speedup_helper() {
        let m = JouleModel::default();
        let s = m.speedup(600, 1024, 16384);
        assert!((10.0..14.0).contains(&s), "75/6 = 12.5x: {s}");
    }
}
