//! Memory-capacity frontier and the §VIII use cases.
//!
//! §VIII.B: "A technology shrink from the 16 nm to 7 nm technology node will
//! provide about 40 GB of SRAM on the wafer and further increases (to 50 GB
//! at 5 nm) will follow." This module models which problems fit each
//! generation, and quantifies the three §VIII.B campaign use cases — wind
//! turbine design optimization (Madsen et al.), the 1,505-run carbon-capture
//! UQ campaign (Xu et al.), and the 83-hour ship-hull CFD case (Jasak et
//! al.) — under the §VI.A CS-1 rate versus a conventional cluster.

use crate::cs1::Cs1Model;
use crate::mfix::MfixProjection;

/// One wafer generation.
#[derive(Copy, Clone, Debug)]
pub struct WaferGeneration {
    /// Marketing name / node.
    pub name: &'static str,
    /// Total on-wafer SRAM in GiB.
    pub sram_gib: f64,
    /// Cores (kept at the CS-1 count for the paper's projections).
    pub cores: usize,
}

/// The generations the paper names: CS-1 at 16 nm, then 7 nm and 5 nm.
pub fn generations() -> [WaferGeneration; 3] {
    [
        WaferGeneration { name: "CS-1 (16 nm)", sram_gib: 18.0, cores: 380_000 },
        WaferGeneration { name: "7 nm shrink", sram_gib: 40.0, cores: 380_000 },
        WaferGeneration { name: "5 nm shrink", sram_gib: 50.0, cores: 380_000 },
    ]
}

impl WaferGeneration {
    /// Bytes of SRAM per core.
    pub fn bytes_per_core(&self) -> f64 {
        self.sram_gib * (1u64 << 30) as f64 / self.cores as f64
    }

    /// Largest Z per core for the BiCGStab 3D mapping (10 Z fp16 words of
    /// solver data plus ~1 KB of code/FIFO overhead per core).
    pub fn max_z(&self) -> usize {
        ((self.bytes_per_core() - 1024.0) / (10.0 * 2.0)) as usize
    }

    /// Largest cubic mesh edge `n` such that an `n × n × n` problem fits a
    /// `600 × 600`-ish fabric footprint (x, y ≤ fabric; z ≤ max_z).
    pub fn max_cubic_mesh(&self, fabric_edge: usize) -> usize {
        fabric_edge.min(self.max_z())
    }

    /// Total solvable mesh points under the 3D mapping.
    pub fn max_points(&self, fabric_w: usize, fabric_h: usize) -> u64 {
        (fabric_w as u64) * (fabric_h as u64) * self.max_z() as u64
    }
}

/// A §VIII.B campaign use case.
#[derive(Copy, Clone, Debug)]
pub struct Campaign {
    /// Name, as cited by the paper.
    pub name: &'static str,
    /// Number of (sequential, for optimization; independent, for UQ)
    /// simulations.
    pub runs: u32,
    /// Mesh cells per simulation.
    pub cells: u64,
    /// Simulated time steps per run.
    pub steps_per_run: u32,
    /// `true` if the runs must execute sequentially (optimization loops).
    pub sequential: bool,
}

/// The paper's three §VIII.B examples, with representative magnitudes.
pub fn paper_campaigns() -> [Campaign; 3] {
    [
        // Madsen et al.: 14–50 M cells, hundreds-to-thousands of sequential
        // simulations for shape optimization.
        Campaign {
            name: "wind-turbine shape optimization",
            runs: 500,
            cells: 14_000_000,
            steps_per_run: 20_000,
            sequential: true,
        },
        // Xu et al.: 1,505 simulations, each ~600 s of simulated time.
        Campaign {
            name: "carbon-capture UQ (1505 runs)",
            runs: 1505,
            cells: 1_000_000,
            steps_per_run: 60_000,
            sequential: false,
        },
        // Jasak et al.: 11.7 M cells, 83 h on an engineering cluster.
        Campaign {
            name: "ship self-propulsion CFD",
            runs: 1,
            cells: 11_700_000,
            steps_per_run: 100_000,
            sequential: true,
        },
    ]
}

/// Time for one campaign on the CS-1, using the §VI.A SIMPLE rate scaled to
/// the campaign's cell count (rate ∝ 1/Z at fixed fabric ⇒ ∝ 1/cells with
/// the x–y footprint pinned at the fabric).
pub fn campaign_hours_cs1(c: &Campaign) -> f64 {
    let proj = MfixProjection::default().project();
    // steps/s at 600³ = 2.16e8 cells; scale inversely with cells.
    let base_cells = 600f64.powi(3);
    let steps_per_sec = 0.5
        * (proj.steps_per_sec_low + proj.steps_per_sec_high)
        * (base_cells / c.cells as f64).min(50.0);
    (c.runs as f64 * c.steps_per_run as f64 / steps_per_sec) / 3600.0
}

/// Time for the same campaign on a 16,384-core cluster partition (the
/// §VI.A comparison point: the CS-1 runs >200× faster per step).
pub fn campaign_hours_cluster(c: &Campaign) -> f64 {
    let proj = MfixProjection::default().project();
    campaign_hours_cs1(c) * proj.speedup_vs_joule
}

/// The largest BiCGStab problem fitting each generation (summary rows).
pub fn capacity_table(model: &Cs1Model) -> Vec<(WaferGeneration, usize, u64)> {
    generations()
        .into_iter()
        .map(|g| {
            let z = g.max_z();
            let pts = g.max_points(model.fabric_w, model.fabric_h);
            (g, z, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs1_generation_matches_known_limits() {
        let g = generations()[0];
        assert!((g.bytes_per_core() - 48.0 * 1024.0).abs() < 4096.0, "~48 KB/core");
        // Paper Z = 1536 fits, with headroom to ~2.3k.
        assert!(g.max_z() > 1536);
        assert!(g.max_z() < 3000);
    }

    #[test]
    fn shrinks_grow_capacity_monotonically() {
        let gens = generations();
        assert!(gens[1].max_z() > 2 * gens[0].max_z());
        assert!(gens[2].max_z() > gens[1].max_z());
        // 7 nm: "about 40 GB" supports Z over 5000.
        assert!(gens[1].max_z() > 5000);
    }

    #[test]
    fn max_points_scale_with_sram() {
        let m = Cs1Model::default();
        let rows = capacity_table(&m);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].2 > rows[0].2 * 2);
        // CS-1: 600²×1536-class problems ≈ 0.55–0.9 G points.
        assert!(rows[0].2 > 500_000_000);
    }

    #[test]
    fn campaigns_are_tractable_on_wafer_and_not_on_cluster() {
        for c in paper_campaigns() {
            let wafer = campaign_hours_cs1(&c);
            let cluster = campaign_hours_cluster(&c);
            assert!(wafer > 0.0 && wafer.is_finite());
            assert!(
                cluster > 100.0 * wafer,
                "{}: cluster {cluster:.1} h vs wafer {wafer:.1} h",
                c.name
            );
        }
        // The ship case: tens of hours on a cluster-class machine (paper:
        // 83 h on an engineering system), well under an hour per run-hour
        // equivalent on the wafer.
        let ship = paper_campaigns()[2];
        assert!(campaign_hours_cs1(&ship) < campaign_hours_cluster(&ship) / 200.0);
    }
}
