//! The CS-1 machine model and the BiCGStab per-iteration cycle model.
//!
//! Machine facts from the paper: ~380,000 cores at 48 KB SRAM each (18 GB),
//! "up to eight 16-bit floating point operations per cycle" per core,
//! "16 bytes of read and 8 bytes of write bandwidth to the memory per
//! cycle", a 602×595 compute fabric on the experiment system, total power
//! 20 kW. The clock is not stated; **0.9 GHz** is inferred jointly from
//! three published numbers — 0.86 PFLOPS being "about one third" of peak on
//! 357,000 used cores, the sub-1.5 µs AllReduce over a ~1197-hop diameter,
//! and the 28.1 µs iteration — and all three reproduce within ten percent
//! under it.
//!
//! The per-iteration cycle model mirrors the kernel inventory (2 SpMVs,
//! 4 dots, 6 AXPYs, plus reductions); the per-element slopes are calibrated
//! against `wse-arch` runs on small fabrics and the fixed offsets cover task
//! scheduling and pipeline fill.

use crate::allreduce::AllReduceModel;

/// Machine and calibration parameters.
#[derive(Copy, Clone, Debug)]
pub struct Cs1Model {
    /// Clock frequency in GHz (inferred; see module docs).
    pub clock_ghz: f64,
    /// Usable compute fabric width (the experiment machine: 602).
    pub fabric_w: usize,
    /// Usable compute fabric height (595).
    pub fabric_h: usize,
    /// Peak fp16 flops per core per cycle (SIMD-4 FMAC).
    pub peak_flops_per_core_cycle: f64,
    /// Total system power in kW (paper: 20).
    pub power_kw: f64,
    /// SpMV cycles per Z element (simulator-calibrated; ideal datapath
    /// bound is 3.0, measured ≈ 3.8 with thread interleave overhead).
    pub spmv_cycles_per_z: f64,
    /// Fixed SpMV cycles (launch, fill, completion tree).
    pub spmv_fixed: f64,
    /// Dot-product cycles per element (mixed MAC: 2 elements/cycle).
    pub dot_cycles_per_z: f64,
    /// Fixed per-dot overhead.
    pub dot_fixed: f64,
    /// AXPY/XPAY cycles per element (SIMD-4).
    pub axpy_cycles_per_z: f64,
    /// Fixed per-update overhead.
    pub axpy_fixed: f64,
    /// The AllReduce latency model.
    pub allreduce: AllReduceModel,
}

impl Default for Cs1Model {
    fn default() -> Cs1Model {
        Cs1Model {
            clock_ghz: 0.9,
            fabric_w: 602,
            fabric_h: 595,
            peak_flops_per_core_cycle: 8.0,
            power_kw: 20.0,
            spmv_cycles_per_z: 3.8,
            spmv_fixed: 30.0,
            dot_cycles_per_z: 0.5,
            dot_fixed: 10.0,
            axpy_cycles_per_z: 0.25,
            axpy_fixed: 8.0,
            allreduce: AllReduceModel::default(),
        }
    }
}

/// A per-iteration prediction.
#[derive(Copy, Clone, Debug)]
pub struct IterationPrediction {
    /// Cycles in the two SpMVs.
    pub spmv_cycles: f64,
    /// Cycles in the four local dots.
    pub dot_cycles: f64,
    /// Cycles in the six vector updates.
    pub update_cycles: f64,
    /// Cycles in the four AllReduce rounds.
    pub allreduce_cycles: f64,
    /// Total cycles.
    pub total_cycles: f64,
    /// Wall time in microseconds.
    pub time_us: f64,
    /// Achieved floating-point rate in PFLOPS (44 ops/meshpoint, Table I).
    pub pflops: f64,
    /// Fraction of the used cores' peak.
    pub utilization: f64,
}

impl Cs1Model {
    /// Total cores on the usable fabric.
    pub fn cores(&self) -> usize {
        self.fabric_w * self.fabric_h
    }

    /// Peak fp16 PFLOPS of `cores` cores.
    pub fn peak_pflops(&self, cores: usize) -> f64 {
        cores as f64 * self.peak_flops_per_core_cycle * self.clock_ghz * 1e9 / 1e15
    }

    /// Predicts one BiCGStab iteration for an `mx × my × z` mesh mapped to
    /// an `mx × my` fabric region (the reduction spans the full machine, as
    /// on the real system).
    pub fn predict_iteration(&self, mx: usize, my: usize, z: usize) -> IterationPrediction {
        assert!(mx <= self.fabric_w && my <= self.fabric_h, "mesh exceeds fabric");
        let zf = z as f64;
        let spmv = 2.0 * (self.spmv_cycles_per_z * zf + self.spmv_fixed);
        let dot = 4.0 * (self.dot_cycles_per_z * zf + self.dot_fixed);
        let update = 6.0 * (self.axpy_cycles_per_z * zf + self.axpy_fixed);
        let allreduce = 4.0 * self.allreduce.cycles(self.fabric_w, self.fabric_h);
        let total = spmv + dot + update + allreduce;
        let time_us = total / (self.clock_ghz * 1e3);
        let points = (mx * my * z) as f64;
        let flops = 44.0 * points; // Table I
        let pflops = flops / (time_us * 1e-6) / 1e15;
        let utilization = pflops / self.peak_pflops(mx * my);
        IterationPrediction {
            spmv_cycles: spmv,
            dot_cycles: dot,
            update_cycles: update,
            allreduce_cycles: allreduce,
            total_cycles: total,
            time_us,
            pflops,
            utilization,
        }
    }

    /// The paper's headline configuration: 600 × 595 × 1536.
    pub fn predict_headline(&self) -> IterationPrediction {
        self.predict_iteration(600, 595, 1536)
    }

    /// Prediction under the **fused ω-reduction** variant: the `(q,y)` and
    /// `(y,y)` reductions share one round over two concurrent networks.
    /// Measured on the simulator, the combined round costs about 1.5× a
    /// single round (center-port contention), so the iteration spends
    /// `3.5×` rather than `4×` the AllReduce latency.
    pub fn predict_iteration_fused(&self, mx: usize, my: usize, z: usize) -> IterationPrediction {
        let mut p = self.predict_iteration(mx, my, z);
        let round = self.allreduce.cycles(self.fabric_w, self.fabric_h);
        let saved = 0.5 * round;
        p.allreduce_cycles -= saved;
        p.total_cycles -= saved;
        p.time_us = p.total_cycles / (self.clock_ghz * 1e3);
        let flops = 44.0 * (mx * my * z) as f64;
        p.pflops = flops / (p.time_us * 1e-6) / 1e15;
        p.utilization = p.pflops / self.peak_pflops(mx * my);
        p
    }

    /// Prediction for a fully **communication-hiding** variant (pipelined
    /// BiCGStab): reductions overlap the SpMVs and only surface when longer
    /// than the compute they hide — at the paper's Z the SpMV is far longer
    /// than a reduction, so the AllReduce term vanishes entirely.
    pub fn predict_iteration_pipelined(
        &self,
        mx: usize,
        my: usize,
        z: usize,
    ) -> IterationPrediction {
        let mut p = self.predict_iteration(mx, my, z);
        let hidden = p.allreduce_cycles.min(p.spmv_cycles);
        p.allreduce_cycles -= hidden;
        p.total_cycles -= hidden;
        p.time_us = p.total_cycles / (self.clock_ghz * 1e3);
        let flops = 44.0 * (mx * my * z) as f64;
        p.pflops = flops / (p.time_us * 1e-6) / 1e15;
        p.utilization = p.pflops / self.peak_pflops(mx * my);
        p
    }

    /// Performance per watt (PFLOPS per kW) for a prediction.
    pub fn pflops_per_kw(&self, p: &IterationPrediction) -> f64 {
        p.pflops / self.power_kw
    }

    /// Predicted time per iteration for alternative mesh shapes (the
    /// paper's "effect of changing mesh size and shape").
    pub fn shape_sweep(
        &self,
        shapes: &[(usize, usize, usize)],
    ) -> Vec<(usize, usize, usize, IterationPrediction)> {
        shapes.iter().map(|&(x, y, z)| (x, y, z, self.predict_iteration(x, y, z))).collect()
    }

    /// Calibrates the per-element slopes from simulator measurements:
    /// `(z, spmv_cycles)` pairs from two or more runs (least squares line).
    pub fn calibrate_spmv(&mut self, samples: &[(usize, u64)]) {
        assert!(samples.len() >= 2, "need at least two samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(z, _)| z as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, c)| c as f64).sum();
        let sxx: f64 = samples.iter().map(|&(z, _)| (z as f64) * (z as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(z, c)| z as f64 * c as f64).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        self.spmv_cycles_per_z = slope;
        self.spmv_fixed = intercept.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_within_tolerance() {
        let m = Cs1Model::default();
        let p = m.predict_headline();
        // Paper: 28.1 µs per iteration, 0.86 PFLOPS, ~1/3 of peak.
        assert!(
            (p.time_us - 28.1).abs() / 28.1 < 0.15,
            "time {:.1} µs vs paper 28.1 µs",
            p.time_us
        );
        assert!((p.pflops - 0.86).abs() / 0.86 < 0.15, "rate {:.3} PFLOPS vs paper 0.86", p.pflops);
        assert!(
            (0.25..0.45).contains(&p.utilization),
            "utilization {:.2} should be about one third",
            p.utilization
        );
    }

    #[test]
    fn peak_is_about_2_5_pflops() {
        let m = Cs1Model::default();
        let peak = m.peak_pflops(600 * 595);
        assert!((2.0..3.2).contains(&peak), "peak {peak}");
    }

    #[test]
    fn spmv_dominates_the_iteration() {
        let p = Cs1Model::default().predict_headline();
        assert!(p.spmv_cycles > p.dot_cycles);
        assert!(p.spmv_cycles > p.update_cycles);
        assert!(p.spmv_cycles > p.allreduce_cycles);
        assert!(p.spmv_cycles / p.total_cycles > 0.4);
    }

    #[test]
    fn smaller_z_shifts_balance_toward_allreduce() {
        let m = Cs1Model::default();
        let big = m.predict_iteration(600, 595, 1536);
        let small = m.predict_iteration(600, 595, 64);
        assert!(
            small.allreduce_cycles / small.total_cycles > big.allreduce_cycles / big.total_cycles
        );
        assert!(small.utilization < big.utilization, "small problems waste the machine");
    }

    #[test]
    fn shape_sweep_covers_inputs() {
        let m = Cs1Model::default();
        let out = m.shape_sweep(&[(100, 100, 100), (600, 595, 1536)]);
        assert_eq!(out.len(), 2);
        assert!(out[1].3.time_us > out[0].3.time_us * 0.9); // same allreduce floor
    }

    #[test]
    fn calibration_fits_a_line() {
        let mut m = Cs1Model::default();
        // Synthetic measurements on the line 4z + 100.
        m.calibrate_spmv(&[(64, 356), (256, 1124), (1024, 4196)]);
        assert!((m.spmv_cycles_per_z - 4.0).abs() < 1e-6);
        assert!((m.spmv_fixed - 100.0).abs() < 1e-6);
    }

    #[test]
    fn perf_per_watt_is_finite_and_positive() {
        let m = Cs1Model::default();
        let p = m.predict_headline();
        let ppw = m.pflops_per_kw(&p);
        assert!(ppw > 0.0 && ppw.is_finite());
        // ~0.86 PFLOPS at 20 kW → ~43 TFLOPS/kW.
        assert!((0.03..0.06).contains(&ppw), "PFLOPS/kW {ppw}");
    }
}
