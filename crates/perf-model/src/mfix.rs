//! Table II cycle accounting and the §VI.A MFIX-on-CS-1 projection.
//!
//! Table II estimates "cycles per meshpoint for SIMPLE, excluding the
//! solver". §VI.A combines it with solver costs: "the number of simple
//! iterations ranges from 5-20 per time step, the linear solver is limited
//! to 5 iterations for transport equations and 20 for continuity", and
//! concludes "the wall time per time step was estimated to be roughly two
//! microseconds per Z meshpoint. Assuming a problem size of 600x600x600 and
//! 15 simple iterations per time step, ... we expect to achieve between 80
//! and 125 timesteps per second", "above 200 times faster than ... a
//! 16,384-core partition of the NETL Joule cluster".

use crate::cluster::JouleModel;
use crate::cs1::Cs1Model;

/// One row of Table II: cycles per meshpoint, as a low–high range.
#[derive(Copy, Clone, Debug)]
pub struct Table2Row {
    /// Step name.
    pub step: &'static str,
    /// Merge cycles (low, high).
    pub merge: (f64, f64),
    /// FLOP cycles (low, high).
    pub flop: (f64, f64),
    /// Square-root cycles.
    pub sqrt: (f64, f64),
    /// Divide cycles.
    pub div: (f64, f64),
    /// Neighbor-transport cycles.
    pub transport: (f64, f64),
    /// Published totals (low, high).
    pub total: (f64, f64),
}

/// The paper's Table II, verbatim.
pub fn paper_table2() -> [Table2Row; 4] {
    [
        Table2Row {
            step: "Initialization",
            merge: (2.0, 9.0),
            flop: (35.0, 47.0),
            sqrt: (0.0, 0.0),
            div: (0.0, 0.0),
            transport: (8.0, 8.0),
            total: (45.0, 64.0),
        },
        Table2Row {
            step: "Momentum",
            merge: (25.0, 153.0),
            flop: (18.0, 25.0),
            sqrt: (13.0, 13.0),
            div: (15.0, 16.0),
            transport: (6.0, 6.0),
            total: (79.0, 213.0),
        },
        Table2Row {
            step: "Continuity",
            merge: (8.0, 45.0),
            flop: (13.0, 18.0),
            sqrt: (0.0, 0.0),
            div: (15.0, 16.0),
            transport: (2.0, 2.0),
            total: (37.0, 81.0),
        },
        Table2Row {
            step: "Field Update",
            merge: (0.0, 0.0),
            flop: (3.0, 5.0),
            sqrt: (0.0, 0.0),
            div: (0.0, 0.0),
            transport: (1.0, 1.0),
            total: (4.0, 6.0),
        },
    ]
}

/// Converts instrumented operation counts (from the `cfd` crate) to cycles
/// per meshpoint, using per-class cycle costs representative of the tile
/// datapath: SIMD-4 for flops and merges, pipelined transport, long-latency
/// divide and square root.
#[derive(Copy, Clone, Debug)]
pub struct CycleCosts {
    /// Cycles per merge (SIMD select).
    pub merge: f64,
    /// Cycles per add/sub/mul.
    pub flop: f64,
    /// Cycles per square root.
    pub sqrt: f64,
    /// Cycles per divide.
    pub div: f64,
    /// Cycles per neighbor transport.
    pub transport: f64,
}

impl Default for CycleCosts {
    fn default() -> CycleCosts {
        CycleCosts { merge: 0.25, flop: 0.25, sqrt: 4.0, div: 4.0, transport: 0.5 }
    }
}

impl CycleCosts {
    /// Cycles per point for a set of per-point class counts.
    pub fn cycles(&self, merge: f64, flop: f64, sqrt: f64, div: f64, transport: f64) -> f64 {
        merge * self.merge
            + flop * self.flop
            + sqrt * self.sqrt
            + div * self.div
            + transport * self.transport
    }
}

/// §VI.A projection inputs.
#[derive(Copy, Clone, Debug)]
pub struct MfixProjection {
    /// The machine.
    pub machine: Cs1Model,
    /// Mesh edge (the paper assumes 600³).
    pub n: usize,
    /// SIMPLE iterations per time step (paper assumes 15).
    pub simple_iters: usize,
    /// BiCGStab iterations per momentum solve (paper: 5), three solves.
    pub momentum_solver_iters: usize,
    /// BiCGStab iterations for the continuity solve (paper: 20).
    pub continuity_solver_iters: usize,
}

impl Default for MfixProjection {
    fn default() -> MfixProjection {
        MfixProjection {
            machine: Cs1Model::default(),
            n: 600,
            simple_iters: 15,
            momentum_solver_iters: 5,
            continuity_solver_iters: 20,
        }
    }
}

/// Projection output.
#[derive(Copy, Clone, Debug)]
pub struct MfixRate {
    /// Time steps per second, using Table II's low cycle estimates.
    pub steps_per_sec_high: f64,
    /// Time steps per second, using Table II's high cycle estimates.
    pub steps_per_sec_low: f64,
    /// Wall microseconds per Z meshpoint per SIMPLE iteration (low, high)
    /// — the paper's "roughly two microseconds per Z meshpoint" figure.
    pub us_per_z_point: (f64, f64),
    /// Speedup over the 16,384-core Joule cluster (low end).
    pub speedup_vs_joule: f64,
}

impl MfixProjection {
    /// Solver cycles per meshpoint per BiCGStab iteration, from the CS-1
    /// iteration model.
    fn solver_cycles_per_point(&self) -> f64 {
        let p = self.machine.predict_iteration(self.n, self.n.min(595), 1536);
        // Normalize to per-meshpoint: cycles / Z.
        p.total_cycles / 1536.0
    }

    /// Runs the projection.
    pub fn project(&self) -> MfixRate {
        let t2 = paper_table2();
        let form_low: f64 = t2[0].total.0 + 3.0 * t2[1].total.0 + t2[2].total.0 + t2[3].total.0;
        let form_high: f64 = t2[0].total.1 + 3.0 * t2[1].total.1 + t2[2].total.1 + t2[3].total.1;
        let solver_iters = 3 * self.momentum_solver_iters + self.continuity_solver_iters;
        let solve = solver_iters as f64 * self.solver_cycles_per_point();
        let per_point_per_simple_low = form_low + solve;
        let per_point_per_simple_high = form_high + solve;

        let hz = self.machine.clock_ghz * 1e9;
        let z = self.n as f64;
        let step_time =
            |cyc_per_point: f64| -> f64 { self.simple_iters as f64 * z * cyc_per_point / hz };
        let t_low = step_time(per_point_per_simple_low); // faster
        let t_high = step_time(per_point_per_simple_high);

        // Joule comparison: the cluster spends its per-iteration time on
        // each of the same solver iterations; forms are bandwidth-bound
        // sweeps we fold in with a 40% overhead (the paper: forms are
        // "30 to 50 percent of the operation count").
        let joule = JouleModel::default();
        let t_joule_step = 1.4
            * self.simple_iters as f64
            * solver_iters as f64
            * joule.time_per_iteration(self.n, 16384);

        MfixRate {
            steps_per_sec_high: 1.0 / t_low,
            steps_per_sec_low: 1.0 / t_high,
            us_per_z_point: (
                1e6 * per_point_per_simple_low / hz,
                1e6 * per_point_per_simple_high / hz,
            ),
            speedup_vs_joule: t_joule_step / t_high,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_are_consistent() {
        for row in paper_table2() {
            let low = row.merge.0 + row.flop.0 + row.sqrt.0 + row.div.0 + row.transport.0;
            let high = row.merge.1 + row.flop.1 + row.sqrt.1 + row.div.1 + row.transport.1;
            // The published Momentum low total (79) exceeds its column sum
            // (77) by 2 — reproduce the table as printed, tolerate the gap.
            assert!(
                (low - row.total.0).abs() <= 2.0,
                "{}: {} vs published {}",
                row.step,
                low,
                row.total.0
            );
            assert!(
                (high - row.total.1).abs() <= 1.0,
                "{}: {} vs published {}",
                row.step,
                high,
                row.total.1
            );
        }
    }

    #[test]
    fn projection_lands_in_the_papers_band() {
        let rate = MfixProjection::default().project();
        // Paper: "between 80 and 125 timesteps per second". Allow the model
        // a generous envelope around that band.
        assert!(
            rate.steps_per_sec_low > 50.0 && rate.steps_per_sec_high < 220.0,
            "projection [{:.0}, {:.0}] steps/s",
            rate.steps_per_sec_low,
            rate.steps_per_sec_high
        );
        assert!(
            rate.steps_per_sec_low < 125.0 && rate.steps_per_sec_high > 80.0,
            "band must overlap the paper's 80–125: [{:.0}, {:.0}]",
            rate.steps_per_sec_low,
            rate.steps_per_sec_high
        );
    }

    #[test]
    fn us_per_z_point_is_order_two() {
        let rate = MfixProjection::default().project();
        // "roughly two microseconds per Z meshpoint": our model gives
        // ~0.9–1.5 µs per Z point per SIMPLE iteration — same order.
        assert!(
            rate.us_per_z_point.0 > 0.3 && rate.us_per_z_point.1 < 5.0,
            "µs per Z point: {:?}",
            rate.us_per_z_point
        );
    }

    #[test]
    fn speedup_vs_joule_exceeds_200() {
        let rate = MfixProjection::default().project();
        assert!(
            rate.speedup_vs_joule > 200.0,
            "paper claims above 200×, model gives {:.0}×",
            rate.speedup_vs_joule
        );
    }
}
