//! The HPCG-efficiency framing of the paper's introduction.
//!
//! "on the high-performance conjugate gradient (HPCG) benchmark, the top 20
//! performing supercomputers achieve only 0.5% - 3.1% of their peak floating
//! point performance" — because stencil/Krylov kernels are bandwidth-bound.
//! This module derives the roofline efficiency of a CG/BiCGStab sweep from a
//! machine's balance point, reproducing that 0.5–3% band for the reference
//! CPUs and the ~35% figure for the CS-1.

use crate::balance::{cs1_balance, reference_machines, BalancePoint};

/// Arithmetic intensity of the BiCGStab sweep in flops per *word* of
/// memory traffic.
///
/// Per meshpoint per iteration: 44 flops (Table I) against roughly 16 words
/// of traffic — six matrix diagonals read twice (two SpMVs) plus ~8 reads
/// and ~4 writes of iteration vectors (with some cache reuse of `x` across
/// the stencil) — i.e. an intensity of order 44/16 ≈ 2.75 flops/word.
pub fn bicgstab_intensity_flops_per_word() -> f64 {
    44.0 / 16.0
}

/// Roofline efficiency of a bandwidth-bound kernel of the given intensity
/// on a machine with `flops_per_mem_word` balance: `min(1, I / B)`.
pub fn roofline_efficiency(machine: &BalancePoint, intensity: f64) -> f64 {
    (intensity / machine.flops_per_mem_word).min(1.0)
}

/// Efficiency of the BiCGStab/HPCG-class sweep on each reference machine
/// and the CS-1.
pub fn efficiency_table() -> Vec<(&'static str, f64)> {
    let intensity = bicgstab_intensity_flops_per_word();
    let mut rows: Vec<(&'static str, f64)> = reference_machines()
        .into_iter()
        .map(|m| (m.name, roofline_efficiency(&m, intensity)))
        .collect();
    let c = cs1_balance();
    rows.push((c.name, roofline_efficiency(&c, intensity)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_cpus_land_in_the_hpcg_band() {
        // The paper: top HPCG machines achieve 0.5%–3.1% of peak. Our
        // roofline for the 2014+ CPU/GPU entries (balance ≥ 60 flops/word)
        // should land within an order of that band (the roofline is an
        // upper bound; real HPCG loses more to latency and irregularity).
        let intensity = bicgstab_intensity_flops_per_word();
        for m in reference_machines() {
            if m.year >= 2014 {
                let e = roofline_efficiency(&m, intensity);
                assert!((0.005..0.08).contains(&e), "{}: roofline efficiency {e}", m.name);
            }
        }
    }

    #[test]
    fn cs1_is_compute_bound_not_bandwidth_bound() {
        let e = roofline_efficiency(&cs1_balance(), bicgstab_intensity_flops_per_word());
        assert_eq!(e, 1.0, "memory cannot limit the CS-1 on this kernel");
        // The measured ~35% of peak therefore comes from datapath mix and
        // communication, not memory bandwidth — the paper's §V analysis.
    }

    #[test]
    fn table_covers_all_machines() {
        let t = efficiency_table();
        assert_eq!(t.len(), reference_machines().len() + 1);
        assert!(t.iter().any(|(n, _)| n.contains("CS-1")));
    }
}
