//! Multi-wafer clustering — §VIII.B's closing direction: "Solutions
//! involving the clustering, with sufficient bandwidth, of several
//! wafer-scale systems is certainly a possibility."
//!
//! Model: `k` wafers tile the mesh along X. Each inter-wafer interface
//! crosses a Y×Z plane of the mesh twice per BiCGStab iteration (once per
//! SpMV), in fp16; the global reduction pays extra off-wafer latency per
//! hop between wafers. The model answers the §VIII.B question directly:
//! *how much* inter-wafer bandwidth is "sufficient"?

use crate::cs1::Cs1Model;

/// Multi-wafer configuration.
#[derive(Copy, Clone, Debug)]
pub struct MultiWafer {
    /// The per-wafer machine.
    pub wafer: Cs1Model,
    /// Number of wafers, tiled along the mesh X axis.
    pub k: usize,
    /// Inter-wafer link bandwidth per interface, GB/s.
    pub link_gb_s: f64,
    /// One-way inter-wafer message latency, µs.
    pub link_latency_us: f64,
}

impl Default for MultiWafer {
    fn default() -> MultiWafer {
        MultiWafer { wafer: Cs1Model::default(), k: 2, link_gb_s: 1000.0, link_latency_us: 0.2 }
    }
}

/// One prediction row.
#[derive(Copy, Clone, Debug)]
pub struct MultiWaferPrediction {
    /// Wafers.
    pub k: usize,
    /// Mesh solved (x-extent grows with k).
    pub mesh: (usize, usize, usize),
    /// Time per iteration, µs.
    pub time_us: f64,
    /// Aggregate PFLOPS.
    pub pflops: f64,
    /// Parallel efficiency vs. one wafer on 1/k of the mesh.
    pub efficiency: f64,
}

impl MultiWafer {
    /// Predicts one BiCGStab iteration for a `(k·600) × 595 × z` mesh split
    /// across the `k` wafers (weak scaling in X) — the paper-scale shape.
    pub fn predict(&self, z: usize) -> MultiWaferPrediction {
        self.predict_mesh(600, 595, z)
    }

    /// Predicts one BiCGStab iteration for a general `(k·mx) × my × z`
    /// mesh (per-wafer slab `mx × my × z`, weak scaling in X). This is the
    /// shape the `wse-multi` simulation cross-validates against.
    pub fn predict_mesh(&self, mx: usize, my: usize, z: usize) -> MultiWaferPrediction {
        let base = self.wafer.predict_iteration(mx, my, z);
        let (halo_us, reduce_extra_us) = self.interconnect_us(my, z);
        let time_us = base.time_us + halo_us + reduce_extra_us;
        let points = (self.k * mx * my * z) as f64;
        let pflops = 44.0 * points / (time_us * 1e-6) / 1e15;
        MultiWaferPrediction {
            k: self.k,
            mesh: (self.k * mx, my, z),
            time_us,
            pflops,
            efficiency: base.time_us / time_us,
        }
    }

    /// The per-iteration interconnect terms `(halo_us, reduce_extra_us)`
    /// for a `my × z` seam plane: what the host link adds on top of the
    /// single-wafer iteration. Exposed so the simulator's measured halo
    /// and host-AllReduce cycles can be checked against the model's terms
    /// in isolation.
    pub fn interconnect_us(&self, my: usize, z: usize) -> (f64, f64) {
        if self.k <= 1 {
            return (0.0, 0.0);
        }
        // Inter-wafer halo: a my×z fp16 plane each way per SpMV, 2 SpMVs.
        let plane_bytes = my as f64 * z as f64 * 2.0;
        let halo_us = 2.0 * (self.link_latency_us + plane_bytes / (self.link_gb_s * 1e3));
        // The reduction tree crosses ⌈log₂k⌉ seam levels twice (reduce +
        // broadcast), 4 rounds per iteration.
        let levels = (self.k as f64).log2().ceil();
        let reduce_extra_us = 4.0 * 2.0 * levels * self.link_latency_us;
        (halo_us, reduce_extra_us)
    }

    /// The interconnect terms `(halo_exposed_us, reduce_us)` of the
    /// **overlapped + fused** schedule (the `wse-core` multi-wafer
    /// default): the halo term is only the wire time left exposed after
    /// hiding one `my × z` fp16 plane behind an SpMV window of
    /// `spmv_window_us` (two windows per iteration), and the reduction
    /// term is the *single* fused round-trip per iteration — 14 fp32 dot
    /// lanes up and a 7-word reply down the `⌈log₂ k⌉`-level binomial
    /// host tree — instead of [`MultiWafer::interconnect_us`]'s four
    /// scalar rounds.
    pub fn interconnect_overlapped_us(
        &self,
        my: usize,
        z: usize,
        spmv_window_us: f64,
    ) -> (f64, f64) {
        if self.k <= 1 {
            return (0.0, 0.0);
        }
        let plane_bytes = my as f64 * z as f64 * 2.0;
        let wire_us = self.link_latency_us + plane_bytes / (self.link_gb_s * 1e3);
        let halo_exposed_us = 2.0 * (wire_us - spmv_window_us).max(0.0);
        let levels = (self.k as f64).log2().ceil();
        let payload_us = (14.0 * 4.0) / (self.link_gb_s * 1e3);
        let reduce_us = 2.0 * levels * (self.link_latency_us + payload_us);
        (halo_exposed_us, reduce_us)
    }

    /// The minimum link bandwidth (GB/s) keeping weak-scaling efficiency
    /// above `target` at the given `z` (latency terms held fixed).
    pub fn required_bandwidth(&self, z: usize, target: f64) -> f64 {
        assert!((0.0..1.0).contains(&target));
        let base = self.wafer.predict_iteration(600, 595, z);
        let levels = (self.k as f64).log2().ceil();
        let reduce_extra_us = 4.0 * 2.0 * levels * self.link_latency_us;
        // efficiency = base / (base + halo + reduce_extra) >= target
        let budget_us = base.time_us / target - base.time_us - reduce_extra_us;
        let halo_latency = 2.0 * self.link_latency_us;
        let transfer_budget = (budget_us - halo_latency).max(1e-9);
        let plane_bytes = 595.0 * z as f64 * 2.0;
        2.0 * plane_bytes / (transfer_budget * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wafer_reduces_to_base_model() {
        let mw = MultiWafer { k: 1, ..Default::default() };
        let p = mw.predict(1536);
        let base = Cs1Model::default().predict_headline();
        assert!((p.time_us - base.time_us).abs() < 1e-9);
        assert!((p.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_wafers_with_good_links_stay_efficient() {
        let mw = MultiWafer::default(); // 1 TB/s, 0.2 µs
        let p = mw.predict(1536);
        assert!(p.efficiency > 0.75, "efficiency {}", p.efficiency);
        assert!(p.pflops > 1.2, "two wafers should well exceed one: {}", p.pflops);
        assert_eq!(p.mesh.0, 1200);
    }

    #[test]
    fn starved_links_destroy_scaling() {
        let mw = MultiWafer { link_gb_s: 1.0, ..Default::default() };
        let p = mw.predict(1536);
        assert!(p.efficiency < 0.5, "1 GB/s cannot feed a wafer: {}", p.efficiency);
    }

    #[test]
    fn required_bandwidth_is_self_consistent() {
        let mw = MultiWafer::default();
        let need = mw.required_bandwidth(1536, 0.9);
        // The quantitative answer to §VIII.B: "sufficient bandwidth" means
        // multi-TB/s seams for 90% weak-scaling efficiency.
        assert!(need > 1_000.0 && need < 20_000.0, "required {need} GB/s");
        // Provisioning exactly that bandwidth yields ~the target efficiency.
        let tuned = MultiWafer { link_gb_s: need, ..mw };
        let p = tuned.predict(1536);
        assert!((p.efficiency - 0.9).abs() < 0.05, "efficiency {}", p.efficiency);
    }

    #[test]
    fn overlapped_interconnect_hides_the_halo_behind_a_wide_spmv() {
        let mw = MultiWafer::default();
        let (serial_halo, serial_reduce) = mw.interconnect_us(595, 1536);
        // A paper-scale SpMV window (tens of µs) swallows the wire time
        // entirely: nothing exposed, and the fused single reduction costs
        // far less than four scalar rounds.
        let (exposed, reduce) = mw.interconnect_overlapped_us(595, 1536, 30.0);
        assert_eq!(exposed, 0.0, "wire time should hide behind a 30 µs window");
        assert!(reduce < serial_reduce / 3.0, "fused {reduce} vs serial {serial_reduce}");
        // A zero-width window degenerates to the serial halo term.
        let (all_exposed, _) = mw.interconnect_overlapped_us(595, 1536, 0.0);
        assert!((all_exposed - serial_halo).abs() < 1e-9);
        // k=1 has no seams in either schedule.
        let solo = MultiWafer { k: 1, ..mw };
        assert_eq!(solo.interconnect_overlapped_us(595, 1536, 0.0), (0.0, 0.0));
    }

    #[test]
    fn overlapped_exposure_is_monotone_in_window_width() {
        let mw = MultiWafer { link_gb_s: 10.0, ..Default::default() };
        let mut prev = f64::INFINITY;
        for window in [0.0, 5.0, 50.0, 500.0] {
            let (exposed, _) = mw.interconnect_overlapped_us(595, 1536, window);
            assert!(exposed <= prev, "wider window must expose less: {exposed} > {prev}");
            prev = exposed;
        }
        assert_eq!(prev, 0.0, "a huge window hides even a starved link's transfer");
    }

    #[test]
    fn efficiency_degrades_gracefully_with_k() {
        let mut prev = 1.0;
        for k in [1usize, 2, 4, 8] {
            let p = MultiWafer { k, ..Default::default() }.predict(1536);
            assert!(p.efficiency <= prev + 1e-12, "monotone: {} then {}", prev, p.efficiency);
            prev = p.efficiency;
        }
        assert!(prev > 0.5, "8 wafers at 400 GB/s still worthwhile: {prev}");
    }
}
