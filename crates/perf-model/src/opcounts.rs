//! Table I: operations per meshpoint per BiCGStab iteration.

/// One row of Table I.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Kernel name with its per-iteration multiplicity.
    pub op: &'static str,
    /// Single-precision adds (pure-fp32 configuration).
    pub sp_add: u32,
    /// Single-precision multiplies.
    pub sp_mul: u32,
    /// Half-precision adds (mixed configuration).
    pub hp_add: u32,
    /// Half-precision multiplies (mixed configuration).
    pub hp_mul: u32,
    /// Single-precision adds remaining in the mixed configuration.
    pub mixed_sp_add: u32,
}

/// The paper's Table I, verbatim.
pub fn paper_table1() -> [Table1Row; 3] {
    [
        Table1Row {
            op: "Matvec (x2)",
            sp_add: 12,
            sp_mul: 12,
            hp_add: 12,
            hp_mul: 12,
            mixed_sp_add: 0,
        },
        Table1Row { op: "Dot (x4)", sp_add: 4, sp_mul: 4, hp_add: 0, hp_mul: 4, mixed_sp_add: 4 },
        Table1Row { op: "AXPY (x6)", sp_add: 6, sp_mul: 6, hp_add: 6, hp_mul: 6, mixed_sp_add: 0 },
    ]
}

/// Total operations per meshpoint per iteration (the 44 behind the 0.86
/// PFLOPS).
pub fn total_ops_per_point() -> u32 {
    paper_table1().iter().map(|r| r.sp_add + r.sp_mul).sum()
}

/// Ops per point executing in fp16 under the mixed configuration (40).
pub fn mixed_hp_ops_per_point() -> u32 {
    paper_table1().iter().map(|r| r.hp_add + r.hp_mul).sum()
}

/// Ops per point executing in fp32 under the mixed configuration (4).
pub fn mixed_sp_ops_per_point() -> u32 {
    paper_table1().iter().map(|r| r.mixed_sp_add).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        assert_eq!(total_ops_per_point(), 44);
        assert_eq!(mixed_hp_ops_per_point(), 40);
        assert_eq!(mixed_sp_ops_per_point(), 4);
        assert_eq!(mixed_hp_ops_per_point() + mixed_sp_ops_per_point(), 44);
    }

    #[test]
    fn row_structure_matches_kernel_inventory() {
        let rows = paper_table1();
        // 2 matvecs × (6 mul + 6 add) each.
        assert_eq!(rows[0].sp_mul, 12);
        // 4 dots × (1 mul + 1 add).
        assert_eq!(rows[1].sp_add, 4);
        // 6 AXPYs × (1 mul + 1 add).
        assert_eq!(rows[2].hp_mul, 6);
    }
}
