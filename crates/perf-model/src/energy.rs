//! Energy and performance-per-watt — §I's claim: "The achieved performance
//! per Watt (at 20 kW) and for the size of the machine (1/3 rack) are
//! beyond what has been reported for conventional machines on comparable
//! problems."

use crate::cluster::JouleModel;
use crate::cs1::Cs1Model;

/// Power model of the Joule-cluster partition used in the comparison.
#[derive(Copy, Clone, Debug)]
pub struct ClusterPower {
    /// Cores in the partition (the paper compares 16,384).
    pub cores: usize,
    /// Watts per core including its share of node overhead (Xeon 6148: 150 W
    /// TDP / 20 cores plus DRAM, fans, PSU losses ≈ 12 W/core).
    pub watts_per_core: f64,
    /// Interconnect + facility overhead fraction (PUE-style multiplier).
    pub overhead: f64,
}

impl Default for ClusterPower {
    fn default() -> ClusterPower {
        ClusterPower { cores: 16_384, watts_per_core: 12.0, overhead: 1.3 }
    }
}

impl ClusterPower {
    /// Total kilowatts.
    pub fn kw(&self) -> f64 {
        self.cores as f64 * self.watts_per_core * self.overhead / 1e3
    }
}

/// One machine's energy figures for a BiCGStab iteration on 600³-class
/// meshes.
#[derive(Copy, Clone, Debug)]
pub struct EnergyFigures {
    /// Machine label.
    pub name: &'static str,
    /// Power draw in kW.
    pub kw: f64,
    /// Time per iteration in seconds.
    pub time_per_iter: f64,
    /// Joules per iteration.
    pub joules_per_iter: f64,
    /// Joules per meshpoint per iteration (the fair cross-mesh unit).
    pub joules_per_point: f64,
}

/// CS-1 energy per iteration on the paper's 600×595×1536 mesh.
pub fn cs1_energy() -> EnergyFigures {
    let m = Cs1Model::default();
    let p = m.predict_headline();
    let t = p.time_us * 1e-6;
    let joules = m.power_kw * 1e3 * t;
    EnergyFigures {
        name: "CS-1 (20 kW)",
        kw: m.power_kw,
        time_per_iter: t,
        joules_per_iter: joules,
        joules_per_point: joules / (600.0 * 595.0 * 1536.0),
    }
}

/// Joule-partition energy per iteration on the 600³ mesh at 16K cores.
pub fn cluster_energy() -> EnergyFigures {
    let model = JouleModel::default();
    let power = ClusterPower::default();
    let t = model.time_per_iteration(600, power.cores);
    let joules = power.kw() * 1e3 * t;
    EnergyFigures {
        name: "Joule 16,384-core partition",
        kw: power.kw(),
        time_per_iter: t,
        joules_per_iter: joules,
        joules_per_point: joules / 600f64.powi(3),
    }
}

/// The headline ratio: cluster joules-per-meshpoint over CS-1's.
pub fn energy_advantage() -> f64 {
    cluster_energy().joules_per_point / cs1_energy().joules_per_point
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs1_draws_20_kw_and_a_few_hundred_millijoules_per_iteration() {
        let e = cs1_energy();
        assert_eq!(e.kw, 20.0);
        // ~25 µs at 20 kW ≈ 0.5 J.
        assert!((0.2..1.5).contains(&e.joules_per_iter), "{e:?}");
    }

    #[test]
    fn cluster_partition_draws_hundreds_of_kw() {
        let power = ClusterPower::default();
        assert!(
            (150.0..400.0).contains(&power.kw()),
            "16K cores should draw a few hundred kW: {}",
            power.kw()
        );
    }

    #[test]
    fn cs1_energy_advantage_is_large() {
        // Time ratio ≈ 214-240×; power ratio ≈ 13×; mesh ratio 2.5×. Net
        // energy-per-point advantage should land in the hundreds-to-thousands.
        let adv = energy_advantage();
        assert!((100.0..20_000.0).contains(&adv), "energy advantage {adv}");
        assert!(adv > 100.0, "the paper's 'beyond what has been reported' claim");
    }

    #[test]
    fn per_point_units_are_consistent() {
        let e = cs1_energy();
        let recomputed = e.joules_per_iter / (600.0 * 595.0 * 1536.0);
        assert!((e.joules_per_point - recomputed).abs() < 1e-18);
    }
}
