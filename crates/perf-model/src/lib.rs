//! Analytic performance models reproducing the paper's quantitative claims.
//!
//! The paper validates "a simple performance model" against CS-1
//! measurements and uses it "to predict the effect of changing mesh size and
//! shape". This crate is that model, rebuilt:
//!
//! * [`cs1`] — machine parameters and the per-iteration cycle model behind
//!   the headline **28.1 µs / 0.86 PFLOPS** result (§V),
//! * [`allreduce`] — the diameter-bound AllReduce latency (<1.5 µs, §IV.3),
//! * [`cluster`] — the Joule-cluster strong-scaling model behind Figs. 7–8
//!   (75 ms @ 1024 cores → ~6 ms @ 16K on 600³; "about 214 times" slower
//!   than the CS-1; no scaling beyond 8K cores on 370³),
//! * [`balance`] — the flops-per-word machine-balance landscape of Fig. 1,
//! * [`mfix`] — Table II cycle accounting and the §VI.A projection of 80–125
//!   time steps per second for a 600³ SIMPLE simulation,
//! * [`capacity`] — the §VIII.B memory-capacity frontier (16 nm → 7 nm →
//!   5 nm wafer generations) and campaign-scale use cases,
//! * [`energy`] — performance-per-watt (§I's 20 kW claim),
//! * [`multiwafer`] — §VIII.B's multi-wafer clustering question ("with
//!   sufficient bandwidth"), answered quantitatively,
//! * [`opcounts`] — Table I (operations per meshpoint per iteration).
//!
//! Model constants are calibrated against the `wse-arch` simulator (the
//! benches re-verify the calibration at run time) and against the anchor
//! numbers the paper publishes for the cluster.

#![warn(missing_docs)]

pub mod allreduce;
pub mod balance;
pub mod capacity;
pub mod cluster;
pub mod cs1;
pub mod energy;
pub mod hpcg;
pub mod mfix;
pub mod multiwafer;
pub mod opcounts;

pub use cluster::JouleModel;
pub use cs1::Cs1Model;
