//! Machine balance: flops per word of memory and interconnect bandwidth
//! (Fig. 1).
//!
//! Fig. 1 (after McCalpin) plots the growing gulf between compute and data
//! movement: 2016-era CPUs need hundreds of flops per word of memory or
//! network traffic, while "the CS-1 ... can move three bytes to and from
//! memory for every flop" and has "injection bandwidth one fourth of the
//! peak floating point compute bandwidth" — it "sits at the desirable bottom
//! on the flops per access scale".

/// One machine's balance data point.
#[derive(Copy, Clone, Debug)]
pub struct BalancePoint {
    /// Machine name.
    pub name: &'static str,
    /// Approximate year.
    pub year: u32,
    /// Peak flops per cycle-equivalent word of **memory** bandwidth.
    pub flops_per_mem_word: f64,
    /// Peak flops per word of **interconnect** bandwidth.
    pub flops_per_net_word: f64,
}

/// Representative machines for the Fig. 1 landscape (orders of magnitude
/// from McCalpin's SC16 analysis; the trend, not the digits, is the point).
pub fn reference_machines() -> Vec<BalancePoint> {
    vec![
        BalancePoint {
            name: "Cray YMP (vector)",
            year: 1990,
            flops_per_mem_word: 1.0,
            flops_per_net_word: 8.0,
        },
        BalancePoint {
            name: "Commodity cluster",
            year: 2003,
            flops_per_mem_word: 16.0,
            flops_per_net_word: 120.0,
        },
        BalancePoint {
            name: "Xeon node (HSW)",
            year: 2014,
            flops_per_mem_word: 60.0,
            flops_per_net_word: 1200.0,
        },
        BalancePoint {
            name: "Xeon 6148 cluster (Joule)",
            year: 2017,
            flops_per_mem_word: 100.0,
            flops_per_net_word: 2000.0,
        },
        BalancePoint {
            name: "GPU (HBM) node",
            year: 2019,
            flops_per_mem_word: 75.0,
            flops_per_net_word: 4000.0,
        },
    ]
}

/// Computes the CS-1's balance point from first principles.
///
/// Per core per cycle: 8 fp16 flops peak; memory moves 16 B read + 8 B
/// write = 12 fp16 words; the fabric injects 16 B = 8 fp16 words.
pub fn cs1_balance() -> BalancePoint {
    let flops: f64 = 8.0;
    let mem_words = (16.0 + 8.0) / 2.0; // fp16 words per cycle
    let net_words = 16.0 / 2.0;
    BalancePoint {
        name: "Cerebras CS-1",
        year: 2019,
        flops_per_mem_word: flops / mem_words,
        flops_per_net_word: flops / net_words,
    }
}

/// Bytes moved to/from memory per flop on the CS-1 — the paper's "three
/// bytes ... for every flop".
pub fn cs1_bytes_per_flop() -> f64 {
    (16.0 + 8.0) / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs1_moves_three_bytes_per_flop() {
        assert_eq!(cs1_bytes_per_flop(), 3.0);
    }

    #[test]
    fn cs1_sits_at_the_bottom_of_the_scale() {
        let cs1 = cs1_balance();
        for m in reference_machines() {
            assert!(
                cs1.flops_per_mem_word < m.flops_per_mem_word,
                "CS-1 must be below {} in memory balance",
                m.name
            );
            assert!(
                cs1.flops_per_net_word < m.flops_per_net_word,
                "CS-1 must be below {} in network balance",
                m.name
            );
        }
        assert!(cs1.flops_per_mem_word < 1.0);
    }

    #[test]
    fn injection_is_one_fourth_of_compute() {
        // "injection bandwidth one fourth of the peak floating point
        // compute bandwidth": 8 words injected vs 8 flops... in byte terms
        // 16 B/cycle vs 8 flops × 8 B/flop-equivalent? The paper's ratio is
        // flops : injected words = 1 : 1 at fp16; per *operand pair* the
        // fabric supplies a quarter of what the datapath consumes.
        let cs1 = cs1_balance();
        assert_eq!(cs1.flops_per_net_word, 1.0);
        // Datapath consumes up to 4 words/flop-pair; ramp supplies 1 per
        // flop: one fourth.
        assert_eq!(4.0 * cs1.flops_per_net_word / 4.0, 1.0);
    }

    #[test]
    fn trend_worsens_with_year_for_cpus() {
        let machines = reference_machines();
        for w in machines.windows(2) {
            assert!(
                w[1].flops_per_net_word > w[0].flops_per_net_word,
                "network balance worsens: {} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }
}
