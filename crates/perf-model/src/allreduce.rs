//! AllReduce latency model (Fig. 6 / §IV.3).
//!
//! "The single cycle-per-hop latency of the interconnect allows us to
//! implement the AllReduce operation in a cycle count only about 10% greater
//! than the diameter of the system" — and the paper's headline: "our
//! AllReduce ... for scalars takes under 1.5 microseconds for a system of
//! about 380,000 ... processors."

/// Latency model: `cycles = hop_factor · (w + h) + fixed`.
#[derive(Copy, Clone, Debug)]
pub struct AllReduceModel {
    /// Effective cycles per hop including pipelining slack (paper: ~1.1).
    pub hop_factor: f64,
    /// Fixed cycles for the task launches and the 4:1 / broadcast corner
    /// turns.
    pub fixed: f64,
}

impl Default for AllReduceModel {
    fn default() -> AllReduceModel {
        AllReduceModel { hop_factor: 1.1, fixed: 25.0 }
    }
}

impl AllReduceModel {
    /// Predicted cycles on a `w × h` fabric.
    pub fn cycles(&self, w: usize, h: usize) -> f64 {
        self.hop_factor * (w + h) as f64 + self.fixed
    }

    /// Predicted latency in microseconds at `clock_ghz`.
    pub fn time_us(&self, w: usize, h: usize, clock_ghz: f64) -> f64 {
        self.cycles(w, h) / (clock_ghz * 1e3)
    }

    /// Fits `hop_factor` and `fixed` from simulator measurements of
    /// `(w, h, cycles)`.
    pub fn calibrate(&mut self, samples: &[(usize, usize, u64)]) {
        assert!(samples.len() >= 2, "need at least two samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(w, h, _)| (w + h) as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, _, c)| c as f64).sum();
        let sxx: f64 = samples.iter().map(|&(w, h, _)| ((w + h) as f64).powi(2)).sum();
        let sxy: f64 = samples.iter().map(|&(w, h, c)| (w + h) as f64 * c as f64).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        self.hop_factor = slope;
        self.fixed = intercept.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_is_under_1_5_us() {
        let m = AllReduceModel::default();
        let t = m.time_us(602, 595, 0.9);
        assert!(t < 1.5, "paper claims < 1.5 µs, model gives {t:.2} µs");
        assert!(t > 1.0, "latency should still be diameter-bound: {t:.2} µs");
    }

    #[test]
    fn cycles_track_diameter_within_10_to_20_percent() {
        let m = AllReduceModel::default();
        let diameter = (602 + 595) as f64;
        let ratio = m.cycles(602, 595) / diameter;
        assert!((1.05..1.25).contains(&ratio), "cycles/diameter = {ratio:.3}");
    }

    #[test]
    fn calibrate_recovers_slope() {
        let mut m = AllReduceModel::default();
        m.calibrate(&[(16, 16, 100), (32, 32, 150), (64, 64, 250)]);
        assert!((m.hop_factor - 1.5625).abs() < 1e-6);
        assert!((m.fixed - 50.0).abs() < 1e-6);
    }
}
