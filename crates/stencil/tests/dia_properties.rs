//! Property tests for the diagonal-storage matrices: linearity, adjointness,
//! conversion monotonicity, and preconditioning invariants.

use proptest::prelude::*;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::problem::random_dominant;
use stencil::scalar::convert_slice;
use wse_float::F16;

fn arb_mesh() -> impl Strategy<Value = Mesh3D> {
    (2usize..5, 2usize..5, 2usize..7).prop_map(|(x, y, z)| Mesh3D::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The f64 matvec is linear: A(αx + y) = αAx + Ay.
    #[test]
    fn matvec_is_linear(mesh in arb_mesh(), seed in 0u64..500, alpha in -4.0f64..4.0) {
        let p = random_dominant(mesh, 1.5, seed);
        let n = mesh.len();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) % 17) as f64 * 0.1 - 0.8).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 * 0.2 - 1.0).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let mut lhs = vec![0.0; n];
        p.matrix.matvec_f64(&combo, &mut lhs);
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        p.matrix.matvec_f64(&x, &mut ax);
        p.matrix.matvec_f64(&y, &mut ay);
        for i in 0..n {
            let rhs = alpha * ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9 * (1.0 + rhs.abs()), "i={}", i);
        }
    }

    /// The transpose matvec is the adjoint: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
    #[test]
    fn transpose_is_adjoint(mesh in arb_mesh(), seed in 0u64..500) {
        let p = random_dominant(mesh, 1.3, seed);
        let n = mesh.len();
        let x: Vec<f64> = (0..n).map(|i| ((i * 5) % 9) as f64 * 0.25 - 1.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 11) % 13) as f64 * 0.125 - 0.75).collect();
        let mut ax = vec![0.0; n];
        let mut aty = vec![0.0; n];
        p.matrix.matvec_f64(&x, &mut ax);
        p.matrix.matvec_transpose_f64(&y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Narrowing to fp16 perturbs the matvec by at most the componentwise
    /// fp16 bound: |A₁₆x − Ax| ≤ C·ε₁₆ per row (few terms, O(1) values).
    #[test]
    fn f16_conversion_error_is_bounded(mesh in arb_mesh(), seed in 0u64..500) {
        let p = random_dominant(mesh, 1.5, seed).preconditioned();
        let n = mesh.len();
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let x: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 * 0.25 - 0.75).collect();
        let x16: Vec<F16> = convert_slice(&x);
        let mut exact = vec![0.0; n];
        p.matrix.matvec_f64(&x, &mut exact);
        let mut approx = vec![F16::ZERO; n];
        a16.matvec(&x16, &mut approx);
        // 7 terms, coefficients O(1) after scaling, x O(1): the worst case
        // is a few dozen fp16 ulps of the row magnitudes.
        let eps16 = f64::powi(2.0, -11);
        for i in 0..n {
            let err = (approx[i].to_f64() - exact[i]).abs();
            let scale: f64 = p.matrix.row_entries(i).iter().map(|(_, v)| v.abs()).sum::<f64>() + 1.0;
            prop_assert!(err <= 40.0 * eps16 * scale, "i={}: err {} scale {}", i, err, scale);
        }
    }

    /// Jacobi scaling is idempotent: scaling an already unit-diagonal
    /// system changes nothing.
    #[test]
    fn jacobi_scale_idempotent(mesh in arb_mesh(), seed in 0u64..500) {
        let p = random_dominant(mesh, 1.4, seed);
        let s1 = jacobi_scale(&p.matrix, &p.rhs);
        let s2 = jacobi_scale(&s1.matrix, &s1.rhs);
        for row in 0..mesh.len() {
            prop_assert_eq!(s1.matrix.row_entries(row), s2.matrix.row_entries(row));
        }
        for i in 0..mesh.len() {
            prop_assert!((s1.rhs[i] - s2.rhs[i]).abs() < 1e-14);
        }
    }

    /// `norm_inf` dominates the matvec: ‖Ax‖∞ ≤ ‖A‖∞·‖x‖∞.
    #[test]
    fn norm_inf_bounds_matvec(mesh in arb_mesh(), seed in 0u64..500) {
        let p = random_dominant(mesh, 1.5, seed);
        let n = mesh.len();
        let x: Vec<f64> = (0..n).map(|i| ((i * 17) % 23) as f64 * 0.1 - 1.1).collect();
        let xinf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut ax = vec![0.0; n];
        p.matrix.matvec_f64(&x, &mut ax);
        let axinf = ax.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        prop_assert!(axinf <= p.matrix.norm_inf() * xinf * (1.0 + 1e-12));
    }
}
