//! Variable-coefficient and anisotropic 7-point operators.
//!
//! The paper's application domain (MFIX multiphase flow) produces systems
//! whose coefficients vary in space — mixtures, stretched meshes, phase
//! fractions. These generators create that matrix class for stress-testing
//! the solvers beyond the constant-coefficient Poisson/convection cases:
//! heterogeneous diffusivity fields (harmonic-mean face coefficients, as a
//! finite-volume code computes them) and axis-anisotropic operators (the
//! stretched-mesh effect).

use crate::dia::{DiaMatrix, Offset3};
use crate::mesh::Mesh3D;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A spatially varying diffusivity field on cell centers.
#[derive(Clone, Debug)]
pub struct DiffusivityField {
    mesh: Mesh3D,
    kappa: Vec<f64>,
}

impl DiffusivityField {
    /// A log-uniform random field in `[lo, hi]` (the classic heterogeneous
    /// media test; contrast `hi/lo` controls the conditioning).
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi`.
    pub fn random(mesh: Mesh3D, lo: f64, hi: f64, seed: u64) -> DiffusivityField {
        assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
        let mut rng = SmallRng::seed_from_u64(seed);
        let (llo, lhi) = (lo.ln(), hi.ln());
        let kappa = (0..mesh.len()).map(|_| rng.gen_range(llo..=lhi).exp()).collect();
        DiffusivityField { mesh, kappa }
    }

    /// A two-layer field: `lo` in the lower half of z, `hi` above (a sharp
    /// material interface).
    pub fn layered(mesh: Mesh3D, lo: f64, hi: f64) -> DiffusivityField {
        assert!(lo > 0.0 && hi > 0.0);
        let kappa = mesh.iter().map(|(_, _, z)| if z < mesh.nz / 2 { lo } else { hi }).collect();
        DiffusivityField { mesh, kappa }
    }

    /// The value at a cell.
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.kappa[self.mesh.idx(x, y, z)]
    }

    /// Harmonic mean of the two cells sharing a face — the standard
    /// finite-volume face coefficient for discontinuous media.
    fn face(&self, a: f64, b: f64) -> f64 {
        2.0 * a * b / (a + b)
    }
}

/// Builds the variable-coefficient diffusion operator
/// `-∇·(κ(x) ∇u)` with harmonic-mean face coefficients and Dirichlet
/// boundaries. Symmetric positive definite for any positive field.
pub fn variable_diffusion(field: &DiffusivityField) -> DiaMatrix<f64> {
    let mesh = field.mesh;
    let mut a = DiaMatrix::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        let here = field.at(x, y, z);
        let mut diag = 0.0;
        for off in &Offset3::seven_point()[1..] {
            let c = match mesh.neighbor(x, y, z, off.dx, off.dy, off.dz) {
                Some(nbr) => {
                    let (nx, ny, nz) = mesh.coords(nbr);
                    let c = field.face(here, field.at(nx, ny, nz));
                    a.set(x, y, z, *off, -c);
                    c
                }
                // Dirichlet wall at half-cell distance: conductance 2κ.
                None => 2.0 * here,
            };
            diag += c;
        }
        a.set(x, y, z, Offset3::CENTER, diag);
    }
    a
}

/// Builds an axis-anisotropic constant-coefficient operator with per-axis
/// conductances `(kx, ky, kz)` — the discrete effect of a stretched mesh
/// (`k ∝ 1/h²` per axis). Strong anisotropy is the classic hard case for
/// unpreconditioned Krylov methods.
pub fn anisotropic_diffusion(mesh: Mesh3D, kx: f64, ky: f64, kz: f64) -> DiaMatrix<f64> {
    assert!(kx > 0.0 && ky > 0.0 && kz > 0.0);
    let mut a = DiaMatrix::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        let mut diag = 0.0;
        for off in &Offset3::seven_point()[1..] {
            let k = if off.dx != 0 {
                kx
            } else if off.dy != 0 {
                ky
            } else {
                kz
            };
            diag += k;
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -k);
            }
        }
        a.set(x, y, z, Offset3::CENTER, diag);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::jacobi_scale;
    use crate::stencil7::{diagonal_dominance_slack, is_symmetric};

    #[test]
    fn variable_diffusion_is_spd_shaped() {
        let field = DiffusivityField::random(Mesh3D::new(5, 4, 6), 0.01, 10.0, 42);
        let a = variable_diffusion(&field);
        assert!(a.validate().is_ok());
        assert!(is_symmetric(&a), "harmonic means keep symmetry");
        // Interior rows are weakly dominant (slack 0); boundary rows carry
        // the extra Dirichlet conductance.
        assert!(diagonal_dominance_slack(&a) >= -1e-12);
        let corner_diag: f64 = a.coeff(0, 0, 0, Offset3::CENTER);
        let corner_off: f64 = a.row_entries(0).iter().skip(1).map(|(_, v)| v.abs()).sum();
        assert!(corner_diag > corner_off, "boundary rows strictly dominant");
    }

    #[test]
    fn layered_field_has_sharp_interface() {
        let mesh = Mesh3D::new(3, 3, 8);
        let field = DiffusivityField::layered(mesh, 1e-3, 1.0);
        assert_eq!(field.at(1, 1, 0), 1e-3);
        assert_eq!(field.at(1, 1, 7), 1.0);
        let a = variable_diffusion(&field);
        // Across the interface the harmonic mean is close to 2·lo.
        let c = a.coeff(1, 1, mesh.nz / 2 - 1, Offset3::new(0, 0, 1)).abs();
        assert!(c < 3.0e-3, "interface coefficient {c}");
        assert!(is_symmetric(&a));
    }

    #[test]
    fn high_contrast_system_still_solvable_after_jacobi() {
        let mesh = Mesh3D::new(4, 4, 6);
        let field = DiffusivityField::random(mesh, 1e-3, 1.0, 7);
        let a = variable_diffusion(&field);
        let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 11) as f64) * 0.1 - 0.5).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&exact, &mut b);
        let sys = jacobi_scale(&a, &b);
        let opts = solver_opts();
        let res = crate::variable::tests_support::solve_f64(&sys.matrix, &sys.rhs, &opts);
        assert!(res < 1e-7, "relative residual {res}");
    }

    #[test]
    fn anisotropy_shapes_the_stencil() {
        let mesh = Mesh3D::new(4, 4, 4);
        let a = anisotropic_diffusion(mesh, 1.0, 1.0, 100.0);
        assert!(is_symmetric(&a));
        let cz = a.coeff(1, 1, 1, Offset3::new(0, 0, 1)).abs();
        let cx = a.coeff(1, 1, 1, Offset3::new(1, 0, 0)).abs();
        assert_eq!(cz / cx, 100.0);
        let diag: f64 = a.coeff(1, 1, 1, Offset3::CENTER);
        assert_eq!(diag, 2.0 * (1.0 + 1.0 + 100.0));
    }

    fn solver_opts() -> (usize, f64) {
        (400, 1e-9)
    }
}

/// Minimal in-crate solver used only by tests (the real solvers live in the
/// `solver` crate, which depends on this one — so the test here carries its
/// own tiny BiCGStab to avoid a dependency cycle).
#[cfg(test)]
mod tests_support {
    use crate::dia::DiaMatrix;

    /// Plain f64 BiCGStab; returns the final relative residual.
    pub fn solve_f64(a: &DiaMatrix<f64>, b: &[f64], opts: &(usize, f64)) -> f64 {
        let n = b.len();
        let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let r0 = r.clone();
        let mut p = r.clone();
        let mut s = vec![0.0; n];
        let mut y = vec![0.0; n];
        let mut rho: f64 = r0.iter().zip(&r).map(|(a, b)| a * b).sum();
        for _ in 0..opts.0 {
            a.matvec_f64(&p, &mut s);
            let r0s: f64 = r0.iter().zip(&s).map(|(a, b)| a * b).sum();
            if r0s == 0.0 || rho == 0.0 {
                break;
            }
            let alpha = rho / r0s;
            let q: Vec<f64> = r.iter().zip(&s).map(|(r, s)| r - alpha * s).collect();
            a.matvec_f64(&q, &mut y);
            let qy: f64 = q.iter().zip(&y).map(|(a, b)| a * b).sum();
            let yy: f64 = y.iter().map(|v| v * v).sum();
            if yy == 0.0 {
                break;
            }
            let omega = qy / yy;
            for j in 0..n {
                x[j] += alpha * p[j] + omega * q[j];
            }
            let r_new: Vec<f64> = q.iter().zip(&y).map(|(q, y)| q - omega * y).collect();
            let rho_new: f64 = r0.iter().zip(&r_new).map(|(a, b)| a * b).sum();
            let beta = (alpha / omega) * (rho_new / rho);
            rho = rho_new;
            for j in 0..n {
                p[j] = r_new[j] + beta * (p[j] - omega * s[j]);
            }
            r = r_new;
            let rel = r.iter().map(|v| v * v).sum::<f64>().sqrt() / norm_b;
            if rel < opts.1 {
                break;
            }
        }
        r.iter().map(|v| v * v).sum::<f64>().sqrt() / norm_b
    }
}
