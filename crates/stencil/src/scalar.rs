//! The numeric abstraction over which every operator and solver is generic.
//!
//! The paper's implementation runs "16-bit for all arithmetic except the
//! inner products"; the accuracy study (Fig. 9) compares the same solver in
//! 32-bit and mixed 16/32-bit. Making the stencil matvec and the Krylov
//! vectors generic over [`Scalar`] lets one code path produce all the curves.

use std::fmt::Debug;
use wse_float::F16;

/// A floating-point scalar usable as vector/matrix storage.
///
/// Every operation rounds in the implementing type's precision, so running a
/// solver at `S = F16` reproduces exactly the roundoff behaviour of the
/// 16-bit wafer datapath.
pub trait Scalar: Copy + Default + PartialEq + Debug + Send + Sync + 'static {
    /// Human-readable precision name used in experiment output.
    const NAME: &'static str;

    /// Converts from f64, rounding once.
    fn from_f64(v: f64) -> Self;
    /// Widens to f64 (exact for all implementors here).
    fn to_f64(self) -> f64;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;

    /// `self + rhs`, rounded in `Self`.
    fn add(self, rhs: Self) -> Self;
    /// `self - rhs`, rounded in `Self`.
    fn sub(self, rhs: Self) -> Self;
    /// `self * rhs`, rounded in `Self`.
    fn mul(self, rhs: Self) -> Self;
    /// `self / rhs`, rounded in `Self`.
    fn div(self, rhs: Self) -> Self;
    /// Negation (sign flip; exact).
    fn neg(self) -> Self;

    /// Fused multiply-add `a * b + self` with a single rounding, matching
    /// the hardware FMAC ("no rounding of the product prior to the add").
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root, correctly rounded.
    fn sqrt(self) -> Self;

    /// `true` if the value is NaN or infinite — used by solvers to detect
    /// breakdown/overflow (a real hazard in fp16).
    fn is_non_finite(self) -> bool;
}

impl Scalar for f64 {
    const NAME: &'static str = "fp64";

    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn zero() -> f64 {
        0.0
    }
    #[inline]
    fn one() -> f64 {
        1.0
    }
    #[inline]
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: f64) -> f64 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: f64) -> f64 {
        self / rhs
    }
    #[inline]
    fn neg(self) -> f64 {
        -self
    }
    #[inline]
    fn mul_add(self, a: f64, b: f64) -> f64 {
        f64::mul_add(a, b, self)
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline]
    fn is_non_finite(self) -> bool {
        !self.is_finite()
    }
}

impl Scalar for f32 {
    const NAME: &'static str = "fp32";

    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn zero() -> f32 {
        0.0
    }
    #[inline]
    fn one() -> f32 {
        1.0
    }
    #[inline]
    fn add(self, rhs: f32) -> f32 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: f32) -> f32 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: f32) -> f32 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: f32) -> f32 {
        self / rhs
    }
    #[inline]
    fn neg(self) -> f32 {
        -self
    }
    #[inline]
    fn mul_add(self, a: f32, b: f32) -> f32 {
        f32::mul_add(a, b, self)
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> f32 {
        f32::sqrt(self)
    }
    #[inline]
    fn is_non_finite(self) -> bool {
        !self.is_finite()
    }
}

impl Scalar for F16 {
    const NAME: &'static str = "fp16";

    #[inline]
    fn from_f64(v: f64) -> F16 {
        F16::from_f64(v)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn zero() -> F16 {
        F16::ZERO
    }
    #[inline]
    fn one() -> F16 {
        F16::ONE
    }
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        self / rhs
    }
    #[inline]
    fn neg(self) -> F16 {
        -self
    }
    #[inline]
    fn mul_add(self, a: F16, b: F16) -> F16 {
        wse_float::fma16(a, b, self)
    }
    #[inline]
    fn abs(self) -> F16 {
        F16::abs(self)
    }
    #[inline]
    fn sqrt(self) -> F16 {
        F16::sqrt(self)
    }
    #[inline]
    fn is_non_finite(self) -> bool {
        !self.is_finite()
    }
}

/// Converts a slice between scalar types, rounding each element once.
pub fn convert_slice<A: Scalar, B: Scalar>(src: &[A]) -> Vec<B> {
    src.iter().map(|&v| B::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Scalar>() {
        let two = S::from_f64(2.0);
        let three = S::from_f64(3.0);
        assert_eq!(two.add(three).to_f64(), 5.0);
        assert_eq!(three.sub(two).to_f64(), 1.0);
        assert_eq!(two.mul(three).to_f64(), 6.0);
        assert_eq!(three.div(two).to_f64(), 1.5);
        assert_eq!(two.neg().to_f64(), -2.0);
        assert_eq!(S::zero().to_f64(), 0.0);
        assert_eq!(S::one().to_f64(), 1.0);
        assert_eq!(S::one().mul_add(two, three).to_f64(), 7.0);
        assert_eq!(S::from_f64(-4.0).abs().to_f64(), 4.0);
        assert_eq!(S::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert!(!two.is_non_finite());
        assert!(S::from_f64(f64::INFINITY).is_non_finite());
        assert!(S::from_f64(f64::NAN).is_non_finite());
    }

    #[test]
    fn all_scalars_satisfy_basic_algebra() {
        exercise::<f64>();
        exercise::<f32>();
        exercise::<F16>();
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(f64::NAME, "fp64");
        assert_eq!(f32::NAME, "fp32");
        assert_eq!(F16::NAME, "fp16");
    }

    #[test]
    fn f16_ops_round_in_f16() {
        // 1 + eps16/2 rounds back to 1 in fp16 but not in fp32/f64.
        let one = F16::one();
        let tiny = F16::from_f64(f64::powi(2.0, -12));
        assert_eq!(one.add(tiny).to_f64(), 1.0);
        let one32 = <f32 as Scalar>::one();
        let tiny32 = <f32 as Scalar>::from_f64(f64::powi(2.0, -12));
        assert!(one32.add(tiny32).to_f64() > 1.0);
    }

    #[test]
    fn convert_slice_rounds_once() {
        let src = vec![1.0f64, 0.1, -2.5];
        let out: Vec<F16> = convert_slice(&src);
        assert_eq!(out[0].to_f64(), 1.0);
        assert_eq!(out[2].to_f64(), -2.5);
        // 0.1 is inexact in binary16
        assert!((out[1].to_f64() - 0.1).abs() < 1e-4);
        let back: Vec<f64> = convert_slice(&out);
        assert_eq!(back[0], 1.0);
    }
}
