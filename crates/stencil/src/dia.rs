//! Diagonal-storage sparse matrices.
//!
//! "A has seven nonzero diagonals; but with diagonal preconditioning the main
//! diagonal is all ones. Therefore, we only store six other diagonals." —
//! each structured-mesh offset `(dx, dy, dz)` contributes one *band*: a dense
//! array, aligned to the **row** index, whose entry `i` multiplies
//! `x[neighbor(i)]`. Entries whose neighbor falls off the mesh are zero and
//! are never touched by the matvec.
//!
//! The matvec is *precision-faithful* to the on-wafer SpMV of Listing 1:
//! every band is applied as an elementwise **multiply** (rounded in storage
//! precision — the products pass through fp16 FIFOs on the wafer) followed by
//! an elementwise **add** into the accumulator (also rounded in storage
//! precision — `sumtask` adds fp16 tensors). Band order matches the paper's
//! dataflow: the shifted-`zm` product initializes the result, then the other
//! bands accumulate.

use crate::mesh::Mesh3D;
use crate::scalar::Scalar;

/// A signed stencil offset `(dx, dy, dz)` identifying one matrix diagonal.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Offset3 {
    /// Offset along X.
    pub dx: i32,
    /// Offset along Y.
    pub dy: i32,
    /// Offset along Z.
    pub dz: i32,
}

impl Offset3 {
    /// Convenience constructor.
    pub const fn new(dx: i32, dy: i32, dz: i32) -> Offset3 {
        Offset3 { dx, dy, dz }
    }

    /// The center (main-diagonal) offset.
    pub const CENTER: Offset3 = Offset3::new(0, 0, 0);

    /// `true` for the main diagonal.
    pub fn is_center(&self) -> bool {
        self.dx == 0 && self.dy == 0 && self.dz == 0
    }

    /// The seven offsets of the 3D 7-point stencil, center first.
    pub fn seven_point() -> [Offset3; 7] {
        [
            Offset3::CENTER,
            Offset3::new(1, 0, 0),
            Offset3::new(-1, 0, 0),
            Offset3::new(0, 1, 0),
            Offset3::new(0, -1, 0),
            Offset3::new(0, 0, 1),
            Offset3::new(0, 0, -1),
        ]
    }

    /// The nine offsets of the 2D 9-point stencil (dz = 0), center first.
    pub fn nine_point_2d() -> [Offset3; 9] {
        [
            Offset3::CENTER,
            Offset3::new(1, 0, 0),
            Offset3::new(-1, 0, 0),
            Offset3::new(0, 1, 0),
            Offset3::new(0, -1, 0),
            Offset3::new(1, 1, 0),
            Offset3::new(1, -1, 0),
            Offset3::new(-1, 1, 0),
            Offset3::new(-1, -1, 0),
        ]
    }
}

/// A structured-mesh sparse matrix stored by diagonals, generic over storage
/// precision.
#[derive(Clone, Debug)]
pub struct DiaMatrix<S> {
    mesh: Mesh3D,
    offsets: Vec<Offset3>,
    /// `bands[o][row]` multiplies `x[row + shift(o)]`; zero where the
    /// neighbor is outside the mesh.
    bands: Vec<Vec<S>>,
}

impl<S: Scalar> DiaMatrix<S> {
    /// Creates a zero matrix over `mesh` with the given diagonals.
    ///
    /// # Panics
    /// Panics if `offsets` contains duplicates.
    pub fn new(mesh: Mesh3D, offsets: &[Offset3]) -> DiaMatrix<S> {
        for (i, a) in offsets.iter().enumerate() {
            for b in &offsets[..i] {
                assert_ne!(a, b, "duplicate stencil offset {a:?}");
            }
        }
        DiaMatrix {
            mesh,
            offsets: offsets.to_vec(),
            bands: offsets.iter().map(|_| vec![S::zero(); mesh.len()]).collect(),
        }
    }

    /// The mesh this matrix discretizes.
    pub fn mesh(&self) -> Mesh3D {
        self.mesh
    }

    /// Number of rows (= mesh points).
    pub fn nrows(&self) -> usize {
        self.mesh.len()
    }

    /// The stencil offsets, in band order.
    pub fn offsets(&self) -> &[Offset3] {
        &self.offsets
    }

    /// Index of the band for `offset`, if present.
    pub fn band_index(&self, offset: Offset3) -> Option<usize> {
        self.offsets.iter().position(|&o| o == offset)
    }

    /// Immutable view of one band's coefficient array (row-aligned).
    pub fn band(&self, band: usize) -> &[S] {
        &self.bands[band]
    }

    /// Mutable view of one band's coefficient array (row-aligned).
    ///
    /// Callers must leave out-of-mesh entries at zero; [`DiaMatrix::validate`]
    /// checks this.
    pub fn band_mut(&mut self, band: usize) -> &mut [S] {
        &mut self.bands[band]
    }

    /// Sets the coefficient coupling row `(x, y, z)` to its neighbor at
    /// `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is not one of the matrix diagonals or the neighbor
    /// is outside the mesh.
    pub fn set(&mut self, x: usize, y: usize, z: usize, offset: Offset3, value: S) {
        let band =
            self.band_index(offset).unwrap_or_else(|| panic!("offset {offset:?} not in stencil"));
        assert!(
            self.mesh.neighbor(x, y, z, offset.dx, offset.dy, offset.dz).is_some(),
            "coefficient at ({x},{y},{z}) offset {offset:?} reaches outside the mesh"
        );
        let row = self.mesh.idx(x, y, z);
        self.bands[band][row] = value;
    }

    /// Reads the coefficient coupling row `(x, y, z)` to its neighbor at
    /// `offset` (zero if the neighbor is outside the mesh).
    pub fn coeff(&self, x: usize, y: usize, z: usize, offset: Offset3) -> S {
        match self.band_index(offset) {
            Some(band) => self.bands[band][self.mesh.idx(x, y, z)],
            None => S::zero(),
        }
    }

    /// Checks the structural invariant: every coefficient whose neighbor is
    /// off-mesh is exactly zero.
    pub fn validate(&self) -> Result<(), String> {
        for (b, off) in self.offsets.iter().enumerate() {
            for (x, y, z) in self.mesh.iter() {
                if self.mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_none() {
                    let v = self.bands[b][self.mesh.idx(x, y, z)];
                    if v != S::zero() {
                        return Err(format!(
                            "nonzero out-of-mesh coefficient at ({x},{y},{z}) offset {off:?}: {v:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// `y = A x` with storage-precision rounding at every step, band-by-band
    /// (multiply rounds, then add rounds), mirroring the wafer dataflow.
    ///
    /// # Panics
    /// Panics if `x` or `y` length differs from the number of rows.
    pub fn matvec(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.nrows(), "matvec input length");
        assert_eq!(y.len(), self.nrows(), "matvec output length");
        y.fill(S::zero());
        for (band, off) in self.bands.iter().zip(&self.offsets) {
            self.apply_band(band, *off, x, y);
        }
    }

    /// Applies one band: `y[row] += band[row] * x[row + shift]` over the
    /// valid row range, with both operations rounding in `S`.
    fn apply_band(&self, band: &[S], off: Offset3, x: &[S], y: &mut [S]) {
        let m = &self.mesh;
        let (nx, ny, nz) = (m.nx as i64, m.ny as i64, m.nz as i64);
        // Valid row coordinate ranges such that row+offset stays in-mesh.
        let xr = clamp_range(off.dx as i64, nx);
        let yr = clamp_range(off.dy as i64, ny);
        let zr = clamp_range(off.dz as i64, nz);
        let shift = (off.dx as i64 * ny + off.dy as i64) * nz + off.dz as i64;
        for xi in xr.clone() {
            for yi in yr.clone() {
                let row0 = ((xi * ny + yi) * nz + zr.start) as usize;
                let nbr0 = (row0 as i64 + shift) as usize;
                let len = (zr.end - zr.start) as usize;
                let a = &band[row0..row0 + len];
                let xs = &x[nbr0..nbr0 + len];
                let ys = &mut y[row0..row0 + len];
                for i in 0..len {
                    // Two roundings, like the wafer: FIFO product, then add.
                    let t = a[i].mul(xs[i]);
                    ys[i] = ys[i].add(t);
                }
            }
        }
    }

    /// `y = A x` evaluated in f64 regardless of storage precision (reference
    /// for accuracy measurements: the matrix *values* are still the stored,
    /// rounded ones, but no further rounding occurs).
    pub fn matvec_f64(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows(), "matvec input length");
        assert_eq!(y.len(), self.nrows(), "matvec output length");
        y.fill(0.0);
        let m = &self.mesh;
        let (nx, ny, nz) = (m.nx as i64, m.ny as i64, m.nz as i64);
        for (band, off) in self.bands.iter().zip(&self.offsets) {
            let xr = clamp_range(off.dx as i64, nx);
            let yr = clamp_range(off.dy as i64, ny);
            let zr = clamp_range(off.dz as i64, nz);
            let shift = (off.dx as i64 * ny + off.dy as i64) * nz + off.dz as i64;
            for xi in xr.clone() {
                for yi in yr.clone() {
                    let row0 = ((xi * ny + yi) * nz + zr.start) as usize;
                    let nbr0 = (row0 as i64 + shift) as usize;
                    let len = (zr.end - zr.start) as usize;
                    for i in 0..len {
                        y[row0 + i] += band[row0 + i].to_f64() * x[nbr0 + i];
                    }
                }
            }
        }
    }

    /// `y = Aᵀ x` evaluated in f64 (spectral estimation; the transpose of
    /// a DIA matrix scatters each band to the mirrored offset).
    pub fn matvec_transpose_f64(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows(), "matvec input length");
        assert_eq!(y.len(), self.nrows(), "matvec output length");
        y.fill(0.0);
        let m = &self.mesh;
        for (band, off) in self.bands.iter().zip(&self.offsets) {
            for (x0, y0, z0) in m.iter() {
                if let Some(col) = m.neighbor(x0, y0, z0, off.dx, off.dy, off.dz) {
                    let row = m.idx(x0, y0, z0);
                    y[col] += band[row].to_f64() * x[row];
                }
            }
        }
    }

    /// True residual `b - A x` evaluated in f64 (for normwise relative
    /// residual reporting, Fig. 9).
    pub fn residual_f64(&self, x: &[S], b: &[S]) -> Vec<f64> {
        let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let mut ax = vec![0.0; self.nrows()];
        self.matvec_f64(&xf, &mut ax);
        b.iter().zip(&ax).map(|(bi, axi)| bi.to_f64() - axi).collect()
    }

    /// Converts storage precision, rounding each coefficient once.
    pub fn convert<T: Scalar>(&self) -> DiaMatrix<T> {
        DiaMatrix {
            mesh: self.mesh,
            offsets: self.offsets.clone(),
            bands: self
                .bands
                .iter()
                .map(|band| band.iter().map(|&v| T::from_f64(v.to_f64())).collect())
                .collect(),
        }
    }

    /// Dense row of the matrix as `(column, value)` pairs (test helper; only
    /// sensible for small meshes).
    pub fn row_entries(&self, row: usize) -> Vec<(usize, f64)> {
        let (x, y, z) = self.mesh.coords(row);
        let mut out = Vec::new();
        for (b, off) in self.offsets.iter().enumerate() {
            if let Some(col) = self.mesh.neighbor(x, y, z, off.dx, off.dy, off.dz) {
                let v = self.bands[b][row].to_f64();
                if v != 0.0 {
                    out.push((col, v));
                }
            }
        }
        out.sort_by_key(|&(c, _)| c);
        out
    }

    /// Infinity norm of the matrix (max absolute row sum), in f64.
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0f64;
        for row in 0..self.nrows() {
            let s: f64 = self.row_entries(row).iter().map(|(_, v)| v.abs()).sum();
            best = best.max(s);
        }
        best
    }
}

/// Row-coordinate range `[start, end)` along one axis such that
/// `coord + offset` stays within `[0, n)`.
fn clamp_range(off: i64, n: i64) -> std::ops::Range<i64> {
    if off >= 0 {
        0..(n - off).max(0)
    } else {
        (-off).min(n)..n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh3D;
    use wse_float::F16;

    fn laplacian_3x3x3() -> DiaMatrix<f64> {
        let mesh = Mesh3D::new(3, 3, 3);
        let mut a = DiaMatrix::new(mesh, &Offset3::seven_point());
        for (x, y, z) in mesh.iter() {
            a.set(x, y, z, Offset3::CENTER, 6.0);
            for off in &Offset3::seven_point()[1..] {
                if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                    a.set(x, y, z, *off, -1.0);
                }
            }
        }
        a
    }

    #[test]
    fn clamp_range_cases() {
        assert_eq!(clamp_range(0, 5), 0..5);
        assert_eq!(clamp_range(1, 5), 0..4);
        assert_eq!(clamp_range(-1, 5), 1..5);
        assert_eq!(clamp_range(2, 2), 0..0);
        assert_eq!(clamp_range(-7, 5), 5..5);
    }

    #[test]
    fn matvec_constant_vector_interior() {
        let a = laplacian_3x3x3();
        let x = vec![1.0; 27];
        let mut y = vec![0.0; 27];
        a.matvec(&x, &mut y);
        // Interior point: 6 - 6*1 = 0; corner: 6 - 3 = 3; edge: 6-4=2; face: 6-5=1.
        let m = a.mesh();
        assert_eq!(y[m.idx(1, 1, 1)], 0.0);
        assert_eq!(y[m.idx(0, 0, 0)], 3.0);
        assert_eq!(y[m.idx(1, 0, 0)], 2.0);
        assert_eq!(y[m.idx(1, 1, 0)], 1.0);
    }

    #[test]
    fn matvec_matches_row_entries() {
        let a = laplacian_3x3x3();
        let x: Vec<f64> = (0..27).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut y = vec![0.0; 27];
        a.matvec(&x, &mut y);
        for (row, yr) in y.iter().enumerate() {
            let expect: f64 = a.row_entries(row).iter().map(|&(c, v)| v * x[c]).sum();
            // The main diagonal contributes too; row_entries includes it.
            assert!((yr - expect).abs() < 1e-12, "row {row}: {yr} vs {expect}");
        }
    }

    #[test]
    fn matvec_f64_agrees_for_f64_storage() {
        let a = laplacian_3x3x3();
        let x: Vec<f64> = (0..27).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut y1 = vec![0.0; 27];
        let mut y2 = vec![0.0; 27];
        a.matvec(&x, &mut y1);
        a.matvec_f64(&x, &mut y2);
        for i in 0..27 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn f16_matvec_rounds_each_step() {
        // With storage fp16, products round: 0.1 is inexact, so A(0.1-vector)
        // differs from the f64 result but matches the step-by-step reference.
        let a16: DiaMatrix<F16> = laplacian_3x3x3().convert();
        let x = vec![F16::from_f64(0.1); 27];
        let mut y = vec![F16::ZERO; 27];
        a16.matvec(&x, &mut y);
        // Reference: same band order, explicit rounding.
        let m = a16.mesh();
        let (cx, cy, cz) = (1, 1, 1);
        let mut acc = F16::ZERO;
        for off in a16.offsets() {
            let v = a16.coeff(cx, cy, cz, *off);
            if m.neighbor(cx, cy, cz, off.dx, off.dy, off.dz).is_some() {
                let t = v * x[0];
                acc += t;
            }
        }
        assert_eq!(y[m.idx(cx, cy, cz)].to_bits(), acc.to_bits());
    }

    #[test]
    fn validate_catches_out_of_mesh_nonzero() {
        let mesh = Mesh3D::new(2, 2, 2);
        let mut a: DiaMatrix<f64> = DiaMatrix::new(mesh, &Offset3::seven_point());
        assert!(a.validate().is_ok());
        // Poke an illegal value directly into a band.
        let b = a.band_index(Offset3::new(1, 0, 0)).unwrap();
        let row = mesh.idx(1, 1, 1); // x+1 out of mesh
        a.band_mut(b)[row] = 5.0;
        assert!(a.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn set_out_of_mesh_panics() {
        let mesh = Mesh3D::new(2, 2, 2);
        let mut a: DiaMatrix<f64> = DiaMatrix::new(mesh, &Offset3::seven_point());
        a.set(1, 0, 0, Offset3::new(1, 0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_offsets_panic() {
        let mesh = Mesh3D::new(2, 2, 2);
        let _: DiaMatrix<f64> = DiaMatrix::new(mesh, &[Offset3::CENTER, Offset3::CENTER]);
    }

    #[test]
    fn convert_roundtrip_f64_f32() {
        let a = laplacian_3x3x3();
        let a32: DiaMatrix<f32> = a.convert();
        let back: DiaMatrix<f64> = a32.convert();
        for row in 0..27 {
            assert_eq!(a.row_entries(row), back.row_entries(row));
        }
    }

    #[test]
    fn norm_inf_of_laplacian() {
        // Interior row: |6| + 6*|-1| = 12.
        assert_eq!(laplacian_3x3x3().norm_inf(), 12.0);
    }

    #[test]
    fn nine_point_2d_offsets_have_zero_dz() {
        for off in Offset3::nine_point_2d() {
            assert_eq!(off.dz, 0);
        }
        assert_eq!(Offset3::nine_point_2d().len(), 9);
    }

    #[test]
    fn transpose_matvec_matches_explicit_transpose() {
        let mesh = Mesh3D::new(3, 3, 3);
        let a = crate::stencil7::convection_diffusion(mesh, (2.0, -1.0, 0.5), 1.0);
        let x: Vec<f64> = (0..27).map(|i| ((i * 5) % 13) as f64 * 0.25 - 1.0).collect();
        let mut y = vec![0.0; 27];
        a.matvec_transpose_f64(&x, &mut y);
        // Reference: accumulate row entries transposed.
        let mut expect = vec![0.0; 27];
        for (row, &xr) in x.iter().enumerate() {
            for (col, v) in a.row_entries(row) {
                expect[col] += v * xr;
            }
        }
        for i in 0..27 {
            assert!((y[i] - expect[i]).abs() < 1e-12, "i={i}: {} vs {}", y[i], expect[i]);
        }
    }

    #[test]
    fn transpose_equals_forward_for_symmetric_matrix() {
        let a = laplacian_3x3x3();
        let x: Vec<f64> = (0..27).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y1 = vec![0.0; 27];
        let mut y2 = vec![0.0; 27];
        a.matvec_f64(&x, &mut y1);
        a.matvec_transpose_f64(&x, &mut y2);
        for i in 0..27 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn residual_f64_zero_for_exact_solution() {
        let a = laplacian_3x3x3();
        let xs: Vec<f64> = (0..27).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut b = vec![0.0; 27];
        a.matvec_f64(&xs, &mut b);
        let r = a.residual_f64(&xs, &b);
        assert!(r.iter().all(|&v| v.abs() < 1e-12));
    }
}
