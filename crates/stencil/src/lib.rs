//! Structured-mesh stencil infrastructure for the wafer-scale BiCGStab
//! reproduction.
//!
//! The paper solves linear systems whose matrix is a 7-point (3D) or 9-point
//! (2D) stencil on a regular mesh, stored by diagonals ("we map the needed
//! portion of its nonzero diagonals to each core"). This crate provides:
//!
//! * [`scalar::Scalar`] — the numeric abstraction letting every operator and
//!   solver run in f64, f32 or software binary16,
//! * [`mesh`] — 3D/2D structured meshes with the paper's `Z`-fastest layout,
//! * [`dia`] — diagonal-storage sparse matrices ([`dia::DiaMatrix`]) with
//!   precision-faithful matvec (each band product rounds in storage
//!   precision, then accumulates in storage precision, exactly like the
//!   FIFO-decoupled on-wafer SpMV),
//! * [`stencil7`] / [`stencil9`] — 7-point 3D and 9-point 2D operator
//!   builders (Poisson, convection–diffusion),
//! * [`precond`] — the diagonal (Jacobi) preconditioning that makes the main
//!   diagonal all ones so only six off-diagonals need wafer storage,
//! * [`problem`] — reproducible problem generators,
//! * [`variable`] — heterogeneous and anisotropic diffusion operators (the
//!   matrix classes MFIX's multiphase physics produces),
//! * [`decomp`] — the X,Y → fabric, Z → core-memory mapping and the 2D block
//!   mapping, with per-core SRAM footprint accounting (the paper's
//!   "10 Z words ≈ 31 KB of 48 KB" and "38×38 blocks fit" claims).

#![warn(missing_docs)]

pub mod decomp;
pub mod dia;
pub mod mesh;
pub mod precond;
pub mod problem;
pub mod scalar;
pub mod stencil7;
pub mod stencil9;
pub mod variable;

pub use dia::{DiaMatrix, Offset3};
pub use mesh::{Mesh2D, Mesh3D};
pub use scalar::Scalar;
