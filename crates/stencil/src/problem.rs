//! Reproducible linear-system generators for tests and experiments.

use crate::dia::DiaMatrix;
use crate::mesh::Mesh3D;
use crate::precond::{jacobi_scale, ScaledSystem};
use crate::stencil7::convection_diffusion;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A complete test problem: matrix, right-hand side, and (when constructed
/// from a known solution) the exact solution.
#[derive(Clone, Debug)]
pub struct Problem {
    /// The system matrix (f64 master copy; narrow with
    /// [`DiaMatrix::convert`] for precision studies).
    pub matrix: DiaMatrix<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Exact solution if the problem was manufactured, else `None`.
    pub exact: Option<Vec<f64>>,
}

impl Problem {
    /// Jacobi-scales the problem to unit diagonal (the wafer's required
    /// form).
    pub fn preconditioned(&self) -> Problem {
        let ScaledSystem { matrix, rhs, .. } = jacobi_scale(&self.matrix, &self.rhs);
        Problem { matrix, rhs, exact: self.exact.clone() }
    }
}

/// Convection–diffusion problem with a manufactured smooth solution
/// `x(i,j,k) = sin-like product`, so the exact discrete solution is known.
pub fn manufactured(mesh: Mesh3D, velocity: (f64, f64, f64), seed: u64) -> Problem {
    let matrix = convection_diffusion(mesh, velocity, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Smooth plus small noise: representative magnitudes around O(1), which
    // keeps everything comfortably inside fp16 range.
    let exact: Vec<f64> = mesh
        .iter()
        .map(|(x, y, z)| {
            let (fx, fy, fz) =
                (x as f64 / mesh.nx as f64, y as f64 / mesh.ny as f64, z as f64 / mesh.nz as f64);
            (std::f64::consts::TAU * fx).sin() * (std::f64::consts::PI * fy).cos() * (1.0 - fz)
                + 0.01 * rng.gen_range(-1.0..1.0)
        })
        .collect();
    let mut rhs = vec![0.0; mesh.len()];
    matrix.matvec_f64(&exact, &mut rhs);
    Problem { matrix, rhs, exact: Some(exact) }
}

/// Random diagonally dominant nonsymmetric 7-point problem (stress test for
/// solver robustness).
pub fn random_dominant(mesh: Mesh3D, dominance: f64, seed: u64) -> Problem {
    assert!(dominance > 1.0, "dominance factor must exceed 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut matrix = convection_diffusion(mesh, (0.0, 0.0, 0.0), 1.0);
    // Perturb off-diagonals randomly, then set the diagonal to dominate.
    let offsets: Vec<_> = matrix.offsets().to_vec();
    for (bi, off) in offsets.iter().enumerate() {
        if off.is_center() {
            continue;
        }
        let band = matrix.band_mut(bi);
        for v in band.iter_mut() {
            if *v != 0.0 {
                *v = -rng.gen_range(0.25..1.0);
            }
        }
    }
    // Diagonal = dominance * sum |offdiag| per row.
    let center = matrix.band_index(crate::dia::Offset3::CENTER).unwrap();
    let mut diag = vec![0.0; mesh.len()];
    for (bi, off) in offsets.iter().enumerate() {
        if bi == center || off.is_center() {
            continue;
        }
        for (row, v) in matrix.band(bi).iter().enumerate() {
            diag[row] += v.abs();
        }
    }
    for (row, d) in diag.iter().enumerate() {
        matrix.band_mut(center)[row] = dominance * d.max(1e-3);
    }
    let exact: Vec<f64> = (0..mesh.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut rhs = vec![0.0; mesh.len()];
    matrix.matvec_f64(&exact, &mut rhs);
    Problem { matrix, rhs, exact: Some(exact) }
}

/// The lid-driven-cavity-like momentum problem shape used by Fig. 9
/// (100 × 400 × 100 at full size); `scale` divides each dimension for quick
/// runs. The actual Fig. 9 system is assembled by the `cfd` crate; this is a
/// structurally equivalent stand-in for stencil-level tests.
pub fn fig9_shape(scale: usize) -> Mesh3D {
    assert!(scale >= 1);
    Mesh3D::new((100 / scale).max(2), (400 / scale).max(2), (100 / scale).max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil7::diagonal_dominance_slack;

    #[test]
    fn manufactured_solution_is_consistent() {
        let p = manufactured(Mesh3D::new(6, 5, 4), (1.0, 0.0, -0.5), 42);
        let exact = p.exact.as_ref().unwrap();
        let r = p.matrix.residual_f64(exact, &p.rhs);
        assert!(r.iter().all(|&v| v.abs() < 1e-10));
    }

    #[test]
    fn manufactured_is_deterministic() {
        let a = manufactured(Mesh3D::new(4, 4, 4), (1.0, 1.0, 1.0), 7);
        let b = manufactured(Mesh3D::new(4, 4, 4), (1.0, 1.0, 1.0), 7);
        assert_eq!(a.rhs, b.rhs);
        let c = manufactured(Mesh3D::new(4, 4, 4), (1.0, 1.0, 1.0), 8);
        assert_ne!(a.rhs, c.rhs);
    }

    #[test]
    fn random_dominant_is_dominant() {
        let p = random_dominant(Mesh3D::new(5, 4, 3), 1.5, 11);
        assert!(diagonal_dominance_slack(&p.matrix) > 0.0);
        assert!(p.matrix.validate().is_ok());
    }

    #[test]
    fn preconditioned_has_unit_diagonal() {
        let p = manufactured(Mesh3D::new(4, 4, 4), (2.0, 1.0, 0.0), 3).preconditioned();
        assert!(crate::precond::has_unit_diagonal(&p.matrix));
        // Solution unchanged by row scaling.
        let r = p.matrix.residual_f64(p.exact.as_ref().unwrap(), &p.rhs);
        assert!(r.iter().all(|&v| v.abs() < 1e-10));
    }

    #[test]
    fn fig9_shape_scales() {
        assert_eq!(fig9_shape(1), Mesh3D::new(100, 400, 100));
        assert_eq!(fig9_shape(10), Mesh3D::new(10, 40, 10));
    }
}
