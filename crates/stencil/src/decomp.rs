//! Domain decomposition onto the wafer fabric, with SRAM footprint
//! accounting.
//!
//! 3D mapping (Fig. 3): "map X and Y across the two axes of the fabric, with
//! each core handling all of the Z dimension". Per core this needs the six
//! off-diagonals of the preconditioned matrix plus four iteration vectors:
//! "a storage requirement per core of 10 Z words. Thus, with Z = 1536 we are
//! using about 31 KB out of 48 KB".
//!
//! 2D mapping (§IV.2): a rectangular block of the mesh per core, nine stored
//! coefficient diagonals, the BiCGStab vectors, plus input/output halo rings.
//! "The local memory in each core is sufficient to ... hold a sub-block
//! up-to 38×38 in size, corresponding to geometries of 22800×22800 ...
//! When a core holds only an 8×8 region ... the overhead remains less
//! than 20%."

use crate::mesh::{Mesh2D, Mesh3D};

/// Per-core SRAM capacity of the CS-1: 48 KB.
pub const SRAM_BYTES: usize = 48 * 1024;

/// Bytes per fp16 word.
pub const FP16_BYTES: usize = 2;

/// Fixed per-core overhead we budget for code, FIFO buffers (the paper's
/// five 20-deep FIFOs), DSR state and scratch, when accounting the 2D
/// mapping.
pub const FIXED_OVERHEAD_BYTES: usize = 2048;

/// The 3D X,Y→fabric / Z→memory mapping.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Mapping3D {
    /// Fabric width used (= mesh X).
    pub fabric_w: usize,
    /// Fabric height used (= mesh Y).
    pub fabric_h: usize,
    /// Local vector length per core (= mesh Z).
    pub z: usize,
}

impl Mapping3D {
    /// Maps a mesh onto a fabric of at least `nx × ny` cores.
    ///
    /// # Panics
    /// Panics if the fabric is smaller than the mesh's X×Y extent.
    pub fn new(mesh: Mesh3D, fabric_w: usize, fabric_h: usize) -> Mapping3D {
        assert!(
            mesh.nx <= fabric_w && mesh.ny <= fabric_h,
            "mesh {}x{} exceeds fabric {}x{}",
            mesh.nx,
            mesh.ny,
            fabric_w,
            fabric_h
        );
        Mapping3D { fabric_w: mesh.nx, fabric_h: mesh.ny, z: mesh.nz }
    }

    /// The paper's configuration: 600×595×1536 mesh on a 602×595 fabric.
    pub fn paper() -> Mapping3D {
        Mapping3D::new(Mesh3D::paper_3d(), 602, 595)
    }

    /// Number of cores in use.
    pub fn cores(&self) -> usize {
        self.fabric_w * self.fabric_h
    }

    /// fp16 words per core: 6 matrix diagonals + 4 iteration vectors, each of
    /// length Z ("10 Z words"). The Z padding words of Listing 1 (`zm[Z+1]`,
    /// `v[Z+1]`, `u[Z+2]`) are counted in [`Mapping3D::bytes_per_core`]'s
    /// exact variant but are negligible.
    pub fn words_per_core(&self) -> usize {
        10 * self.z
    }

    /// Data bytes per core under the 10Z-word model.
    pub fn bytes_per_core(&self) -> usize {
        self.words_per_core() * FP16_BYTES
    }

    /// Exact Listing-1 allocation in bytes: `xp,xm,yp,ym,zp[Z]`, `zm[Z+1]`,
    /// `v[Z+1]`, `u[Z+2]`, the four BiCG vectors are `v`,`u` plus `p`,`r0`
    /// (two more `[Z]`), and the five 20-deep FIFOs.
    pub fn bytes_per_core_exact(&self) -> usize {
        let z = self.z;
        let vectors = 5 * z + (z + 1) + (z + 1) + (z + 2) + 2 * z;
        let fifos = 5 * 20;
        (vectors + fifos) * FP16_BYTES
    }

    /// `true` if the per-core data fits in SRAM.
    pub fn fits(&self) -> bool {
        self.bytes_per_core_exact() <= SRAM_BYTES
    }

    /// Largest Z that fits in SRAM under the 10Z model (with exact padding
    /// and FIFO overhead).
    pub fn max_z() -> usize {
        let budget = SRAM_BYTES / FP16_BYTES - 5 * 20 - 4; // words
        budget / 10
    }

    /// The contiguous global row range owned by core `(cx, cy)`.
    pub fn core_rows(&self, cx: usize, cy: usize) -> std::ops::Range<usize> {
        assert!(cx < self.fabric_w && cy < self.fabric_h, "core outside mapping");
        let start = (cx * self.fabric_h + cy) * self.z;
        start..start + self.z
    }
}

/// The 2D block-per-core mapping for the 9-point stencil.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Block2D {
    /// Block extent along X.
    pub bx: usize,
    /// Block extent along Y.
    pub by: usize,
}

impl Block2D {
    /// fp16 words stored per mesh point: 9 coefficient diagonals plus 7
    /// BiCGStab vectors (x, r, r̂₀, p, q, y, b).
    pub const WORDS_PER_POINT: usize = 16;

    /// Creates a block; extents must be nonzero.
    ///
    /// # Panics
    /// Panics if either extent is zero.
    pub fn new(bx: usize, by: usize) -> Block2D {
        assert!(bx > 0 && by > 0, "block extents must be nonzero");
        Block2D { bx, by }
    }

    /// Points in the block.
    pub fn points(&self) -> usize {
        self.bx * self.by
    }

    /// Points in the one-wide halo ring around the block.
    pub fn ring(&self) -> usize {
        2 * (self.bx + self.by) + 4
    }

    /// Data bytes per core: per-point storage plus input and output halo
    /// rings (one fp16 word each per ring point).
    pub fn bytes_per_core(&self) -> usize {
        (self.points() * Self::WORDS_PER_POINT + 2 * self.ring()) * FP16_BYTES
    }

    /// `true` if block data plus fixed overhead fits in SRAM.
    pub fn fits(&self) -> bool {
        self.bytes_per_core() + FIXED_OVERHEAD_BYTES <= SRAM_BYTES
    }

    /// The largest square block that fits — the paper's "up-to 38×38".
    pub fn max_square() -> usize {
        let mut n = 1;
        while Block2D::new(n + 1, n + 1).fits() {
            n += 1;
        }
        n
    }

    /// Redundant-work overhead of the halo exchange, as a fraction of the
    /// useful FMAC cycles.
    ///
    /// Model: the 9-point FMAC sweep spends 3 cycles per point (18 flops at
    /// SIMD-4 mixed throughput); each received halo value costs one extra
    /// datapath slot (the "redundant summation work" of §IV.2), and a full
    /// exchange delivers one ring of values per iteration at SIMD-4 across
    /// the four direction rounds — `ring` extra cycles total.
    pub fn overhead_fraction(&self) -> f64 {
        self.ring() as f64 / (3.0 * self.points() as f64)
    }

    /// Mesh geometry covered when every core of a `w × h` fabric holds this
    /// block.
    pub fn covered_mesh(&self, fabric_w: usize, fabric_h: usize) -> Mesh2D {
        Mesh2D::new(self.bx * fabric_w, self.by * fabric_h)
    }
}

/// Splits `n` items into `parts` nearly equal contiguous chunks (cluster
/// decomposition helper). The first `n % parts` chunks get one extra item.
pub fn split_even(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be nonzero");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mapping_uses_31kb_of_48() {
        let m = Mapping3D::paper();
        assert_eq!(m.z, 1536);
        assert_eq!(m.words_per_core(), 15_360);
        let kb = m.bytes_per_core() as f64 / 1024.0;
        assert!((29.0..32.0).contains(&kb), "expected ~31 KB, got {kb}");
        assert!(m.fits());
        assert_eq!(m.cores(), 600 * 595);
    }

    #[test]
    fn exact_footprint_close_to_model() {
        let m = Mapping3D::paper();
        let model = m.bytes_per_core() as i64;
        let exact = m.bytes_per_core_exact() as i64;
        assert!((exact - model).abs() < 512, "model {model} vs exact {exact}");
    }

    #[test]
    fn max_z_bounds() {
        let z = Mapping3D::max_z();
        assert!(z >= 1536, "paper's Z must fit, got max {z}");
        let m = Mapping3D::new(Mesh3D::new(2, 2, z), 2, 2);
        assert!(m.fits());
        let too_big = Mapping3D::new(Mesh3D::new(2, 2, z + 100), 2, 2);
        assert!(!too_big.fits());
    }

    #[test]
    #[should_panic(expected = "exceeds fabric")]
    fn oversize_mesh_panics() {
        Mapping3D::new(Mesh3D::new(700, 595, 10), 602, 595);
    }

    #[test]
    fn core_rows_partition_the_mesh() {
        let mesh = Mesh3D::new(3, 4, 5);
        let m = Mapping3D::new(mesh, 10, 10);
        let mut seen = vec![false; mesh.len()];
        for cx in 0..m.fabric_w {
            for cy in 0..m.fabric_h {
                for r in m.core_rows(cx, cy) {
                    assert!(!seen[r], "row {r} owned twice");
                    seen[r] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Ownership agrees with the mesh layout: core (x,y) owns (x,y,*).
        assert_eq!(m.core_rows(1, 2).start, mesh.idx(1, 2, 0));
    }

    #[test]
    fn max_square_block_is_38() {
        assert_eq!(Block2D::max_square(), 38, "paper claims up-to 38x38 blocks fit");
        assert!(Block2D::new(38, 38).fits());
        assert!(!Block2D::new(39, 39).fits());
    }

    #[test]
    fn block_38_covers_paper_geometry() {
        // "corresponding to geometries of 22800x22800" — 38 * 600 = 22800.
        let mesh = Block2D::new(38, 38).covered_mesh(600, 600);
        assert_eq!((mesh.nx, mesh.ny), (22_800, 22_800));
    }

    #[test]
    fn eight_by_eight_overhead_below_20_percent() {
        let o = Block2D::new(8, 8).overhead_fraction();
        assert!(o < 0.20, "paper claims <20% at 8x8, got {o}");
        assert!(o > 0.05, "model should show nontrivial overhead at 8x8, got {o}");
        // 8x8 blocks on a 600x600 fabric give the quoted 4800^2 mesh.
        let mesh = Block2D::new(8, 8).covered_mesh(600, 600);
        assert_eq!((mesh.nx, mesh.ny), (4800, 4800));
    }

    #[test]
    fn overhead_decreases_with_block_size() {
        let mut prev = f64::INFINITY;
        for n in [2, 4, 8, 16, 38] {
            let o = Block2D::new(n, n).overhead_fraction();
            assert!(o < prev, "overhead must shrink with block size");
            prev = o;
        }
        assert!(Block2D::new(38, 38).overhead_fraction() < 0.05);
    }

    #[test]
    fn split_even_covers_exactly() {
        for (n, p) in [(10, 3), (7, 7), (5, 8), (0, 2), (100, 1)] {
            let parts = split_even(n, p);
            assert_eq!(parts.len(), p);
            let total: usize = parts.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].len() >= w[1].len());
            }
        }
    }
}
