//! 9-point 2D stencil operator builders (the paper's §IV.2 mapping).
//!
//! "We sketch an implementation of SpMV (u = Av as above) for a 9-point
//! stencil in 2D. For the 2D problem we map a rectangular region of the mesh
//! of v to each core." The 9-point stencil couples a point to its 8
//! neighbors (including diagonals) plus itself.

use crate::dia::{DiaMatrix, Offset3};
use crate::mesh::Mesh2D;

/// The 9-point 2D Laplacian (Patankar/Mehrstellen weights): center `8/3`,
/// edge neighbors `-1/3`, corner neighbors `-1/3` — scaled by 3 to keep
/// coefficients exact in binary16: center `8`, all eight neighbors `-1`.
/// Symmetric, weakly diagonally dominant with Dirichlet boundaries.
pub fn laplace9(mesh: Mesh2D) -> DiaMatrix<f64> {
    let m3 = mesh.as_3d();
    let mut a = DiaMatrix::new(m3, &Offset3::nine_point_2d());
    for (x, y, _z) in m3.iter() {
        a.set(x, y, 0, Offset3::CENTER, 8.0);
        for off in &Offset3::nine_point_2d()[1..] {
            if m3.neighbor(x, y, 0, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, 0, *off, -1.0);
            }
        }
    }
    a
}

/// A nonsymmetric 2D 9-point operator: `laplace9` plus first-order upwind
/// convection along the axis directions (the diagonal couplings stay
/// symmetric). `velocity` is `(ux, uy)` in cell-Péclet units.
pub fn convection_diffusion9(mesh: Mesh2D, velocity: (f64, f64)) -> DiaMatrix<f64> {
    let m3 = mesh.as_3d();
    let mut a = laplace9(mesh);
    let (ux, uy) = velocity;
    for (x, y, _z) in m3.iter() {
        let mut extra_diag = 0.0;
        let tilt = |a: &mut DiaMatrix<f64>, off: Offset3, c: f64, d: &mut f64| {
            if c == 0.0 {
                return;
            }
            *d += c;
            if m3.neighbor(x, y, 0, off.dx, off.dy, off.dz).is_some() {
                let old = a.coeff(x, y, 0, off);
                a.set(x, y, 0, off, old - c);
            }
        };
        tilt(&mut a, Offset3::new(1, 0, 0), (-ux).max(0.0), &mut extra_diag);
        tilt(&mut a, Offset3::new(-1, 0, 0), ux.max(0.0), &mut extra_diag);
        tilt(&mut a, Offset3::new(0, 1, 0), (-uy).max(0.0), &mut extra_diag);
        tilt(&mut a, Offset3::new(0, -1, 0), uy.max(0.0), &mut extra_diag);
        let old = a.coeff(x, y, 0, Offset3::CENTER);
        a.set(x, y, 0, Offset3::CENTER, old + extra_diag);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil7::{diagonal_dominance_slack, is_symmetric};

    #[test]
    fn laplace9_structure() {
        let a = laplace9(Mesh2D::new(4, 5));
        assert!(a.validate().is_ok());
        assert!(is_symmetric(&a));
        // Interior row: 8 entries of -1 + diagonal 8 → row sum 0.
        let row = a.mesh().idx(2, 2, 0);
        let sum: f64 = a.row_entries(row).iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 0.0);
        assert_eq!(a.row_entries(row).len(), 9);
    }

    #[test]
    fn corner_row_has_four_entries() {
        let a = laplace9(Mesh2D::new(4, 5));
        // Corner (0,0): itself + E + N + NE = 4 entries.
        assert_eq!(a.row_entries(0).len(), 4);
    }

    #[test]
    fn convection_breaks_symmetry_keeps_dominance() {
        let mesh = Mesh2D::new(5, 5);
        let a = convection_diffusion9(mesh, (3.0, -1.5));
        assert!(a.validate().is_ok());
        assert!(!is_symmetric(&a));
        assert!(diagonal_dominance_slack(&a) >= -1e-12);
    }

    #[test]
    fn zero_velocity_reduces_to_laplace9() {
        let mesh = Mesh2D::new(4, 4);
        let a = convection_diffusion9(mesh, (0.0, 0.0));
        let l = laplace9(mesh);
        for row in 0..mesh.len() {
            assert_eq!(a.row_entries(row), l.row_entries(row));
        }
    }
}
