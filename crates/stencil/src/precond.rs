//! Diagonal (Jacobi) preconditioning.
//!
//! "With diagonal preconditioning the main diagonal is all ones. Therefore,
//! we only store six other diagonals." — the paper left-scales the system:
//! `(D⁻¹A) x = D⁻¹ b`. This module performs that scaling in f64 *before*
//! narrowing to storage precision, matching what a host would do before
//! loading coefficients onto the wafer.

use crate::dia::{DiaMatrix, Offset3};
use crate::scalar::Scalar;

/// A diagonally preconditioned system: `A' = D⁻¹ A` (unit main diagonal) and
/// `b' = D⁻¹ b`.
#[derive(Clone, Debug)]
pub struct ScaledSystem {
    /// The row-scaled matrix, main diagonal all ones.
    pub matrix: DiaMatrix<f64>,
    /// The row-scaled right-hand side.
    pub rhs: Vec<f64>,
    /// The original diagonal `D` (needed to map residuals back if desired).
    pub diag: Vec<f64>,
}

/// Applies Jacobi row scaling.
///
/// # Panics
/// Panics if the matrix has no main diagonal band, any diagonal entry is
/// zero, or `rhs` length mismatches.
pub fn jacobi_scale(a: &DiaMatrix<f64>, rhs: &[f64]) -> ScaledSystem {
    assert_eq!(rhs.len(), a.nrows(), "rhs length mismatch");
    let center = a.band_index(Offset3::CENTER).expect("matrix must have a main diagonal band");
    let diag: Vec<f64> = a.band(center).to_vec();
    for (i, &d) in diag.iter().enumerate() {
        assert!(d != 0.0, "zero diagonal at row {i}");
    }
    let mut matrix = a.clone();
    for b in 0..a.offsets().len() {
        let band = matrix.band_mut(b);
        for (i, v) in band.iter_mut().enumerate() {
            *v /= diag[i];
        }
    }
    let rhs = rhs.iter().zip(&diag).map(|(r, d)| r / d).collect();
    ScaledSystem { matrix, rhs, diag }
}

/// `true` if every main-diagonal entry is exactly one (what the wafer kernel
/// assumes: "the diagonal is all ones there is no FIFO and no
/// multiplication").
pub fn has_unit_diagonal<S: Scalar>(a: &DiaMatrix<S>) -> bool {
    match a.band_index(Offset3::CENTER) {
        Some(center) => a.band(center).iter().all(|&v| v == S::one()),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh3D;
    use crate::stencil7::convection_diffusion;
    use wse_float::F16;

    #[test]
    fn scaling_produces_unit_diagonal() {
        let mesh = Mesh3D::new(4, 4, 4);
        let a = convection_diffusion(mesh, (1.0, -0.5, 2.0), 1.0);
        let rhs = vec![1.0; mesh.len()];
        let sys = jacobi_scale(&a, &rhs);
        assert!(has_unit_diagonal(&sys.matrix));
        assert!(sys.matrix.validate().is_ok());
    }

    #[test]
    fn scaled_system_has_same_solution() {
        // If A x = b then D^-1 A x = D^-1 b: verify via residual.
        let mesh = Mesh3D::new(3, 3, 3);
        let a = convection_diffusion(mesh, (2.0, 0.0, -1.0), 1.0);
        let x: Vec<f64> = (0..mesh.len()).map(|i| (i % 7) as f64 * 0.25 - 0.75).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&x, &mut b);
        let sys = jacobi_scale(&a, &b);
        let mut ax = vec![0.0; mesh.len()];
        sys.matrix.matvec_f64(&x, &mut ax);
        for (axi, ri) in ax.iter().zip(&sys.rhs) {
            assert!((axi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diagonal_survives_f16_conversion() {
        // 1.0 is exact in binary16, so the "no multiply on the main
        // diagonal" optimization is sound after narrowing.
        let mesh = Mesh3D::new(3, 3, 3);
        let a = convection_diffusion(mesh, (1.0, 1.0, 1.0), 1.0);
        let sys = jacobi_scale(&a, &vec![0.0; mesh.len()]);
        let a16: DiaMatrix<F16> = sys.matrix.convert();
        assert!(has_unit_diagonal(&a16));
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let mesh = Mesh3D::new(2, 2, 2);
        let a: DiaMatrix<f64> = DiaMatrix::new(mesh, &Offset3::seven_point());
        jacobi_scale(&a, &vec![0.0; mesh.len()]);
    }
}
