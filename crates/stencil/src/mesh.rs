//! Structured meshes with the paper's storage layout.
//!
//! The 3D mesh `X × Y × Z` is mapped "X and Y across the two axes of the
//! fabric, with each core handling all of the Z dimension" (Fig. 3), so `z`
//! is the fastest-varying (unit-stride) index: a core's local vector segment
//! is the contiguous run `v[(x·Y + y)·Z ..][..Z]`.

/// A 3D structured mesh of `nx × ny × nz` points.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Mesh3D {
    /// Points along X (mapped to the fabric's first axis).
    pub nx: usize,
    /// Points along Y (mapped to the fabric's second axis).
    pub ny: usize,
    /// Points along Z (held entirely in one core's memory).
    pub nz: usize,
}

impl Mesh3D {
    /// Creates a mesh; all dimensions must be nonzero.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Mesh3D {
        assert!(nx > 0 && ny > 0 && nz > 0, "mesh dimensions must be nonzero");
        Mesh3D { nx, ny, nz }
    }

    /// The paper's measured problem: 600 × 595 × 1536.
    pub fn paper_3d() -> Mesh3D {
        Mesh3D::new(600, 595, 1536)
    }

    /// Total number of mesh points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if the mesh has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of point `(x, y, z)`, z fastest.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Mesh3D::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let z = idx % self.nz;
        let rest = idx / self.nz;
        (rest / self.ny, rest % self.ny, z)
    }

    /// Index of the neighbor at signed offset, or `None` at the boundary.
    #[inline]
    pub fn neighbor(
        &self,
        x: usize,
        y: usize,
        z: usize,
        dx: i32,
        dy: i32,
        dz: i32,
    ) -> Option<usize> {
        let nx = x as i64 + dx as i64;
        let ny_ = y as i64 + dy as i64;
        let nz_ = z as i64 + dz as i64;
        if nx < 0
            || ny_ < 0
            || nz_ < 0
            || nx >= self.nx as i64
            || ny_ >= self.ny as i64
            || nz_ >= self.nz as i64
        {
            None
        } else {
            Some(self.idx(nx as usize, ny_ as usize, nz_ as usize))
        }
    }

    /// Iterates all `(x, y, z)` coordinates in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nx).flat_map(move |x| (0..ny).flat_map(move |y| (0..nz).map(move |z| (x, y, z))))
    }

    /// `true` if `(x, y, z)` lies on any boundary face.
    #[inline]
    pub fn on_boundary(&self, x: usize, y: usize, z: usize) -> bool {
        x == 0 || y == 0 || z == 0 || x == self.nx - 1 || y == self.ny - 1 || z == self.nz - 1
    }
}

/// A 2D structured mesh of `nx × ny` points (used by the 9-point mapping).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Mesh2D {
    /// Points along X.
    pub nx: usize,
    /// Points along Y.
    pub ny: usize,
}

impl Mesh2D {
    /// Creates a mesh; both dimensions must be nonzero.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Mesh2D {
        assert!(nx > 0 && ny > 0, "mesh dimensions must be nonzero");
        Mesh2D { nx, ny }
    }

    /// Total number of mesh points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the mesh has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Views this 2D mesh as a degenerate 3D mesh (`nz = 1`) so the same
    /// diagonal-storage machinery serves both mappings.
    #[inline]
    pub fn as_3d(&self) -> Mesh3D {
        Mesh3D::new(self.nx, self.ny, 1)
    }

    /// Linear index of `(x, y)`, y fastest.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        x * self.ny + y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_z_fastest() {
        let m = Mesh3D::new(4, 3, 5);
        assert_eq!(m.idx(0, 0, 0), 0);
        assert_eq!(m.idx(0, 0, 1), 1);
        assert_eq!(m.idx(0, 1, 0), 5);
        assert_eq!(m.idx(1, 0, 0), 15);
        assert_eq!(m.len(), 60);
    }

    #[test]
    fn coords_inverts_idx() {
        let m = Mesh3D::new(3, 4, 6);
        for i in 0..m.len() {
            let (x, y, z) = m.coords(i);
            assert_eq!(m.idx(x, y, z), i);
        }
    }

    #[test]
    fn neighbor_respects_boundaries() {
        let m = Mesh3D::new(3, 3, 3);
        assert_eq!(m.neighbor(0, 0, 0, -1, 0, 0), None);
        assert_eq!(m.neighbor(0, 0, 0, 1, 0, 0), Some(m.idx(1, 0, 0)));
        assert_eq!(m.neighbor(2, 2, 2, 0, 0, 1), None);
        assert_eq!(m.neighbor(1, 1, 1, 0, 0, -1), Some(m.idx(1, 1, 0)));
    }

    #[test]
    fn iter_matches_storage_order() {
        let m = Mesh3D::new(2, 2, 2);
        let order: Vec<_> = m.iter().collect();
        for (i, &(x, y, z)) in order.iter().enumerate() {
            assert_eq!(m.idx(x, y, z), i);
        }
        assert_eq!(order.len(), m.len());
    }

    #[test]
    fn boundary_detection() {
        let m = Mesh3D::new(3, 3, 3);
        assert!(m.on_boundary(0, 1, 1));
        assert!(m.on_boundary(1, 2, 1));
        assert!(!m.on_boundary(1, 1, 1));
    }

    #[test]
    fn paper_mesh_dimensions() {
        let m = Mesh3D::paper_3d();
        assert_eq!(m.len(), 600 * 595 * 1536);
    }

    #[test]
    fn mesh2d_as_3d() {
        let m = Mesh2D::new(4, 7);
        assert_eq!(m.len(), 28);
        let m3 = m.as_3d();
        assert_eq!(m3.len(), 28);
        assert_eq!(m.idx(2, 3), m3.idx(2, 3, 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Mesh3D::new(0, 1, 1);
    }
}
