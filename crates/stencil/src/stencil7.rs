//! 7-point 3D stencil operator builders.
//!
//! These produce the classes of matrix the paper solves: the symmetric
//! Poisson operator and the **nonsymmetric** convection–diffusion operator
//! ("the BiCGstab solution of a nonsymmetric linear system arising from a
//! 7-point stencil finite volume approximation"). Boundaries are Dirichlet:
//! boundary couplings are folded into the right-hand side, so off-mesh
//! coefficients are structurally zero.

use crate::dia::{DiaMatrix, Offset3};
use crate::mesh::Mesh3D;

/// The 7-point Poisson (negative Laplacian) operator: diagonal `6`, each
/// in-mesh neighbor `-1`. Symmetric positive definite with Dirichlet
/// boundaries.
pub fn poisson(mesh: Mesh3D) -> DiaMatrix<f64> {
    let mut a = DiaMatrix::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 6.0);
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -1.0);
            }
        }
    }
    a
}

/// A finite-volume convection–diffusion operator with first-order upwinding:
///
/// ```text
///   -∇·(Γ ∇φ) + ∇·(u φ) = f
/// ```
///
/// `velocity` is the uniform convecting velocity `(ux, uy, uz)` (in units of
/// Γ/h, i.e. the cell Péclet numbers), `gamma` the diffusion coefficient.
/// Nonzero velocity makes the operator nonsymmetric — the case BiCGStab
/// exists for. The matrix is weakly diagonally dominant for any velocity
/// (upwinding guarantees it), so the systems are solvable and representative
/// of the MFIX momentum equations.
pub fn convection_diffusion(mesh: Mesh3D, velocity: (f64, f64, f64), gamma: f64) -> DiaMatrix<f64> {
    assert!(gamma > 0.0, "diffusion coefficient must be positive");
    let mut a = DiaMatrix::new(mesh, &Offset3::seven_point());
    let (ux, uy, uz) = velocity;
    // Face coefficients per axis: aW = Γ + max(u,0), aE = Γ + max(-u,0), etc.
    // (Patankar's upwind scheme on a uniform mesh with unit spacing.)
    let axis = |u: f64| -> (f64, f64) {
        let plus = gamma + (-u).max(0.0); // coupling to +axis neighbor
        let minus = gamma + u.max(0.0); // coupling to -axis neighbor
        (plus, minus)
    };
    let (xp, xm) = axis(ux);
    let (yp, ym) = axis(uy);
    let (zp, zm) = axis(uz);
    for (x, y, z) in mesh.iter() {
        let mut diag = 0.0;
        let put = |a: &mut DiaMatrix<f64>, off: Offset3, c: f64, diag: &mut f64| {
            // Dirichlet: the neighbor coupling always contributes to the
            // diagonal balance; the off-diagonal entry exists only in-mesh.
            *diag += c;
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, off, -c);
            }
        };
        put(&mut a, Offset3::new(1, 0, 0), xp, &mut diag);
        put(&mut a, Offset3::new(-1, 0, 0), xm, &mut diag);
        put(&mut a, Offset3::new(0, 1, 0), yp, &mut diag);
        put(&mut a, Offset3::new(0, -1, 0), ym, &mut diag);
        put(&mut a, Offset3::new(0, 0, 1), zp, &mut diag);
        put(&mut a, Offset3::new(0, 0, -1), zm, &mut diag);
        a.set(x, y, z, Offset3::CENTER, diag);
    }
    a
}

/// Checks weak diagonal dominance by rows: `|a_ii| >= Σ_{j≠i} |a_ij|`, with
/// strict dominance on at least one row. Returns the minimum slack
/// `|a_ii| - Σ|a_ij|` over all rows (non-negative for the operators built
/// here, strictly positive on boundary rows).
pub fn diagonal_dominance_slack(a: &DiaMatrix<f64>) -> f64 {
    let mesh = a.mesh();
    let mut min_slack = f64::INFINITY;
    for (x, y, z) in mesh.iter() {
        let mut diag = 0.0;
        let mut off_sum = 0.0;
        for off in a.offsets() {
            let v = a.coeff(x, y, z, *off);
            if off.is_center() {
                diag = v.abs();
            } else {
                off_sum += v.abs();
            }
        }
        min_slack = min_slack.min(diag - off_sum);
    }
    min_slack
}

/// `true` if the matrix is symmetric (test helper; O(n · stencil)).
pub fn is_symmetric(a: &DiaMatrix<f64>) -> bool {
    let mesh = a.mesh();
    for (x, y, z) in mesh.iter() {
        for off in a.offsets() {
            if off.is_center() {
                continue;
            }
            if let Some(nbr) = mesh.neighbor(x, y, z, off.dx, off.dy, off.dz) {
                let (nx, ny, nz) = mesh.coords(nbr);
                let mirror = Offset3::new(-off.dx, -off.dy, -off.dz);
                let fwd = a.coeff(x, y, z, *off);
                let back = a.coeff(nx, ny, nz, mirror);
                if (fwd - back).abs() > 1e-14 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_symmetric_and_dominant() {
        let a = poisson(Mesh3D::new(4, 3, 5));
        assert!(is_symmetric(&a));
        assert!(diagonal_dominance_slack(&a) >= 0.0);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn poisson_interior_row_sums_to_zero() {
        let a = poisson(Mesh3D::new(5, 5, 5));
        let row = a.mesh().idx(2, 2, 2);
        let sum: f64 = a.row_entries(row).iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn convection_makes_nonsymmetric() {
        let mesh = Mesh3D::new(4, 4, 4);
        let sym = convection_diffusion(mesh, (0.0, 0.0, 0.0), 1.0);
        assert!(is_symmetric(&sym));
        let nonsym = convection_diffusion(mesh, (2.0, 0.5, -1.0), 1.0);
        assert!(!is_symmetric(&nonsym));
        assert!(nonsym.validate().is_ok());
    }

    #[test]
    fn upwinding_preserves_dominance_at_any_peclet() {
        let mesh = Mesh3D::new(4, 4, 4);
        for pe in [0.1, 1.0, 10.0, 1000.0] {
            let a = convection_diffusion(mesh, (pe, -pe, pe * 0.5), 1.0);
            let slack = diagonal_dominance_slack(&a);
            assert!(slack >= -1e-12, "Pe {pe}: slack {slack}");
        }
    }

    #[test]
    fn pure_diffusion_matches_poisson_shape() {
        let mesh = Mesh3D::new(3, 3, 3);
        let a = convection_diffusion(mesh, (0.0, 0.0, 0.0), 1.0);
        let p = poisson(mesh);
        // Same couplings: diag 6Γ = 6, neighbors -1 (conv-diff keeps the
        // Dirichlet diagonal contribution at boundaries, Poisson uses 6
        // everywhere — identical for both definitions here).
        let row = mesh.idx(1, 1, 1);
        assert_eq!(a.row_entries(row), p.row_entries(row));
    }

    #[test]
    fn boundary_diagonal_keeps_dirichlet_contribution() {
        // At a corner the diagonal still counts all six face coefficients,
        // so dominance is strict there.
        let mesh = Mesh3D::new(3, 3, 3);
        let a = convection_diffusion(mesh, (0.0, 0.0, 0.0), 1.0);
        let corner: f64 = a.coeff(0, 0, 0, Offset3::CENTER);
        assert_eq!(corner, 6.0);
        let offs: f64 = a.row_entries(mesh.idx(0, 0, 0)).iter().map(|(_, v)| v.abs()).sum();
        // row_entries includes the diagonal: 6 + 3 neighbors = 9.
        assert_eq!(offs, 9.0);
    }
}
