//! Microbenchmarks of the software binary16 datapath (substrate for every
//! fp16 number in the paper: Table I's 40-of-44 half-precision operations).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wse_float::{dot_mixed, dot_pure_f16, fma16, F16};

fn bench_scalar_ops(c: &mut Criterion) {
    let a = F16::from_f64(1.2345);
    let b = F16::from_f64(-0.6789);
    let d = F16::from_f64(0.111);
    let mut g = c.benchmark_group("f16_scalar");
    g.bench_function("add", |bch| bch.iter(|| black_box(a) + black_box(b)));
    g.bench_function("mul", |bch| bch.iter(|| black_box(a) * black_box(b)));
    g.bench_function("fma", |bch| bch.iter(|| fma16(black_box(a), black_box(b), black_box(d))));
    g.bench_function("from_f32", |bch| bch.iter(|| F16::from_f32(black_box(1.234567f32))));
    g.bench_function("to_f32", |bch| bch.iter(|| black_box(a).to_f32()));
    g.finish();
}

fn bench_dots(c: &mut Criterion) {
    // Z = 1536 is the paper's per-core vector length.
    let n = 1536;
    let x: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 31) as f64 - 15.0) / 16.0)).collect();
    let y: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 17) as f64 - 8.0) / 16.0)).collect();
    let mut g = c.benchmark_group("f16_dot_z1536");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("mixed_16x32", |bch| bch.iter(|| dot_mixed(black_box(&x), black_box(&y))));
    g.bench_function("pure_16", |bch| bch.iter(|| dot_pure_f16(black_box(&x), black_box(&y))));
    g.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let n = 1536;
    let x: Vec<F16> = (0..n).map(|i| F16::from_f64((i % 13) as f64 / 16.0)).collect();
    let mut y: Vec<F16> = (0..n).map(|i| F16::from_f64((i % 7) as f64 / 8.0)).collect();
    let alpha = F16::from_f64(0.5);
    let mut g = c.benchmark_group("f16_axpy_z1536");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("fused", |bch| {
        bch.iter(|| {
            wse_float::simd::axpy_f16(black_box(alpha), black_box(&x), &mut y);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scalar_ops, bench_dots, bench_axpy);
criterion_main!(benches);
