//! CFD substrate benchmarks: the Table II workload (momentum / continuity
//! assembly, field update) and a complete SIMPLE iteration.

use cfd::continuity::assemble_pressure_correction;
use cfd::fields::FlowField;
use cfd::grid::{Component, StaggeredGrid};
use cfd::momentum::{assemble_momentum, FluidProps};
use cfd::simple::{SimpleParams, SimpleSolver};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn developed_field(n: usize) -> FlowField {
    let grid = StaggeredGrid::new(n, n, n, 1.0 / n as f64);
    let mut s = SimpleSolver::new(grid, SimpleParams::default());
    s.run(3);
    s.field
}

fn bench_momentum_assembly(c: &mut Criterion) {
    let f = developed_field(12);
    let props = FluidProps::default();
    let mut g = c.benchmark_group("cfd_assembly_12cubed");
    g.throughput(Throughput::Elements(f.grid.cells() as u64));
    g.bench_function("momentum_u", |b| {
        b.iter(|| assemble_momentum(black_box(&f), Component::U, &props))
    });
    let su = assemble_momentum(&f, Component::U, &props);
    let sv = assemble_momentum(&f, Component::V, &props);
    let sw = assemble_momentum(&f, Component::W, &props);
    g.bench_function("continuity", |b| {
        b.iter(|| assemble_pressure_correction(black_box(&f), &su.ap, &sv.ap, &sw.ap))
    });
    g.finish();
}

fn bench_simple_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfd_simple_iteration");
    g.sample_size(10);
    for n in [8usize, 12] {
        let grid = StaggeredGrid::new(n, n, n, 1.0 / n as f64);
        g.bench_function(format!("{n}cubed"), |b| {
            b.iter_batched(
                || SimpleSolver::new(grid, SimpleParams::default()),
                |mut s| {
                    s.iterate();
                    s
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_momentum_assembly, bench_simple_iteration);
criterion_main!(benches);
