//! Host-side solver benchmarks: the SpMV and full BiCGStab iterations that
//! Table I counts and Fig. 9 exercises, across precision policies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use solver::policy::{Fp32, Fp64, MixedF16};
use solver::{bicgstab, SolveOptions};
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use wse_float::F16;

fn bench_spmv(c: &mut Criterion) {
    let mesh = Mesh3D::new(24, 24, 24);
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 7).preconditioned();
    let n = mesh.len();
    let mut g = c.benchmark_group("host_spmv_24cubed");
    g.throughput(Throughput::Elements(n as u64));
    {
        let x: Vec<f64> = (0..n).map(|i| (i % 9) as f64 * 0.1).collect();
        let mut y = vec![0.0f64; n];
        g.bench_function("fp64", |b| b.iter(|| p.matrix.matvec(black_box(&x), &mut y)));
    }
    {
        let a32: DiaMatrix<f32> = p.matrix.convert();
        let x: Vec<f32> = (0..n).map(|i| (i % 9) as f32 * 0.1).collect();
        let mut y = vec![0.0f32; n];
        g.bench_function("fp32", |b| b.iter(|| a32.matvec(black_box(&x), &mut y)));
    }
    {
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let x: Vec<F16> = (0..n).map(|i| F16::from_f64((i % 9) as f64 * 0.1)).collect();
        let mut y = vec![F16::ZERO; n];
        g.bench_function("fp16(software)", |b| b.iter(|| a16.matvec(black_box(&x), &mut y)));
    }
    g.finish();
}

fn bench_bicgstab_iteration(c: &mut Criterion) {
    let mesh = Mesh3D::new(16, 16, 16);
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 7).preconditioned();
    let opts = SolveOptions { max_iters: 5, rtol: 0.0, record_true_residual: false };
    let mut g = c.benchmark_group("host_bicgstab_5iters_16cubed");
    g.bench_with_input(BenchmarkId::new("policy", "fp64"), &p, |b, p| {
        b.iter(|| bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts))
    });
    let a32: DiaMatrix<f32> = p.matrix.convert();
    let b32: Vec<f32> = p.rhs.iter().map(|&v| v as f32).collect();
    g.bench_function(BenchmarkId::new("policy", "fp32"), |b| {
        b.iter(|| bicgstab::<Fp32>(&a32, &b32, &opts))
    });
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    g.bench_function(BenchmarkId::new("policy", "mixed16/32"), |b| {
        b.iter(|| bicgstab::<MixedF16>(&a16, &b16, &opts))
    });
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_bicgstab_iteration);
criterion_main!(benches);
