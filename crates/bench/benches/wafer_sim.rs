//! Wafer-simulator benchmarks: the Listing-1 SpMV (E-HL's calibration
//! kernel), the Fig. 6 AllReduce, and a full on-wafer BiCGStab iteration.
//! Criterion measures host wall time; the *simulated cycle counts* these
//! kernels produce are what the `experiments headline` / `fig6` runs report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use wse_arch::Fabric;
use wse_core::allreduce::AllReduce;
use wse_core::bicgstab::WaferBicgstab;
use wse_core::spmv3d::WaferSpmv;
use wse_float::F16;

fn unit_diag_system(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>) {
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 1.0);
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -0.125);
            }
        }
    }
    let v: Vec<F16> =
        (0..mesh.len()).map(|i| F16::from_f64(((i % 8) as f64 - 4.0) * 0.25)).collect();
    (a.convert(), v)
}

fn bench_wafer_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("wafer_spmv");
    g.sample_size(10);
    for z in [128usize, 512] {
        let mesh = Mesh3D::new(4, 4, z);
        let (a, v) = unit_diag_system(mesh);
        let mut fabric = Fabric::new(4, 4);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        g.bench_with_input(BenchmarkId::new("4x4_fabric_z", z), &z, |b, _| {
            b.iter(|| spmv.run(&mut fabric, &v))
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("wafer_allreduce");
    g.sample_size(10);
    for n in [8usize, 24] {
        let mut fabric = Fabric::new(n, n);
        let ar = AllReduce::build(&mut fabric, n, n, 24, 25, 26);
        let values = vec![1.0f32; n * n];
        g.bench_with_input(BenchmarkId::new("fabric", n), &n, |b, _| {
            b.iter(|| ar.run(&mut fabric, &values))
        });
    }
    g.finish();
}

fn bench_wafer_bicgstab_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("wafer_bicgstab_iteration");
    g.sample_size(10);
    let mesh = Mesh3D::new(4, 4, 128);
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 3).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(4, 4);
    let solver = WaferBicgstab::build(&mut fabric, &a16);
    solver.load_rhs(&mut fabric, &b16);
    g.bench_function("4x4x128", |b| b.iter(|| solver.iterate(&mut fabric)));
    g.finish();
}

criterion_group!(benches, bench_wafer_spmv, bench_allreduce, bench_wafer_bicgstab_iteration);
criterion_main!(benches);
