//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * mixed (fp16×fp16→fp32) vs pure-fp16 dot accumulation — the reason for
//!   the hardware's mixed inner-product instruction,
//! * fused vs two-rounding multiply-accumulate,
//! * sequential vs pairwise (tree) reduction order — the AllReduce's
//!   association order,
//! * 3D Z-in-core vs 2D block-in-core mapping overhead (computed, not
//!   timed — printed by `experiments spmv2d`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wse_float::reduce::{sum_pairwise_f32, sum_sequential_f32};
use wse_float::{dot_mixed, dot_pure_f16, fma16, F16};

fn bench_dot_accumulation(c: &mut Criterion) {
    let n = 4096;
    let x: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 61) as f64 - 30.0) / 32.0)).collect();
    let mut g = c.benchmark_group("ablation_dot_accumulation");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("mixed_fp32_acc", |b| b.iter(|| dot_mixed(black_box(&x), black_box(&x))));
    g.bench_function("pure_fp16_acc", |b| b.iter(|| dot_pure_f16(black_box(&x), black_box(&x))));
    g.finish();

    // Accuracy side of the ablation (printed once; the benchmark above
    // gives the cost side).
    let exact: f64 = x.iter().map(|v| v.to_f64() * v.to_f64()).sum();
    let mixed_err = (dot_mixed(&x, &x) as f64 - exact).abs() / exact;
    let pure_err = (dot_pure_f16(&x, &x).to_f64() - exact).abs() / exact;
    println!("dot accumulation relative error: mixed {mixed_err:.2e} vs pure-fp16 {pure_err:.2e}");
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let a = F16::from_f64(1.0009765625);
    let b = F16::from_f64(0.99951171875);
    let acc = F16::from_f64(-1.0);
    let mut g = c.benchmark_group("ablation_fma");
    g.bench_function("fused_single_rounding", |bch| {
        bch.iter(|| fma16(black_box(a), black_box(b), black_box(acc)))
    });
    g.bench_function("two_roundings", |bch| {
        bch.iter(|| black_box(a) * black_box(b) + black_box(acc))
    });
    g.finish();
}

fn bench_reduction_order(c: &mut Criterion) {
    let n = 1 << 16;
    let v: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32 * 1e-3).collect();
    let mut g = c.benchmark_group("ablation_reduction_order");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("sequential", |b| b.iter(|| sum_sequential_f32(black_box(&v))));
    g.bench_function("pairwise_tree", |b| b.iter(|| sum_pairwise_f32(black_box(&v))));
    g.finish();
}

criterion_group!(benches, bench_dot_accumulation, bench_fused_vs_unfused, bench_reduction_order);
criterion_main!(benches);
