//! Benchmarks the static verifier itself: a lint pass must stay cheap
//! enough to run inside every debug-mode program build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;
use wse_arch::Fabric;
use wse_core::bicgstab::WaferBicgstab;
use wse_core::spmv3d::WaferSpmv;
use wse_float::F16;

fn unit_diag_system(mesh: Mesh3D) -> DiaMatrix<F16> {
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 1.0);
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -0.125);
            }
        }
    }
    a.convert()
}

fn bench_lint_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint_spmv");
    for side in [4usize, 8, 16] {
        let a = unit_diag_system(Mesh3D::new(side, side, 64));
        let mut fabric = Fabric::new(side, side);
        let _ = WaferSpmv::build(&mut fabric, &a);
        g.bench_with_input(BenchmarkId::new("fabric", side), &side, |b, _| {
            b.iter(|| wse_lint::lint(&fabric))
        });
    }
    g.finish();
}

fn bench_lint_bicgstab(c: &mut Criterion) {
    let a = unit_diag_system(Mesh3D::new(4, 4, 32));
    let mut fabric = Fabric::new(4, 4);
    let _ = WaferBicgstab::build(&mut fabric, &a);
    c.bench_function("lint_bicgstab_4x4", |b| b.iter(|| wse_lint::lint(&fabric)));
}

criterion_group!(benches, bench_lint_spmv, bench_lint_bicgstab);
criterion_main!(benches);
