//! Implementations of every reproduced table and figure.

use cfd::cavity::{fig9_momentum_system, Cavity};
use perf_model::allreduce::AllReduceModel;
use perf_model::balance::{cs1_balance, cs1_bytes_per_flop, reference_machines};
use perf_model::capacity::{
    campaign_hours_cluster, campaign_hours_cs1, capacity_table, paper_campaigns,
};
use perf_model::cluster::JouleModel;
use perf_model::cs1::Cs1Model;
use perf_model::mfix::{paper_table2, CycleCosts, MfixProjection};
use perf_model::opcounts;
use solver::policy::{Fp32, Fp64, MixedF16, PureF16};
use solver::refinement::{iterative_refinement, RefinementOptions};
use solver::study::{run_policy, PrecisionCurve};
use solver::{bicgstab, SolveOptions};
use stencil::decomp::{Block2D, Mapping3D};
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use wse_arch::Fabric;
use wse_core::allreduce::AllReduce;
use wse_core::bicgstab::WaferBicgstab;
use wse_core::routing::verify_tessellation;
use wse_core::spmv2d::WaferSpmv2d;
use wse_float::F16;

/// Result of the Table I experiment.
#[derive(Debug)]
pub struct Table1Result {
    /// Measured ops per meshpoint per iteration by kernel (mul, add).
    pub matvec: (f64, f64),
    /// Dot products.
    pub dot: (f64, f64),
    /// AXPY family.
    pub axpy: (f64, f64),
    /// Total per point per iteration.
    pub total: f64,
}

/// E-T1 — Table I: operations per meshpoint per iteration, measured by the
/// instrumented solver.
pub fn table1() -> Table1Result {
    let p = manufactured(Mesh3D::new(6, 6, 6), (1.0, 0.5, -0.5), 7).preconditioned();
    let opts = SolveOptions { max_iters: 10, rtol: 0.0, record_true_residual: false };
    let res = bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts);
    let pp = res.ops.per_point_per_iter(p.matrix.nrows(), res.iters);
    Table1Result {
        matvec: (pp.matvec_mul, pp.matvec_add),
        dot: (pp.dot_mul, pp.dot_add),
        axpy: (pp.axpy_mul, pp.axpy_add),
        total: pp.total(),
    }
}

/// Prints Table I next to the paper's values.
pub fn print_table1() {
    let t = table1();
    println!("== Table I: operations per meshpoint per iteration ==");
    println!(
        "{:<12} {:>8} {:>8}   (paper: SP+ SPx | mixed HP+ HPx SP+)",
        "Operation", "mul", "add"
    );
    println!("{:<12} {:>8.1} {:>8.1}   (12 12 | 12 12 0)", "Matvec (x2)", t.matvec.0, t.matvec.1);
    println!("{:<12} {:>8.1} {:>8.1}   ( 4  4 |  0  4 4)", "Dot (x4)", t.dot.0, t.dot.1);
    println!("{:<12} {:>8.1} {:>8.1}   ( 6  6 |  6  6 0)", "AXPY (x6)", t.axpy.0, t.axpy.1);
    println!("{:<12} total = {:.1}   (paper: 44; mixed split 40 hp + 4 sp)", "", t.total);
    println!(
        "paper-table check: total {} = hp {} + sp {}",
        opcounts::total_ops_per_point(),
        opcounts::mixed_hp_ops_per_point(),
        opcounts::mixed_sp_ops_per_point()
    );
}

/// Result rows of the Table II experiment.
#[derive(Debug)]
pub struct Table2Result {
    /// (step, measured cycles/point, paper low, paper high).
    pub rows: Vec<(&'static str, f64, f64, f64)>,
}

/// E-T2 — Table II: cycles per meshpoint for the SIMPLE steps, from the
/// instrumented CFD assembly converted with the datapath cycle costs.
pub fn table2(n: usize, iters: usize) -> Table2Result {
    let mut cavity = Cavity::new(n, n, n, 0.05);
    cavity.run(iters);
    let counts = cavity.solver.counts;
    let cells = cavity.solver.field.grid.cells() * iters;
    let costs = CycleCosts::default();
    let conv = |c: cfd::opcount::OpClassCounts, per: usize| -> f64 {
        let pp = c.per_point(per);
        costs.cycles(pp.merge, pp.flop, pp.sqrt, pp.div, pp.transport)
    };
    let paper = paper_table2();
    // Momentum counts accumulate over three components; report per
    // component like the paper's per-equation row.
    let rows = vec![
        ("Initialization", conv(counts.initialization, cells), paper[0].total.0, paper[0].total.1),
        ("Momentum", conv(counts.momentum, 3 * cells), paper[1].total.0, paper[1].total.1),
        ("Continuity", conv(counts.continuity, cells), paper[2].total.0, paper[2].total.1),
        ("Field Update", conv(counts.field_update, cells), paper[3].total.0, paper[3].total.1),
    ];
    Table2Result { rows }
}

/// Prints Table II (measured vs published).
pub fn print_table2(n: usize, iters: usize) {
    let t = table2(n, iters);
    println!("== Table II: cycles per meshpoint for SIMPLE (excluding solver) ==");
    println!("{:<16} {:>14} {:>18}", "Step", "ours (cycles)", "paper (low-high)");
    for (step, ours, lo, hi) in &t.rows {
        println!("{:<16} {:>14.1} {:>11.0}-{:<6.0}", step, ours, lo, hi);
    }
    println!("(our single-phase constant-property model has no equation-of-state or");
    println!(" property evaluations, so its Momentum/Continuity counts sit at or below");
    println!(" the published lower bounds — the bounds themselves are asserted in tests)");
}

/// E-F1 — Fig. 1: the machine-balance landscape.
pub fn print_fig1() {
    println!("== Fig. 1: flops per word of memory / interconnect bandwidth ==");
    println!("{:<28} {:>6} {:>12} {:>12}", "Machine", "year", "mem", "network");
    for m in reference_machines() {
        println!(
            "{:<28} {:>6} {:>12.1} {:>12.0}",
            m.name, m.year, m.flops_per_mem_word, m.flops_per_net_word
        );
    }
    let c = cs1_balance();
    println!(
        "{:<28} {:>6} {:>12.2} {:>12.1}   <-- the bottom of the scale",
        c.name, c.year, c.flops_per_mem_word, c.flops_per_net_word
    );
    println!("CS-1 moves {:.0} bytes to/from memory per flop (paper: three)", cs1_bytes_per_flop());
}

/// E-F5 — Fig. 5: tessellation routing validity.
pub fn fig5() -> Result<(), String> {
    for (w, h) in [(4, 4), (16, 16), (64, 64), (602, 595)] {
        verify_tessellation(w, h)?;
    }
    Ok(())
}

/// Prints the Fig. 5 check plus a sample color grid.
pub fn print_fig5() {
    println!("== Fig. 5: tessellation routing pattern ==");
    for y in 0..8 {
        let row: Vec<String> =
            (0..8).map(|x| wse_core::routing::spmv_color(x, y).to_string()).collect();
        println!("  {}", row.join(" "));
    }
    match fig5() {
        Ok(()) => println!("collision-free on every tested size up to 602x595 ✓"),
        Err(e) => println!("VIOLATION: {e}"),
    }
}

/// Result of the Fig. 6 experiment.
#[derive(Debug)]
pub struct Fig6Result {
    /// Measured `(w, h, cycles)` on the simulator.
    pub measured: Vec<(usize, usize, u64)>,
    /// Fitted cycles-per-hop slope.
    pub hop_factor: f64,
    /// Extrapolated full-machine latency in µs at the model clock.
    pub full_machine_us: f64,
}

/// E-F6 — Fig. 6: AllReduce — simulate, fit the latency model, extrapolate
/// to the full wafer.
pub fn fig6() -> Fig6Result {
    let mut measured = Vec::new();
    for (w, h) in [(8, 8), (16, 16), (32, 32), (48, 48)] {
        let mut fabric = Fabric::new(w, h);
        let ar = AllReduce::build(&mut fabric, w, h, 24, 25, 26);
        let (out, cycles) = ar.run(&mut fabric, &vec![1.0; w * h]);
        assert_eq!(out[0], (w * h) as f32, "allreduce correctness");
        measured.push((w, h, cycles));
    }
    let mut model = AllReduceModel::default();
    model.calibrate(&measured);
    let cs1 = Cs1Model::default();
    Fig6Result {
        measured,
        hop_factor: model.hop_factor,
        full_machine_us: model.time_us(602, 595, cs1.clock_ghz),
    }
}

/// Prints the Fig. 6 experiment.
pub fn print_fig6() {
    let r = fig6();
    println!("== Fig. 6: AllReduce on the fabric ==");
    for (w, h, c) in &r.measured {
        println!(
            "  {w:>3} x {h:<3} fabric: {c:>5} cycles  ({:.2} cycles/hop-diameter)",
            *c as f64 / (w + h) as f64
        );
    }
    println!("fitted cycles/hop = {:.2} (paper: ~10% over the diameter)", r.hop_factor);
    println!("extrapolated 602x595 machine: {:.2} us  (paper: under 1.5 us)", r.full_machine_us);
}

/// One calibration point of the headline experiment:
/// `(w, h, z, spmv, dot, allreduce, update, total)` cycles.
pub type CyclePoint = (usize, usize, usize, u64, u64, u64, u64, u64);

/// Result of the headline experiment.
#[derive(Debug)]
pub struct HeadlineResult {
    /// Measured simulator cycle breakdown per iteration at the calibration
    /// points.
    pub measured: Vec<CyclePoint>,
    /// Predicted full-scale iteration time (µs).
    pub time_us: f64,
    /// Predicted PFLOPS.
    pub pflops: f64,
    /// Predicted utilization of used-core peak.
    pub utilization: f64,
}

/// E-HL — §V: run the full wafer BiCGStab on small fabrics, calibrate the
/// cycle model, and predict the 600×595×1536 headline.
pub fn headline() -> HeadlineResult {
    let mut measured = Vec::new();
    let mut spmv_samples = Vec::new();
    for (w, h, z) in [(6, 6, 128), (6, 6, 384), (8, 8, 256)] {
        let p = manufactured(Mesh3D::new(w, h, z), (1.0, -0.5, 0.5), 3).preconditioned();
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut fabric = Fabric::new(w, h);
        let solver = WaferBicgstab::build(&mut fabric, &a16);
        solver.load_rhs(&mut fabric, &b16);
        let c = solver.iterate(&mut fabric);
        measured.push((w, h, z, c.spmv, c.dot, c.allreduce, c.update, c.total()));
        spmv_samples.push((z, c.spmv / 2)); // per-SpMV cycles
    }
    let mut model = Cs1Model::default();
    model.calibrate_spmv(&spmv_samples);
    let p = model.predict_headline();
    HeadlineResult { measured, time_us: p.time_us, pflops: p.pflops, utilization: p.utilization }
}

/// Prints the headline experiment.
pub fn print_headline() {
    let r = headline();
    println!("== §V headline: BiCGStab iteration on the wafer ==");
    println!("simulator calibration runs (cycles per iteration):");
    println!(
        "  {:>5} {:>5} {:>6} {:>8} {:>7} {:>10} {:>8} {:>8}",
        "w", "h", "z", "spmv", "dot", "allreduce", "update", "total"
    );
    for (w, h, z, s, d, a, u, t) in &r.measured {
        println!("  {w:>5} {h:>5} {z:>6} {s:>8} {d:>7} {a:>10} {u:>8} {t:>8}");
    }
    println!("prediction for 600 x 595 x 1536 on the 602x595 fabric:");
    println!("  time/iteration = {:.1} us      (paper measured: 28.1 us)", r.time_us);
    println!("  achieved       = {:.2} PFLOPS  (paper: 0.86 PFLOPS)", r.pflops);
    println!(
        "  utilization    = {:.0}%         (paper: about one third of peak)",
        r.utilization * 100.0
    );
}

/// E-F7/E-F8 — cluster strong scaling curves.
pub fn scaling_curve(n: usize) -> Vec<(usize, f64)> {
    JouleModel::default().scaling_curve(n, &JouleModel::paper_core_counts())
}

/// Prints Figs. 7 and 8 plus the CS-1 comparison line, with both the
/// analytic model and the rank-level simulation side by side.
pub fn print_fig7_fig8() {
    let cs1_us = Cs1Model::default().predict_headline().time_us;
    let mut sim = cluster_sim::ClusterSim::new(42);
    for (fig, n) in [("Fig. 7", 370usize), ("Fig. 8", 600)] {
        println!("== {fig}: scaling of BiCGStab solve time on the cluster, {n}^3 mesh ==");
        println!(
            "  {:>8} {:>14} {:>14} {:>10}",
            "cores", "model ms/iter", "sim ms/iter", "speedup"
        );
        let curve = scaling_curve(n);
        let sim_curve = sim.scaling_curve(n, &JouleModel::paper_core_counts());
        let t0 = curve[0].1;
        for ((p, t), (_, ts)) in curve.iter().zip(&sim_curve) {
            println!("  {:>8} {:>14.2} {:>14.2} {:>9.1}x", p, t * 1e3, ts * 1e3, t0 / t);
        }
        if n == 600 {
            let ratio = curve.last().unwrap().1 / (cs1_us * 1e-6);
            println!(
                "  CS-1 (modeled): {:.1} us/iteration -> cluster/CS-1 = {:.0}x (paper: about 214x)",
                cs1_us, ratio
            );
        } else {
            println!("  (note the flattening beyond 8K cores — the paper's \"failure to scale\")");
        }
    }
}

/// Fig. 9 curves for the three policies.
#[derive(Debug)]
pub struct Fig9Result {
    /// fp64 reference curve.
    pub fp64: PrecisionCurve,
    /// fp32 curve ("Single precision").
    pub fp32: PrecisionCurve,
    /// Mixed fp16/fp32 curve ("Mixed sp/hp").
    pub mixed: PrecisionCurve,
    /// Pure-fp16 ablation curve.
    pub pure16: PrecisionCurve,
}

/// E-F9 — Fig. 9: normwise relative residual under each precision policy on
/// a momentum system from the (scaled) 100×400×100 cavity.
pub fn fig9(scale: usize, iters: usize) -> Fig9Result {
    let sys = fig9_momentum_system(scale, 3);
    let scaled = stencil::precond::jacobi_scale(&sys.matrix, &sys.rhs);
    let opts = SolveOptions { max_iters: iters, rtol: 1e-14, record_true_residual: true };
    Fig9Result {
        fp64: run_policy::<Fp64>(&scaled.matrix, &scaled.rhs, &opts),
        fp32: run_policy::<Fp32>(&scaled.matrix, &scaled.rhs, &opts),
        mixed: run_policy::<MixedF16>(&scaled.matrix, &scaled.rhs, &opts),
        pure16: run_policy::<PureF16>(&scaled.matrix, &scaled.rhs, &opts),
    }
}

/// Prints the Fig. 9 series.
pub fn print_fig9(scale: usize, iters: usize) {
    let r = fig9(scale, iters);
    println!("== Fig. 9: normwise relative residual (momentum system, 100x400x100 / {scale}) ==");
    println!(
        "  {:>4} {:>14} {:>14} {:>14} {:>14}",
        "iter", "fp64", "fp32", "mixed sp/hp", "pure fp16"
    );
    let n = r.fp32.residuals.len().max(r.mixed.residuals.len());
    for i in 0..n {
        let g = |c: &PrecisionCurve| -> String {
            c.residuals.get(i).map_or("-".into(), |v| format!("{v:.3e}"))
        };
        println!(
            "  {:>4} {:>14} {:>14} {:>14} {:>14}",
            i + 1,
            g(&r.fp64),
            g(&r.fp32),
            g(&r.mixed),
            g(&r.pure16)
        );
    }
    println!(
        "mixed plateaus at {:.1e} (paper: ~1e-2); fp32 reaches {:.1e}",
        r.mixed.best(),
        r.fp32.best()
    );
    // Conditioning context: the plateau level is ~κ·ε₁₆ (the paper:
    // "the growth of rounding errors ... explains the loss of an
    // additional factor of 10").
    let sys = fig9_momentum_system(scale, 3);
    let scaled = stencil::precond::jacobi_scale(&sys.matrix, &sys.rhs);
    let est = solver::spectral::estimate_condition(&scaled.matrix, 60);
    println!(
        "estimated condition number of the (Jacobi-scaled) system: {:.1} -> plateau ~ k*eps16 = {:.1e}",
        est.kappa,
        est.kappa * f64::powi(2.0, -11)
    );
}

/// E-2D result.
#[derive(Debug)]
pub struct Spmv2dResult {
    /// Largest square block fitting in SRAM.
    pub max_block: usize,
    /// Mesh covered on a 600-wide fabric at that block.
    pub covered: (usize, usize),
    /// Overhead fraction at 8×8 blocks.
    pub overhead_8x8: f64,
    /// Functional check: cycles for an 8×8-block run on a 3×3 fabric.
    pub cycles_3x3_8x8: u64,
}

/// E-2D — §IV.2: the 2D mapping claims.
pub fn spmv2d_experiment() -> Spmv2dResult {
    let max_block = Block2D::max_square();
    let covered = {
        let m = Block2D::new(max_block, max_block).covered_mesh(600, 600);
        (m.nx, m.ny)
    };
    let overhead_8x8 = Block2D::new(8, 8).overhead_fraction();
    // Functional run.
    let block = Block2D::new(8, 8);
    let mesh = block.covered_mesh(3, 3);
    let m3 = mesh.as_3d();
    let mut a = DiaMatrix::<f64>::new(m3, &stencil::dia::Offset3::nine_point_2d());
    for (x, y, _z) in m3.iter() {
        a.set(x, y, 0, stencil::dia::Offset3::CENTER, 1.0);
        for off in &stencil::dia::Offset3::nine_point_2d()[1..] {
            if m3.neighbor(x, y, 0, off.dx, off.dy, 0).is_some() {
                a.set(x, y, 0, *off, -0.125);
            }
        }
    }
    let a16: DiaMatrix<F16> = a.convert();
    let v: Vec<F16> = (0..mesh.len()).map(|i| F16::from_f64(((i % 8) as f64) * 0.125)).collect();
    let mut fabric = Fabric::new(3, 3);
    let spmv = WaferSpmv2d::build(&mut fabric, &a16, block);
    let (_, cycles) = spmv.run(&mut fabric, &v);
    Spmv2dResult { max_block, covered, overhead_8x8, cycles_3x3_8x8: cycles }
}

/// Prints the 2D-mapping experiment.
pub fn print_spmv2d() {
    let r = spmv2d_experiment();
    println!("== §IV.2: 2D 9-point mapping ==");
    println!("largest square block fitting 48 KB: {} (paper: up-to 38x38)", r.max_block);
    println!(
        "covered geometry on a 600x600 fabric: {}x{} (paper: 22800x22800)",
        r.covered.0, r.covered.1
    );
    println!("halo overhead at 8x8 blocks: {:.1}% (paper: less than 20%)", r.overhead_8x8 * 100.0);
    println!("functional 8x8-block run on 3x3 fabric: {} cycles", r.cycles_3x3_8x8);
    // The paper: "The efficiency of this approach is approximately the same
    // as for the 3D mapping" — measure both solvers on 256-point problems.
    {
        use stencil::problem::manufactured;
        use wse_core::bicgstab2d::WaferBicgstab2d;
        let mesh3 = Mesh3D::new(4, 4, 16);
        let p3 = manufactured(mesh3, (1.0, -0.5, 0.5), 3).preconditioned();
        let a3: DiaMatrix<F16> = p3.matrix.convert();
        let b3: Vec<F16> = p3.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut f3 = Fabric::new(4, 4);
        let s3 = WaferBicgstab::build(&mut f3, &a3);
        s3.load_rhs(&mut f3, &b3);
        let c3 = s3.iterate(&mut f3).total() as f64 / 256.0;

        let block = Block2D::new(4, 4);
        let mesh2 = block.covered_mesh(4, 4);
        let a2d = stencil::stencil9::convection_diffusion9(mesh2, (1.0, -0.5));
        let exact: Vec<f64> = (0..mesh2.len()).map(|i| ((i % 9) as f64) * 0.125).collect();
        let mut b2d = vec![0.0; mesh2.len()];
        a2d.matvec_f64(&exact, &mut b2d);
        let sys = stencil::precond::jacobi_scale(&a2d, &b2d);
        let a16: DiaMatrix<F16> = sys.matrix.convert();
        let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut f2 = Fabric::new(4, 4);
        let s2 = WaferBicgstab2d::build(&mut f2, &a16, block);
        s2.load_rhs(&mut f2, &b16);
        let c2 = s2.iterate(&mut f2) as f64 / 256.0;
        println!(
            "BiCGStab cycles/meshpoint/iteration: 3D mapping {c3:.1}, 2D mapping {c2:.1} \
             (paper: \"approximately the same\")"
        );
    }
    println!("block-size overhead sweep:");
    for n in [2usize, 4, 8, 16, 38] {
        println!("  {:>2}x{:<2}: {:>5.1}%", n, n, Block2D::new(n, n).overhead_fraction() * 100.0);
    }
}

/// E-MEM — §IV storage accounting.
pub fn print_memory() {
    let m = Mapping3D::paper();
    println!("== §IV: per-core storage of the 3D mapping ==");
    println!("Z = {}, words/core = {} (paper: 10 Z)", m.z, m.words_per_core());
    println!(
        "bytes/core = {} ({:.1} KB of 48 KB; paper: about 31 KB)",
        m.bytes_per_core(),
        m.bytes_per_core() as f64 / 1024.0
    );
    println!("exact Listing-1 allocation: {} bytes", m.bytes_per_core_exact());
    println!("largest Z that fits: {} (paper runs 1536)", Mapping3D::max_z());
}

/// E-MFX — §VI.A projection.
pub fn print_mfix() {
    let rate = MfixProjection::default().project();
    println!("== §VI.A: MFIX SIMPLE on the CS-1 (600^3, 15 SIMPLE iters/step) ==");
    println!(
        "projected rate: {:.0} - {:.0} timesteps/s (paper: 80 - 125)",
        rate.steps_per_sec_low, rate.steps_per_sec_high
    );
    println!(
        "us per Z meshpoint per SIMPLE iteration: {:.2} - {:.2} (paper: \"roughly two\")",
        rate.us_per_z_point.0, rate.us_per_z_point.1
    );
    println!("speedup vs 16,384-core Joule: {:.0}x (paper: above 200x)", rate.speedup_vs_joule);
}

/// Extension E-IR — §VI.B's "correction scheme": iterative refinement with
/// a mixed-precision inner solver, breaking the Fig. 9 plateau.
pub fn print_refinement(scale: usize) {
    let sys = fig9_momentum_system(scale, 3);
    let scaled = stencil::precond::jacobi_scale(&sys.matrix, &sys.rhs);
    println!("== §VI.B extension: mixed-precision iterative refinement ==");
    let plain = run_policy::<MixedF16>(
        &scaled.matrix,
        &scaled.rhs,
        &SolveOptions { max_iters: 16, rtol: 1e-14, record_true_residual: true },
    );
    println!("plain mixed-precision BiCGStab plateau: {:.2e}", plain.best());
    let refined = iterative_refinement::<MixedF16>(
        &scaled.matrix,
        &scaled.rhs,
        &RefinementOptions { max_outer: 25, inner_iters: 8, rtol: 1e-10 },
    );
    println!("iterative refinement (8 fp16 inner iterations per outer pass):");
    for rec in &refined.history.records {
        println!("  outer {:>2}: |r|/|b| = {:.3e}", rec.iter, rec.true_rel);
    }
    println!(
        "converged = {} after {} outer passes / {} total inner iterations",
        refined.converged, refined.outer_iters, refined.inner_total
    );
    println!("(fp16 inner arithmetic, fp64 answer — the paper's suggested remedy works)");
}

/// Extension E-COMM — communication fusion/hiding: measured on the
/// simulator (standard vs fused ω-reduction), extrapolated by the model.
pub fn print_comm_hiding() {
    use stencil::problem::manufactured;
    use wse_core::bicgstab::WaferBicgstab;
    println!("== §IV.3 extension: blocking vs fused/hidden reductions ==");
    println!("simulator, 16x16 fabric, z = 32 (one iteration):");
    let mesh = Mesh3D::new(16, 16, 32);
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 3).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    for fused in [false, true] {
        let mut fabric = Fabric::new(16, 16);
        let solver = if fused {
            WaferBicgstab::build_fused(&mut fabric, &a16)
        } else {
            WaferBicgstab::build(&mut fabric, &a16)
        };
        solver.load_rhs(&mut fabric, &b16);
        let c = solver.iterate(&mut fabric);
        println!(
            "  {:<9} allreduce {:>5} cycles, total {:>6} cycles",
            if fused { "fused" } else { "standard" },
            c.allreduce,
            c.total()
        );
    }
    let m = Cs1Model::default();
    println!("model extrapolation to 600x595x1536:");
    for (name, p) in [
        ("standard (4 blocking rounds)", m.predict_headline()),
        ("fused omega-step (3.5 rounds)", m.predict_iteration_fused(600, 595, 1536)),
        ("pipelined (reductions hidden)", m.predict_iteration_pipelined(600, 595, 1536)),
    ] {
        println!(
            "  {:<30} {:>6.1} us/iter  {:>5.2} PFLOPS  (allreduce {:>5.0} cycles)",
            name, p.time_us, p.pflops, p.allreduce_cycles
        );
    }
}

/// E-PWR — §I's performance-per-watt claim.
pub fn print_energy() {
    use perf_model::energy::{cluster_energy, cs1_energy, energy_advantage};
    println!("== §I: energy per BiCGStab iteration ==");
    for e in [cs1_energy(), cluster_energy()] {
        println!(
            "  {:<30} {:>7.0} kW  {:>10.6} s/iter  {:>8.2} J/iter  {:>10.3e} J/point",
            e.name, e.kw, e.time_per_iter, e.joules_per_iter, e.joules_per_point
        );
    }
    println!(
        "energy advantage per meshpoint: {:.0}x (the paper: 'beyond what has been reported')",
        energy_advantage()
    );
}

/// Extension E-CAP — §VIII.B capacity frontier and campaign use cases.
pub fn print_capacity() {
    let m = Cs1Model::default();
    println!("== §VIII.B: memory capacity frontier ==");
    println!("{:<16} {:>9} {:>8} {:>16}", "generation", "SRAM", "max Z", "max meshpoints");
    for (g, z, pts) in capacity_table(&m) {
        println!("{:<16} {:>6.0} GB {:>8} {:>16}", g.name, g.sram_gib, z, pts);
    }
    println!(
        "
campaign use cases (CS-1 at the §VI.A rate vs 16,384-core cluster):"
    );
    println!("{:<36} {:>12} {:>14}", "campaign", "wafer", "cluster");
    for c in paper_campaigns() {
        println!(
            "{:<36} {:>10.2} h {:>12.0} h",
            c.name,
            campaign_hours_cs1(&c),
            campaign_hours_cluster(&c)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_measures_44_ops() {
        let t = table1();
        assert_eq!(t.total, 44.0);
        assert_eq!(t.matvec, (12.0, 12.0));
        assert_eq!(t.dot, (4.0, 4.0));
        assert_eq!(t.axpy, (6.0, 6.0));
    }

    #[test]
    fn table2_measured_cycles_do_not_exceed_paper_highs() {
        let t = table2(6, 2);
        for (step, ours, _lo, hi) in &t.rows {
            assert!(ours <= hi, "{step}: {ours} > paper high {hi}");
            assert!(*ours > 0.0, "{step} must be nonzero");
        }
    }

    #[test]
    fn fig5_routing_is_valid() {
        assert!(fig5().is_ok());
    }

    #[test]
    fn fig6_extrapolates_under_2us() {
        let r = fig6();
        assert!(r.full_machine_us < 2.0, "got {} us", r.full_machine_us);
        assert!((0.8..2.0).contains(&r.hop_factor), "hop factor {}", r.hop_factor);
    }

    #[test]
    fn headline_prediction_in_band() {
        let r = headline();
        // The simulator-calibrated prediction must land near the paper's
        // measured 28.1 µs / 0.86 PFLOPS (same order, right winner).
        assert!((15.0..60.0).contains(&r.time_us), "predicted {:.1} us vs paper 28.1", r.time_us);
        assert!((0.4..1.7).contains(&r.pflops), "predicted {:.2} PFLOPS", r.pflops);
    }

    #[test]
    fn fig9_ordering_holds() {
        let r = fig9(25, 12);
        assert!(r.fp64.best() < r.fp32.best());
        assert!(r.fp32.best() < r.mixed.best());
        assert!(r.mixed.best() < 0.1, "mixed best {}", r.mixed.best());
    }

    #[test]
    fn spmv2d_claims() {
        let r = spmv2d_experiment();
        assert_eq!(r.max_block, 38);
        assert_eq!(r.covered, (22_800, 22_800));
        assert!(r.overhead_8x8 < 0.20);
        assert!(r.cycles_3x3_8x8 > 0);
    }

    #[test]
    fn comm_variants_order_correctly() {
        let m = Cs1Model::default();
        let std = m.predict_headline();
        let fused = m.predict_iteration_fused(600, 595, 1536);
        let piped = m.predict_iteration_pipelined(600, 595, 1536);
        assert!(fused.time_us < std.time_us);
        assert!(piped.time_us < fused.time_us);
        assert_eq!(piped.allreduce_cycles, 0.0, "fully hidden at the paper's Z");
    }

    #[test]
    fn scaling_curves_have_right_shape() {
        let big = scaling_curve(600);
        assert!(big.first().unwrap().1 > big.last().unwrap().1 * 8.0, "600^3 scales well");
        let small = scaling_curve(370);
        let t8k = small.iter().find(|(p, _)| *p == 8192).unwrap().1;
        let t16k = small.iter().find(|(p, _)| *p == 16384).unwrap().1;
        assert!(t16k > t8k * 0.9, "370^3 stops scaling beyond 8K");
    }
}
