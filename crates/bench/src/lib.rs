//! Experiment harness: one entry point per table and figure of the paper.
//!
//! Each function both *computes* a structured result (so integration tests
//! can assert on it) and can *print* the same rows/series the paper reports.
//! The `experiments` binary dispatches to these.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
