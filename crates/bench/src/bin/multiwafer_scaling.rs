//! Multi-wafer weak-scaling benchmark: the distributed single-reduction
//! BiCGStab driver (`wse_core::WaferBicgstabMulti::build_fused`) on
//! simulated ensembles of k ∈ {1, 2, 4, 8} wafers, each holding a fixed
//! per-wafer slab, with the paper-default host interconnect (1 TB/s per
//! seam, 0.2 µs one-way).
//!
//! For every k the ensemble runs real iterations and reports the cycle
//! breakdown — on-wafer compute phases, the *exposed* and *hidden* parts
//! of the seam halo exchanges, and the single fused host AllReduce
//! round-trip — plus µs/iteration at the inferred 0.9 GHz clock, next to
//! the analytic `perf_model::multiwafer` prediction for the same shape.
//! Weak-scaling efficiency is `t(k=1) / t(k)`.
//!
//! Two gates run on every invocation:
//! - **model fidelity**: the measured interconnect cycles (exposed halo +
//!   host AllReduce) must bracket `interconnect_overlapped_us` fed the
//!   measured SpMV window — at least the modeled wire time, at most 2× it;
//! - **weak efficiency**: k=2 must beat the pre-overlap serial schedule's
//!   0.31, and the full run must reach ≥ 0.8 at k=4.
//!
//! Wall-clock timings go to **stderr**; stdout is bit-for-bit
//! deterministic (cycle counts, residuals, and the gate verdicts), which
//! `scripts/verify.sh` checks by diffing two `--smoke` runs. The full run
//! additionally writes `BENCH_multiwafer.json`.
//!
//! Usage:
//! ```text
//! multiwafer_scaling [--smoke] [--out BENCH_multiwafer.json]
//! ```

use perf_model::cs1::Cs1Model;
use perf_model::multiwafer::MultiWafer;
use std::fmt::Write as _;
use std::time::Instant;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use stencil::DiaMatrix;
use wse_core::{MultiIterCycles, WaferBicgstabMulti};
use wse_float::F16;
use wse_multi::{HostLink, MultiFabric};

/// Fixed per-wafer slab width (tiles along X) — weak scaling grows the
/// global mesh as `k` grows.
const SLAB_W: usize = 4;
/// Fabric height (tiles along Y).
const FAB_H: usize = 4;
/// The serial-schedule k=2 smoke efficiency before overlap + fusion; the
/// weak-efficiency gate must beat it.
const SERIAL_K2_SMOKE_EFF: f64 = 0.31;

/// One ensemble's measured result.
struct Measurement {
    k: usize,
    mesh: (usize, usize, usize),
    iters: usize,
    /// Summed per-phase cycles over all iterations.
    cycles: MultiIterCycles,
    final_residual: f64,
    model_time_us: f64,
    wall: f64,
}

impl Measurement {
    fn cycles_per_iter(&self) -> f64 {
        self.cycles.total() as f64 / self.iters as f64
    }
    fn us_per_iter(&self, clock_ghz: f64) -> f64 {
        self.cycles_per_iter() / (clock_ghz * 1e3)
    }
    /// Mean measured SpMV window, µs (two windows per iteration).
    fn spmv_window_us(&self, clock_ghz: f64) -> f64 {
        self.cycles.compute.spmv as f64 / (2.0 * self.iters as f64) / (clock_ghz * 1e3)
    }
}

/// Builds a k-wafer ensemble over a weak-scaled manufactured problem and
/// runs `iters` distributed iterations of the fused solver.
fn measure(k: usize, z: usize, iters: usize, clock_ghz: f64) -> Measurement {
    let mesh = Mesh3D::new(SLAB_W * k, FAB_H, z);
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 3).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let mut multi = MultiFabric::new(SLAB_W * k, FAB_H, k, HostLink::new(1000.0, 0.2, clock_ghz));
    let solver = WaferBicgstabMulti::build_fused(&mut multi, &a16);
    let wall = Instant::now();
    solver.load_rhs(&mut multi, &b16);
    let mut cycles = MultiIterCycles::default();
    for _ in 0..iters {
        let c = solver.iterate(&mut multi);
        cycles.compute.spmv += c.compute.spmv;
        cycles.compute.dot += c.compute.dot;
        cycles.compute.allreduce += c.compute.allreduce;
        cycles.compute.update += c.compute.update;
        cycles.compute.scalar += c.compute.scalar;
        cycles.halo += c.halo;
        cycles.halo_hidden += c.halo_hidden;
        cycles.host_allreduce += c.host_allreduce;
    }
    let norm_b: f64 = b16.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
    let final_residual = solver.residual_norm(&mut multi) as f64 / norm_b;
    let wall = wall.elapsed().as_secs_f64();

    let model = MultiWafer { k, link_gb_s: 1000.0, link_latency_us: 0.2, ..Default::default() };
    let model_time_us = model.predict_mesh(SLAB_W, FAB_H, z).time_us;
    Measurement {
        k,
        mesh: (mesh.nx, mesh.ny, mesh.nz),
        iters,
        cycles,
        final_residual,
        model_time_us,
        wall,
    }
}

/// Renders the measurement set as the checked-in benchmark JSON.
fn render_json(results: &[Measurement], clock_ghz: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"multiwafer_scaling\",\n");
    s.push_str(&format!(
        "  \"link\": {{\"gb_per_s\": 1000.0, \"latency_us\": 0.2}},\n  \"clock_ghz\": {clock_ghz},\n"
    ));
    s.push_str(
        "  \"note\": \"weak scaling: fixed per-wafer slab, k wafers along X; fused \
                single-reduction BiCGStab with overlapped halo exchange; halo_exposed is \
                seam wire time left on the critical path, halo_hidden the part overlapped \
                behind interior SpMV compute (excluded from totals); model is \
                perf_model::multiwafer\",\n",
    );
    s.push_str("  \"results\": [\n");
    let t1 = results[0].us_per_iter(clock_ghz);
    for (i, m) in results.iter().enumerate() {
        let us = m.us_per_iter(clock_ghz);
        let _ = writeln!(
            s,
            "    {{\"k\": {}, \"mesh\": [{}, {}, {}], \"iters\": {}, \
             \"cycles_per_iter\": {:.1}, \"us_per_iter\": {:.3}, \
             \"phase_cycles\": {{\"spmv\": {}, \"dot\": {}, \"allreduce\": {}, \"update\": {}, \
             \"scalar\": {}, \"halo_exposed\": {}, \"halo_hidden\": {}, \
             \"host_allreduce_exposed\": {}}}, \
             \"model_us_per_iter\": {:.3}, \"weak_efficiency\": {:.3}, \
             \"final_rel_residual\": {:.3e}}}{}",
            m.k,
            m.mesh.0,
            m.mesh.1,
            m.mesh.2,
            m.iters,
            m.cycles_per_iter(),
            us,
            m.cycles.compute.spmv,
            m.cycles.compute.dot,
            m.cycles.compute.allreduce,
            m.cycles.compute.update,
            m.cycles.compute.scalar,
            m.cycles.halo,
            m.cycles.halo_hidden,
            m.cycles.host_allreduce,
            m.model_time_us,
            t1 / us,
            m.final_residual,
            if i + 1 == results.len() { "" } else { "," },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_multiwafer.json".to_string());

    let clock_ghz = Cs1Model::default().clock_ghz;
    let (z, iters) = if smoke { (16, 2) } else { (256, 4) };
    let ks: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    println!(
        "multiwafer_scaling: k wafers x ({SLAB_W}x{FAB_H}x{z}) slab, 1000 GB/s / 0.2 us links, \
         fused single-reduction BiCGStab"
    );

    let mut results = Vec::new();
    for &k in ks {
        let m = measure(k, z, iters, clock_ghz);
        println!(
            "k={}: mesh {}x{}x{}, {} iters, {:.0} cycles/iter \
             (halo_exposed {} + halo_hidden {} + host_allreduce {} of {} total), \
             weak_eff {:.3}, rel residual {:.3e}",
            m.k,
            m.mesh.0,
            m.mesh.1,
            m.mesh.2,
            m.iters,
            m.cycles_per_iter(),
            m.cycles.halo,
            m.cycles.halo_hidden,
            m.cycles.host_allreduce,
            m.cycles.total(),
            results
                .first()
                .map_or(1.0, |t1: &Measurement| { t1.cycles_per_iter() / m.cycles_per_iter() }),
            m.final_residual
        );
        eprintln!(
            "  wall {:.3}s; simulated {:.3} us/iter at {:.1} GHz (model {:.3} us/iter)",
            m.wall,
            m.us_per_iter(clock_ghz),
            clock_ghz,
            m.model_time_us
        );
        results.push(m);
    }

    // Model-fidelity gate: the cycles the ensemble actually spends on the
    // interconnect (exposed halo + the fused host AllReduce round-trip)
    // must bracket the overlapped model fed the measured SpMV window — at
    // least the modeled wire time, at most 2x of it.
    for m in &results[1..] {
        let model =
            MultiWafer { k: m.k, link_gb_s: 1000.0, link_latency_us: 0.2, ..Default::default() };
        let (exposed_us, reduce_us) =
            model.interconnect_overlapped_us(FAB_H, z, m.spmv_window_us(clock_ghz));
        let model_cycles = ((exposed_us + reduce_us) * clock_ghz * 1e3) as u64;
        let sim = (m.cycles.halo + m.cycles.host_allreduce) / m.iters as u64;
        let ok = sim >= model_cycles && sim <= 2 * model_cycles;
        println!(
            "model-fidelity gate k={}: interconnect {} cycles/iter vs modeled {} \
             (must be within [1x, 2x]): {}",
            m.k,
            sim,
            model_cycles,
            if ok { "PASS" } else { "FAIL" }
        );
        assert!(ok, "k={} interconnect {sim} cycles/iter vs model {model_cycles}", m.k);
    }

    // Weak-efficiency gates: k=2 must beat the serial schedule it replaced
    // even at smoke scale, and the full (z=256) run must hold >= 0.8 at k=4.
    let t1 = results[0].cycles_per_iter();
    let eff = |k: usize| {
        let m = results.iter().find(|m| m.k == k).expect("measured k");
        t1 / m.cycles_per_iter()
    };
    let e2 = eff(2);
    let ok2 = e2 > SERIAL_K2_SMOKE_EFF;
    println!(
        "weak-efficiency gate k=2: {:.3} (must beat serial-schedule {:.2}): {}",
        e2,
        SERIAL_K2_SMOKE_EFF,
        if ok2 { "PASS" } else { "FAIL" }
    );
    assert!(ok2, "k=2 weak efficiency {e2:.3} regressed to the serial schedule");
    if !smoke {
        let e4 = eff(4);
        let ok4 = e4 >= 0.8;
        println!(
            "weak-efficiency gate k=4: {:.3} (must be >= 0.80): {}",
            e4,
            if ok4 { "PASS" } else { "FAIL" }
        );
        assert!(ok4, "k=4 weak efficiency {e4:.3} below the 0.8 target");
    }

    // All ensembles converge on their (weak-scaled) problems.
    for m in &results {
        assert!(
            m.final_residual < 0.9,
            "k={} failed to reduce the residual: {:.3e}",
            m.k,
            m.final_residual
        );
    }

    if !smoke {
        let json = render_json(&results, clock_ghz);
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("wrote {out} ({} bytes)", json.len());
    }
}
