//! Multi-tenant service benchmark: two tenants share one 8x4 fabric
//! through the `wse-serve` front door — seeded open-loop arrivals over
//! three job shapes, admission control, the compiled-program cache,
//! batching, and per-tenant billing — reporting sustained solves/sec and
//! sojourn-time percentiles.
//!
//! Stdout is bit-for-bit deterministic (simulated time only: fabric
//! cycles at 0.9 GHz plus the service's fixed compile/load cost model),
//! which `scripts/verify.sh` checks by diffing two `--smoke` runs. Host
//! wall-clock — the cold-build vs warm-lookup speedup, the measured
//! payoff of the program cache — goes to **stderr** and the JSON only.
//! The full run writes `BENCH_service.json`.
//!
//! Usage:
//! ```text
//! service_bench [--smoke] [--out BENCH_service.json]
//! ```

use std::fmt::Write as _;
use wse_arch::Fabric;
use wse_serve::{
    open_loop_arrivals, Backend, JobSpec, ProgramKey, ServiceReport, StencilKind, TenantSpec,
    WaferService,
};

/// Arrival seed; fixed so every run replays the same workload.
const ARRIVAL_SEED: u64 = 2020;
/// Mean arrival rate, jobs per microsecond of simulated time.
const ARRIVAL_RATE: f64 = 0.004;

/// The benchmark's three job shapes (two meshes, two operators).
fn shapes() -> [ProgramKey; 3] {
    [
        ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9),
        ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5)),
        ProgramKey::bicgstab2d((12, 8), (4, 4), StencilKind::Laplace9),
    ]
}

/// Builds the two-tenant service and drives `jobs` seeded solves.
fn run(jobs: usize, max_iters: usize) -> ServiceReport {
    let mut svc = WaferService::new(
        Backend::Single(Fabric::new(8, 4)),
        vec![TenantSpec::new("acme", (3, 2), jobs), TenantSpec::new("zenith", (3, 2), jobs)],
    )
    .expect("two 3x2 tenants fit an 8x4 fabric");
    let shapes = shapes();
    // Tenants interleave; each submits same-shape pairs so the run
    // exercises all three tiers (cold build, cache-hit blit, resident).
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| JobSpec {
            tenant: i % 2,
            key: shapes[(i / 4) % 3],
            rhs_seed: 9000 + i as u64,
            max_iters,
        })
        .collect();
    let arrivals = open_loop_arrivals(ARRIVAL_SEED, jobs, ARRIVAL_RATE);
    svc.run(&specs, &arrivals);
    svc.report()
}

/// Renders the checked-in benchmark JSON. Everything but the `host`
/// object is deterministic.
fn render_json(report: &ServiceReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"service_bench\",\n");
    s.push_str("  \"config\": {\"fabric\": [8, 4], \"tenants\": [\"acme\", \"zenith\"], ");
    let _ = writeln!(
        s,
        "\"shapes\": 3, \"arrival_seed\": {ARRIVAL_SEED}, \"arrival_per_us\": {ARRIVAL_RATE}}},"
    );
    let _ = writeln!(
        s,
        "  \"jobs\": {{\"submitted\": {}, \"completed\": {}, \"rejected\": {}}},",
        report.submitted, report.completed, report.rejected
    );
    let _ = writeln!(
        s,
        "  \"tiers\": {{\"cold\": {}, \"hit\": {}, \"resident\": {}}},",
        report.tiers.0, report.tiers.1, report.tiers.2
    );
    let _ = writeln!(
        s,
        "  \"cache\": {{\"cold\": {}, \"hits\": {}, \"hit_rate\": {:.3}}},",
        report.cache.cold,
        report.cache.hits,
        report.cache.hit_rate()
    );
    let _ = writeln!(
        s,
        "  \"latency_us\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \"makespan\": {:.3}}},",
        report.p50_us, report.p99_us, report.mean_us, report.makespan_us
    );
    let _ = writeln!(s, "  \"solves_per_sec\": {:.3},", report.solves_per_sec);
    s.push_str("  \"billing\": [\n");
    for (i, row) in report.billing.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"tenant\": \"{}\", \"completed\": {}, \"rejected\": {}, \"cycles\": {}, \
             \"rollbacks\": {}, \"cold_builds\": {}}}{}",
            row.tenant,
            row.completed,
            row.rejected,
            row.cycles,
            row.rollbacks,
            row.cold_builds,
            if i + 1 == report.billing.len() { "" } else { "," },
        );
    }
    s.push_str("  ],\n");
    // Host wall-clock: nondeterministic, machine-dependent — the measured
    // cold-vs-warm payoff of the compiled-program cache.
    let cold = mean(&report.cold_host_us);
    let warm = mean(&report.warm_host_us);
    let _ = writeln!(
        s,
        "  \"host\": {{\"cold_build_us_mean\": {:.1}, \"warm_lookup_us_mean\": {:.1}, \
         \"warm_speedup\": {:.1}}}",
        cold,
        warm,
        report.warm_speedup().unwrap_or(0.0)
    );
    s.push_str("}\n");
    s
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let (jobs, max_iters) = if smoke { (12, 4) } else { (48, 6) };
    println!(
        "service_bench: 2 tenants x 3 job shapes on an 8x4 fabric, \
         {jobs} seeded open-loop arrivals"
    );
    let report = run(jobs, max_iters);
    print!("{}", report.render());
    println!("cache-hit-rate: {:.3}", report.cache.hit_rate());

    // Wall-clock: stderr only, so stdout stays diffable.
    eprintln!(
        "host: cold build {:.1} us avg ({} builds), warm lookup {:.1} us avg ({} hits), \
         speedup {:.1}x",
        mean(&report.cold_host_us),
        report.cold_host_us.len(),
        mean(&report.warm_host_us),
        report.warm_host_us.len(),
        report.warm_speedup().unwrap_or(0.0)
    );

    assert!(report.rejected == 0, "benchmark workload must be fully admitted");
    assert!(report.cache.hit_rate() > 0.0, "repeat shapes must hit the program cache");

    if !smoke {
        std::fs::write(&out, render_json(&report)).expect("write benchmark JSON");
        eprintln!("wrote {out}");
    }
}
