//! Regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! experiments [all|table1|table2|fig1|fig5|fig6|fig7|fig8|fig9|headline|
//!              spmv2d|memory|mfix|refine|commhiding|capacity] [--full]
//! ```
//!
//! `--full` runs the Fig. 9 precision study at larger scale (slower).

use wse_bench as experiments_lib;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let (fig9_scale, fig9_iters) = if full { (4, 16) } else { (10, 16) };
    let (t2_n, t2_iters) = if full { (16, 4) } else { (8, 3) };

    let mut ran = false;
    let mut section = |name: &str, f: &mut dyn FnMut()| {
        if which == "all" || which == name {
            f();
            println!();
            ran = true;
        }
    };

    section("fig1", &mut experiments_lib::print_fig1);
    section("table1", &mut experiments_lib::print_table1);
    section("fig5", &mut experiments_lib::print_fig5);
    section("fig6", &mut experiments_lib::print_fig6);
    section("memory", &mut experiments_lib::print_memory);
    section("spmv2d", &mut experiments_lib::print_spmv2d);
    section("headline", &mut experiments_lib::print_headline);
    section("fig7", &mut || experiments_lib::print_fig7_fig8());
    section("fig8", &mut || {
        if which == "fig8" {
            experiments_lib::print_fig7_fig8()
        }
    });
    section("table2", &mut || experiments_lib::print_table2(t2_n, t2_iters));
    section("fig9", &mut || experiments_lib::print_fig9(fig9_scale, fig9_iters));
    section("mfix", &mut experiments_lib::print_mfix);
    section("refine", &mut || experiments_lib::print_refinement(fig9_scale));
    section("commhiding", &mut experiments_lib::print_comm_hiding);
    section("capacity", &mut experiments_lib::print_capacity);
    section("energy", &mut experiments_lib::print_energy);

    if !ran {
        eprintln!(
            "unknown experiment '{which}'; expected one of: all table1 table2 fig1 fig5 \
             fig6 fig7 fig8 fig9 headline spmv2d memory mfix refine commhiding capacity"
        );
        std::process::exit(2);
    }
}
