//! Simulator stepping-throughput benchmark: the activity-driven stepper vs
//! the retained full-scan reference, across fabric sizes and activity
//! densities.
//!
//! Every workload is run twice — once with the optimized `Fabric::step()`
//! and once with `use_reference_stepper(true)` — and the two runs must land
//! on the **same** simulated cycle count (the equivalence contract) before
//! any throughput number is reported. Metrics:
//!
//! - **cycles/sec** — simulated fabric cycles per wall-clock second;
//! - **tile·cycles/sec** — the same, scaled by fabric size (the full-scan
//!   stepper's natural unit: a 64×64 fabric does 4096 tile-visits/cycle).
//!
//! Workloads:
//!
//! - `sparse_column` — a single stream down column 0 of an otherwise idle
//!   square fabric (the AllReduce-like regime from the paper where one
//!   column of 380k tiles is active). Wall-clock here is the activity
//!   set's headline win: the reference visits every tile every cycle.
//! - `dense_bicgstab` — full BiCGStab iterations on an 8×8 wafer, every
//!   tile busy (the 28.1 µs/iteration regime). The win here comes from
//!   zero-allocation stepping and dead-color snapshot masking, not
//!   skipping.
//!
//! Wall-clock timings go to **stderr**; stdout is bit-for-bit deterministic
//! (cycle counts and PASS/FAIL verdicts only), which `scripts/verify.sh`
//! checks by diffing two `--smoke` runs. `--smoke` also asserts the minimum
//! sparse speedup; the full run additionally writes
//! `BENCH_sim_throughput.json`.
//!
//! Usage:
//! ```text
//! sim_throughput [--smoke] [--out BENCH_sim_throughput.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use stencil::DiaMatrix;
use wse_arch::dsr::mk;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, Port};
use wse_arch::Fabric;
use wse_core::WaferBicgstab;
use wse_float::F16;

/// Minimum sparse-workload speedup asserted by `--smoke` (the acceptance
/// gate; measured speedups are an order of magnitude above this).
const MIN_SPARSE_SPEEDUP: f64 = 3.0;

/// One workload's measured result pair.
struct Measurement {
    workload: String,
    w: usize,
    h: usize,
    cycles: u64,
    opt_wall: f64,
    ref_wall: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.ref_wall / self.opt_wall.max(1e-12)
    }
    fn opt_cps(&self) -> f64 {
        self.cycles as f64 / self.opt_wall.max(1e-12)
    }
    fn ref_cps(&self) -> f64 {
        self.cycles as f64 / self.ref_wall.max(1e-12)
    }
}

/// Installs a single stream of `n` fp16 words from `(0, 0)` down column 0
/// to `(0, h-1)`: the only active tiles are that column.
fn build_sparse_column(w: usize, h: usize, n: u32) -> Fabric {
    let mut f = Fabric::new(w, h);
    let color = 1u8;
    f.set_route(0, 0, Port::Ramp, color, &[Port::South]);
    for y in 1..h - 1 {
        f.set_route(0, y, Port::North, color, &[Port::South]);
    }
    f.set_route(0, h - 1, Port::North, color, &[Port::Ramp]);
    {
        let t = f.tile_mut(0, 0);
        let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
        let data: Vec<F16> = (0..n).map(|i| F16::from_f64((i % 13) as f64 * 0.5)).collect();
        t.mem.store_f16_slice(addr, &data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
        let dtx = t.core.add_dsr(mk::tx16(color, n));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
    }
    {
        let t = f.tile_mut(0, h - 1);
        let out = t.mem.alloc_vec(n, Dtype::F16).unwrap();
        let drx = t.core.add_dsr(mk::rx16(color, n));
        let ddst = t.core.add_dsr(mk::tensor16(out, n));
        let task = t.core.add_task(Task::new(
            "recv",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None })],
        ));
        t.core.activate(task);
    }
    f
}

/// Runs the sparse-column workload on a `side × side` fabric under both
/// steppers, asserting identical cycle counts.
fn measure_sparse(side: usize, n: u32, deadline: u64) -> Measurement {
    let run = |reference: bool| {
        let mut f = build_sparse_column(side, side, n);
        f.use_reference_stepper(reference);
        let wall = Instant::now();
        let cycles = f.run_until_quiescent(deadline).expect("sparse stream must finish");
        (cycles, wall.elapsed().as_secs_f64())
    };
    let (opt_cycles, opt_wall) = run(false);
    let (ref_cycles, ref_wall) = run(true);
    assert_eq!(
        opt_cycles, ref_cycles,
        "steppers diverged on sparse {side}x{side}: {opt_cycles} optimized vs {ref_cycles} \
         reference"
    );
    Measurement {
        workload: "sparse_column".into(),
        w: side,
        h: side,
        cycles: opt_cycles,
        opt_wall,
        ref_wall,
    }
}

/// Runs `iters` BiCGStab iterations on a `w×h×z` manufactured problem under
/// both steppers, asserting identical cycle counts.
fn measure_dense(w: usize, h: usize, z: usize, iters: usize) -> Measurement {
    let run = |reference: bool| {
        let p = manufactured(Mesh3D::new(w, h, z), (1.0, -0.5, 0.5), 3).preconditioned();
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut fabric = Fabric::new(w, h);
        let solver = WaferBicgstab::build(&mut fabric, &a16);
        solver.load_rhs(&mut fabric, &b16);
        fabric.use_reference_stepper(reference);
        let start = fabric.cycle();
        let wall = Instant::now();
        for _ in 0..iters {
            solver.iterate(&mut fabric);
        }
        (fabric.cycle() - start, wall.elapsed().as_secs_f64())
    };
    let (opt_cycles, opt_wall) = run(false);
    let (ref_cycles, ref_wall) = run(true);
    assert_eq!(
        opt_cycles, ref_cycles,
        "steppers diverged on dense {w}x{h} BiCGStab: {opt_cycles} optimized vs {ref_cycles} \
         reference"
    );
    Measurement { workload: "dense_bicgstab".into(), w, h, cycles: opt_cycles, opt_wall, ref_wall }
}

/// Renders the measurement set as the checked-in benchmark JSON.
fn render_json(results: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"sim_throughput\",\n");
    s.push_str("  \"units\": {\"cycles_per_sec\": \"simulated cycles / wall second\", ");
    s.push_str("\"tile_cycles_per_sec\": \"cycles_per_sec * tiles\"},\n");
    s.push_str(&format!("  \"min_sparse_speedup_gate\": {MIN_SPARSE_SPEEDUP:.1},\n"));
    s.push_str("  \"results\": [\n");
    for (k, m) in results.iter().enumerate() {
        let tiles = (m.w * m.h) as f64;
        let _ = writeln!(
            s,
            "    {{\"workload\": \"{}\", \"w\": {}, \"h\": {}, \"cycles\": {}, \
             \"optimized_cycles_per_sec\": {:.0}, \"reference_cycles_per_sec\": {:.0}, \
             \"optimized_tile_cycles_per_sec\": {:.0}, \"reference_tile_cycles_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}{}",
            m.workload,
            m.w,
            m.h,
            m.cycles,
            m.opt_cps(),
            m.ref_cps(),
            m.opt_cps() * tiles,
            m.ref_cps() * tiles,
            m.speedup(),
            if k + 1 == results.len() { "" } else { "," },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());

    println!("sim_throughput: activity-driven stepper vs full-scan reference");

    let mut results = Vec::new();

    // The acceptance workload: a single active column on a 64×64 fabric.
    let sparse_n: u32 = if smoke { 512 } else { 4096 };
    let gate = measure_sparse(64, sparse_n, 1_000_000);
    println!(
        "sparse_column 64x64: both steppers quiesced in {} cycles ({} flits)",
        gate.cycles, sparse_n
    );
    eprintln!(
        "  wall: optimized {:.4}s ({:.0} cycles/s), reference {:.4}s ({:.0} cycles/s), \
         speedup x{:.1}",
        gate.opt_wall,
        gate.opt_cps(),
        gate.ref_wall,
        gate.ref_cps(),
        gate.speedup()
    );
    let gate_ok = gate.speedup() >= MIN_SPARSE_SPEEDUP;
    println!(
        "smoke gate: sparse speedup >= {MIN_SPARSE_SPEEDUP:.0}x: {}",
        if gate_ok { "PASS" } else { "FAIL" }
    );
    assert!(
        gate_ok,
        "sparse-activity speedup gate failed: x{:.2} < x{MIN_SPARSE_SPEEDUP:.1} \
         (optimized {:.4}s vs reference {:.4}s)",
        gate.speedup(),
        gate.opt_wall,
        gate.ref_wall
    );
    results.push(gate);

    if !smoke {
        for side in [16usize, 32] {
            let m = measure_sparse(side, 4096, 1_000_000);
            println!("sparse_column {side}x{side}: both steppers quiesced in {} cycles", m.cycles);
            eprintln!(
                "  wall: optimized {:.4}s, reference {:.4}s, speedup x{:.1}",
                m.opt_wall,
                m.ref_wall,
                m.speedup()
            );
            results.push(m);
        }
    }

    // Dense workload: a full BiCGStab iteration, every tile busy.
    let (dw, dh, dz, iters) = if smoke { (4, 4, 16, 1) } else { (8, 8, 64, 2) };
    let dense = measure_dense(dw, dh, dz, iters);
    println!(
        "dense_bicgstab {dw}x{dh} z={dz}: both steppers took {} cycles for {iters} iteration(s)",
        dense.cycles
    );
    eprintln!(
        "  wall: optimized {:.4}s ({:.0} cycles/s), reference {:.4}s ({:.0} cycles/s), \
         speedup x{:.2}",
        dense.opt_wall,
        dense.opt_cps(),
        dense.ref_wall,
        dense.ref_cps(),
        dense.speedup()
    );
    if !smoke {
        // The dense margin is modest (nothing can be skipped), so the
        // verdict is only printed — and asserted — outside --smoke, where
        // stdout need not be deterministic and the workload is large
        // enough for a stable reading.
        let dense_ok = dense.speedup() > 1.0;
        println!(
            "dense win: optimized faster than reference on the dense workload: {}",
            if dense_ok { "PASS" } else { "FAIL" }
        );
        assert!(
            dense_ok,
            "dense BiCGStab shows no win: optimized {:.4}s vs reference {:.4}s",
            dense.opt_wall, dense.ref_wall
        );
    }
    results.push(dense);

    if !smoke {
        let json = render_json(&results);
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("wrote {out} ({} bytes)", json.len());
    }
}
