//! Per-iteration phase profiler for the wafer BiCGStab solver, built on the
//! `wse-arch` tracing subsystem and the `wse-trace` exporters.
//!
//! The run has three parts:
//!
//! 1. **Calibration** — short *untraced* solves whose [`IterCycles`] counter
//!    returns fit the analytic [`Cs1Model`]'s per-phase slopes (the same
//!    flow the headline experiment uses via `calibrate_spmv`, extended to
//!    every phase). Calibration uses different fabric/z configurations than
//!    the validation run, so the comparison below is an interpolation test,
//!    not an identity.
//! 2. **Validation** — the target configuration runs twice, disarmed and
//!    armed. The two runs must land on the *same* fabric cycle count:
//!    tracing must observe the simulation, never perturb it. The armed
//!    run's [`FabricTrace`] yields the phase report, the Perfetto export
//!    (validated for well-formedness and monotone timestamps), and the
//!    utilization heatmap.
//! 3. **Cross-validation** — the *traced* phase breakdown is compared
//!    against the calibrated model's prediction; every phase must agree
//!    within 15%. The paper-scale context (28.1 µs iteration, <1.5 µs
//!    AllReduce) is printed alongside.
//!
//! Wall-clock timings go to **stderr** only: stdout is bit-for-bit
//! deterministic, which `scripts/verify.sh` checks by diffing two `--smoke`
//! runs. Outside `--smoke`, the binary also asserts the disarmed
//! configuration is at least as fast as the armed one (within generous
//! noise margins) — the disarmed hooks are a single pointer test per cycle.
//!
//! Usage:
//! ```text
//! iter_profile [--smoke] [--iters N] [--out trace.json]
//! ```

use perf_model::cs1::Cs1Model;
use std::time::Instant;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use stencil::DiaMatrix;
use wse_arch::{Fabric, FabricTrace, TraceConfig};
use wse_core::bicgstab::IterCycles;
use wse_core::{build_transparent, WaferBicgstab};
use wse_float::F16;
use wse_multi::HostLink;
use wse_trace::{
    cross_validate, export_trace_json, stall_breakdown, utilization_ascii, validate_trace_json,
    PhaseReport,
};

struct Config {
    /// Two same-fabric calibration runs at different z (per-z slope fits).
    cal_z: (usize, usize),
    cal_fabric: (usize, usize),
    /// Extra small-fabric run for the AllReduce (w+h) fit.
    cal_small: (usize, usize, usize),
    /// The traced validation configuration.
    val: (usize, usize, usize),
    iters: usize,
    smoke: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    let iters_flag =
        args.iter().position(|a| a == "--iters").and_then(|i| args.get(i + 1)).map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| panic!("--iters expects an integer, got '{v}'"))
        });
    let cfg = if smoke {
        Config {
            cal_z: (8, 16),
            cal_fabric: (4, 4),
            cal_small: (2, 2, 8),
            val: (4, 4, 32),
            iters: iters_flag.unwrap_or(1),
            smoke,
        }
    } else {
        Config {
            cal_z: (32, 64),
            cal_fabric: (4, 4),
            cal_small: (6, 6, 32),
            val: (8, 8, 128),
            iters: iters_flag.unwrap_or(2),
            smoke,
        }
    };
    run(&cfg, out.as_deref());
}

/// Builds the solver for a `w×h×z` manufactured problem, loads the RHS, and
/// returns everything ready to iterate.
fn setup(w: usize, h: usize, z: usize) -> (Fabric, WaferBicgstab) {
    let p = manufactured(Mesh3D::new(w, h, z), (1.0, -0.5, 0.5), 3).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(w, h);
    let solver = WaferBicgstab::build(&mut fabric, &a16);
    solver.load_rhs(&mut fabric, &b16);
    (fabric, solver)
}

/// One untraced iteration's counter-derived cycle breakdown.
fn measure(w: usize, h: usize, z: usize) -> IterCycles {
    let (mut fabric, solver) = setup(w, h, z);
    solver.iterate(&mut fabric)
}

/// Fits every per-phase slope of the analytic model from untraced counter
/// measurements. The solver runs 2 SpMVs, 4 dots, and 4 AllReduce rounds
/// per iteration, and the model groups the vector updates as 6 AXPY-grade
/// sweeps — the same multipliers `predict_iteration` applies.
fn calibrate(cfg: &Config) -> Cs1Model {
    let (w, h) = cfg.cal_fabric;
    let (z1, z2) = cfg.cal_z;
    let m1 = measure(w, h, z1);
    let m2 = measure(w, h, z2);
    let (sw, sh, sz) = cfg.cal_small;
    let ms = measure(sw, sh, sz);

    let mut model = Cs1Model::default();
    let dz = (z2 - z1) as f64;
    let fit = |c1: u64, c2: u64, per_iter: f64| {
        let (y1, y2) = (c1 as f64 / per_iter, c2 as f64 / per_iter);
        let slope = (y2 - y1) / dz;
        (slope, y2 - slope * z2 as f64)
    };
    (model.spmv_cycles_per_z, model.spmv_fixed) = fit(m1.spmv, m2.spmv, 2.0);
    (model.dot_cycles_per_z, model.dot_fixed) = fit(m1.dot, m2.dot, 4.0);
    (model.axpy_cycles_per_z, model.axpy_fixed) = fit(m1.update, m2.update, 6.0);
    // AllReduce latency depends on fabric perimeter, not z: fit from the
    // two fabric sizes (4 reduction rounds per iteration).
    model.allreduce.calibrate(&[(w, h, m1.allreduce / 4), (sw, sh, ms.allreduce / 4)]);
    model
}

/// Runs `iters` iterations and returns total cycles plus wall time.
fn run_iters(fabric: &mut Fabric, solver: &WaferBicgstab, iters: usize) -> (u64, f64) {
    let start_cycle = fabric.cycle();
    let wall = Instant::now();
    for _ in 0..iters {
        solver.iterate(fabric);
    }
    (fabric.cycle() - start_cycle, wall.elapsed().as_secs_f64())
}

/// FNV-1a of the exported JSON: cheap stdout fingerprint so the determinism
/// diff covers the whole Perfetto document, not just its summary stats.
fn fnv1a(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run(cfg: &Config, out: Option<&str>) {
    let (vw, vh, vz) = cfg.val;
    println!(
        "iter_profile: BiCGStab on {vw}x{vh} wafer, z = {vz}, {} traced iteration(s)",
        cfg.iters
    );

    let model = calibrate(cfg);
    println!(
        "calibrated model: spmv {:.3}z+{:.1}, dot {:.3}z+{:.1}, axpy {:.3}z+{:.1}, \
         allreduce {:.2}(w+h)+{:.1}",
        model.spmv_cycles_per_z,
        model.spmv_fixed,
        model.dot_cycles_per_z,
        model.dot_fixed,
        model.axpy_cycles_per_z,
        model.axpy_fixed,
        model.allreduce.hop_factor,
        model.allreduce.fixed
    );

    // Disarmed run: the baseline cycle count tracing must not perturb.
    let (mut fabric, solver) = setup(vw, vh, vz);
    let (disarmed_cycles, disarmed_wall) = run_iters(&mut fabric, &solver, cfg.iters);

    // Armed run on an identical fresh setup.
    let (mut fabric, solver) = setup(vw, vh, vz);
    fabric.arm_trace(TraceConfig::default());
    let (armed_cycles, armed_wall) = run_iters(&mut fabric, &solver, cfg.iters);
    let trace: FabricTrace = fabric.take_trace().expect("trace was armed");

    assert_eq!(
        disarmed_cycles, armed_cycles,
        "tracing perturbed the simulation: {disarmed_cycles} cycles disarmed vs \
         {armed_cycles} armed"
    );
    println!("cycle identity: {disarmed_cycles} cycles armed and disarmed");

    // Reference-stepper run: the activity-driven optimized stepper must be
    // cycle-for-cycle identical to the retained full-scan reference.
    let (mut fabric, solver) = setup(vw, vh, vz);
    fabric.use_reference_stepper(true);
    let (reference_cycles, reference_wall) = run_iters(&mut fabric, &solver, cfg.iters);
    assert_eq!(
        disarmed_cycles, reference_cycles,
        "optimized stepper diverged from the reference: {disarmed_cycles} cycles optimized vs \
         {reference_cycles} reference"
    );
    println!("cycle identity: {reference_cycles} cycles reference and optimized steppers");

    // Sanitizer run: the runtime race/wait shadow state must observe the
    // simulation (same cycle count) and find the shipped solver clean.
    let (mut fabric, solver) = setup(vw, vh, vz);
    fabric.arm_sanitizer();
    let (sanitized_cycles, sanitized_wall) = run_iters(&mut fabric, &solver, cfg.iters);
    let sanitizer = fabric.take_sanitizer().expect("sanitizer was armed");
    assert_eq!(
        disarmed_cycles, sanitized_cycles,
        "sanitizer perturbed the simulation: {disarmed_cycles} cycles disarmed vs \
         {sanitized_cycles} sanitized"
    );
    assert!(sanitizer.is_clean(), "runtime sanitizer tripped on the shipped solver:\n{sanitizer}");
    println!(
        "cycle identity: {sanitized_cycles} cycles with runtime sanitizer armed \
         ({} race trips)",
        sanitizer.total_trips()
    );

    // Reliable-transport run: the same program split across a k=2
    // ensemble must land on the same cycle count whether the seam
    // transport is disarmed (trusted link) or armed with no faults —
    // frame headers and acks are control-plane metadata, so reliability
    // costs nothing until a fault actually fires.
    let p = manufactured(Mesh3D::new(vw, vh, vz), (1.0, -0.5, 0.5), 3).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let split_run = |armed: bool| {
        let (solver, mut multi) = build_transparent(&a16, 2, HostLink::paper_default());
        if armed {
            multi.arm_transport();
        }
        solver.load_rhs(&mut multi, &b16);
        let start = multi.cycle();
        for _ in 0..cfg.iters {
            solver.iterate(&mut multi);
        }
        (multi.cycle() - start, multi.retransmits())
    };
    let (plain_cycles, _) = split_run(false);
    let (framed_cycles, retransmits) = split_run(true);
    assert_eq!(
        plain_cycles, framed_cycles,
        "reliable transport perturbed the fault-free split: {plain_cycles} cycles \
         disarmed vs {framed_cycles} armed"
    );
    assert_eq!(retransmits, 0, "a healthy link must never retransmit");
    println!(
        "cycle identity: {framed_cycles} cycles armed and disarmed transport \
         (k=2 transparent split, 0 retransmits)"
    );
    eprintln!(
        "wall: disarmed {disarmed_wall:.3}s, armed {armed_wall:.3}s \
         (x{:.2} while collecting), reference {reference_wall:.3}s \
         (x{:.2} vs optimized), sanitized {sanitized_wall:.3}s \
         (x{:.2} while shadowing)",
        armed_wall / disarmed_wall.max(1e-9),
        reference_wall / disarmed_wall.max(1e-9),
        sanitized_wall / disarmed_wall.max(1e-9)
    );
    if !cfg.smoke {
        // The disarmed hooks are one pointer test per cycle; a disarmed run
        // must never be slower than an armed one beyond scheduling noise.
        assert!(
            disarmed_wall <= armed_wall * 1.25 + 0.05,
            "disarmed tracing shows measurable slowdown: {disarmed_wall:.3}s disarmed \
             vs {armed_wall:.3}s armed"
        );
        // Same bound against the armed sanitizer: its disarmed cost is the
        // identical one-pointer test, so any disarmed slowdown is noise.
        assert!(
            disarmed_wall <= sanitized_wall * 1.25 + 0.05,
            "disarmed sanitizer shows measurable slowdown: {disarmed_wall:.3}s disarmed \
             vs {sanitized_wall:.3}s sanitized"
        );
    }

    let report = PhaseReport::from_trace(&trace);
    let clock = model.clock_ghz;
    println!();
    println!(
        "phase report ({} cycles traced, {:.3} us at {clock} GHz):",
        trace.window_cycles(),
        trace.window_cycles() as f64 / (clock * 1e3)
    );
    print!("{}", report.render(clock));

    println!();
    print!("{}", stall_breakdown(&trace));

    println!();
    print!("{}", utilization_ascii(&trace));

    let json = export_trace_json(&trace);
    let stats = validate_trace_json(&json).expect("exported Perfetto trace must validate");
    println!();
    println!(
        "perfetto: {} events ({} slices, {} instants, {} metadata), max ts {} cycles, \
         fnv1a {:016x}",
        stats.events,
        stats.slices,
        stats.instants,
        stats.metadata,
        stats.max_ts,
        fnv1a(&json)
    );
    if let Some(path) = out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} ({} bytes)", json.len());
    }

    println!();
    println!("cross-validation vs calibrated CS-1 model (cycles/iteration):");
    let cv = cross_validate(
        &report,
        cfg.iters as u64,
        &Cs1Model { fabric_w: vw, fabric_h: vh, ..model },
        vw,
        vh,
        vz,
    );
    print!("{}", cv.render());
    assert!(
        cv.all_within(0.15),
        "traced phase breakdown disagrees with the analytic model by more than 15%:\n{}",
        cv.render()
    );
    println!("all phases within 15% of the analytic prediction");
}
