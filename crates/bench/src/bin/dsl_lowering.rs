//! DSL lowering benchmark: host-side lower+lint cost and per-apply cycle
//! counts for the catalog's 5-, 7-, 9-, and 25-point operators.
//!
//! Each operator is lowered from its declarative [`wse_dsl::StencilSpec`]
//! onto a fresh fabric, lint-verified with the full `wse-lint` ensemble
//! (the same gate `wse-serve` admission runs), then driven through several
//! `u = A v` applications. Three numbers per operator:
//!
//! - **lower_us** — host wall-clock for plan + emit (routes, SRAM packing,
//!   coefficient load, task build);
//! - **lint_us** — host wall-clock for the static verifier over the built
//!   fabric;
//! - **cycles (cold / max)** — simulated fabric cycles for the first
//!   application on the freshly lowered program, and the maximum over all
//!   repeats (repeat counts wobble by a few cycles with residual router
//!   phase, deterministically — the simulator is bit-reproducible, so both
//!   numbers are stable across runs).
//!
//! Every application is also checked against the operator's host mirror
//! (`wse_dsl::host`, or the exact f64 matvec on the Listing-1 path) and
//! must match **bit for bit** — the bench doubles as an end-to-end
//! correctness gate over all three emitters.
//!
//! Wall-clock timings go to **stderr**; stdout (operator table, cycle
//! counts, verdicts) is bit-for-bit deterministic, which
//! `scripts/verify.sh` checks by diffing two `--smoke` runs. The full run
//! additionally writes `BENCH_dsl.json`.
//!
//! Usage:
//! ```text
//! dsl_lowering [--smoke] [--out BENCH_dsl.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use stencil::decomp::Block2D;
use stencil::mesh::Mesh3D;
use wse_arch::Fabric;
use wse_dsl::host::{block_reference_apply, relay_reference_apply};
use wse_dsl::{lower, StencilSpec};

/// How many times each operator is applied; every apply is checked
/// bit-exact against the host mirror.
const SMOKE_ITERS: usize = 5;
const FULL_ITERS: usize = 5;

/// One operator's workload geometry.
struct Workload {
    operator: &'static str,
    mesh: Mesh3D,
    fabric: (usize, usize),
    block: Option<Block2D>,
}

/// One operator's measured result.
struct Measurement {
    operator: &'static str,
    kind: &'static str,
    taps: usize,
    mesh: Mesh3D,
    fabric: (usize, usize),
    lower_us: f64,
    lint_us: f64,
    cycles_cold: u64,
    cycles_max: u64,
}

/// Deterministic dtype-exact iterate: few mantissa bits, so fp16
/// round-trips exactly and the bit-exact host-mirror comparison is
/// meaningful on every path.
fn test_iterate(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 11) % 23) as f64 * 0.0625 - 0.625).collect()
}

/// Lowers, lints, applies, and cross-checks one operator.
fn measure(w: &Workload, iters: usize) -> Measurement {
    let spec = wse_dsl::catalog::get(w.operator).expect("catalog operator");
    let a = spec.matrix(w.mesh).expect("catalog operator must assemble");

    let mut fabric = Fabric::new(w.fabric.0, w.fabric.1);
    let t0 = Instant::now();
    let lowered = lower(&mut fabric, &spec, &a, w.block)
        .unwrap_or_else(|e| panic!("{} must lower: {e}", w.operator));
    let lower_us = t0.elapsed().as_secs_f64() * 1e6;

    let t1 = Instant::now();
    let diags = wse_lint::lint(&fabric);
    let lint_us = t1.elapsed().as_secs_f64() * 1e6;
    assert!(diags.is_empty(), "{}: lint findings on a catalog operator: {diags:?}", w.operator);

    let v = test_iterate(w.mesh.len());
    let want = host_mirror(&spec, &lowered, &a, w, &v);
    // Repeat counts wobble by a few cycles with residual router phase —
    // deterministically (the simulator is bit-reproducible), so the cold
    // first apply and the max over repeats are both stable across runs.
    let mut seq = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (got, c) = lowered.apply(&mut fabric, &v);
        assert_eq!(got, want, "{}: device diverged from the host mirror", w.operator);
        seq.push(c);
    }

    Measurement {
        operator: w.operator,
        kind: lowered.kind(),
        taps: spec.taps.len(),
        mesh: w.mesh,
        fabric: w.fabric,
        lower_us,
        lint_us,
        cycles_cold: seq[0],
        cycles_max: seq.iter().copied().max().unwrap(),
    }
}

/// The host-side reference for one application, matched to the emitter the
/// lowering layer selected.
fn host_mirror(
    spec: &StencilSpec,
    lowered: &wse_dsl::Lowered,
    a: &stencil::dia::DiaMatrix<f64>,
    w: &Workload,
    v: &[f64],
) -> Vec<f64> {
    match lowered.kind() {
        "block" => {
            let (rx, ry, _) = spec.radius();
            block_reference_apply(
                a,
                &spec.offsets(),
                w.block.expect("block mapping has a block"),
                w.fabric.0,
                w.fabric.1,
                rx.max(ry),
                lowered.dtype,
                v,
            )
        }
        "relay" => relay_reference_apply(spec, a, lowered.dtype, v),
        // Listing 1 on exact data: the fp16 result equals the exact matvec.
        "listing1" => {
            let mut exact = vec![0.0; v.len()];
            a.matvec_f64(v, &mut exact);
            exact
        }
        other => panic!("unknown emitter kind {other}"),
    }
}

/// Renders the measurement set as the checked-in benchmark JSON.
fn render_json(results: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"dsl_lowering\",\n");
    s.push_str("  \"units\": {\"lower_us\": \"host wall microseconds for plan + emit\", ");
    s.push_str("\"lint_us\": \"host wall microseconds for the static verifier\", ");
    s.push_str("\"cycles_cold\": \"simulated cycles for the first u = A v on a fresh program\", ");
    s.push_str("\"cycles_max\": \"max simulated cycles over repeated applies\"},\n");
    s.push_str("  \"results\": [\n");
    for (k, m) in results.iter().enumerate() {
        let points = m.mesh.len() as f64;
        let _ = writeln!(
            s,
            "    {{\"operator\": \"{}\", \"kind\": \"{}\", \"taps\": {}, \
             \"mesh\": \"{}x{}x{}\", \"fabric\": \"{}x{}\", \"lower_us\": {:.0}, \
             \"lint_us\": {:.0}, \"cycles_cold\": {}, \"cycles_max\": {}, \
             \"cycles_per_point\": {:.3}}}{}",
            m.operator,
            m.kind,
            m.taps,
            m.mesh.nx,
            m.mesh.ny,
            m.mesh.nz,
            m.fabric.0,
            m.fabric.1,
            m.lower_us,
            m.lint_us,
            m.cycles_cold,
            m.cycles_max,
            m.cycles_cold as f64 / points,
            if k + 1 == results.len() { "" } else { "," },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dsl.json".to_string());

    let workloads = if smoke {
        vec![
            Workload {
                operator: "star5-2d",
                mesh: Mesh3D::new(8, 8, 1),
                fabric: (2, 2),
                block: Some(Block2D::new(4, 4)),
            },
            Workload {
                operator: "star7-3d",
                mesh: Mesh3D::new(3, 3, 8),
                fabric: (3, 3),
                block: None,
            },
            Workload {
                operator: "star9-2d",
                mesh: Mesh3D::new(8, 8, 1),
                fabric: (2, 2),
                block: Some(Block2D::new(4, 4)),
            },
            Workload {
                operator: "star25-3d",
                mesh: Mesh3D::new(5, 4, 12),
                fabric: (5, 4),
                block: None,
            },
        ]
    } else {
        vec![
            Workload {
                operator: "star5-2d",
                mesh: Mesh3D::new(24, 24, 1),
                fabric: (3, 3),
                block: Some(Block2D::new(8, 8)),
            },
            Workload {
                operator: "star7-3d",
                mesh: Mesh3D::new(4, 4, 64),
                fabric: (4, 4),
                block: None,
            },
            Workload {
                operator: "star9-2d",
                mesh: Mesh3D::new(24, 24, 1),
                fabric: (3, 3),
                block: Some(Block2D::new(8, 8)),
            },
            Workload {
                operator: "star25-3d",
                mesh: Mesh3D::new(6, 6, 48),
                fabric: (6, 6),
                block: None,
            },
        ]
    };
    let iters = if smoke { SMOKE_ITERS } else { FULL_ITERS };

    println!("dsl_lowering: declarative front-end lower+lint cost and per-apply cycles");
    let mut results = Vec::new();
    for w in &workloads {
        let m = measure(w, iters);
        println!(
            "{}: kind={} taps={} mesh={}x{}x{} fabric={}x{} cycles={} (max {} over repeats) \
             host-mirror=bit-exact",
            m.operator,
            m.kind,
            m.taps,
            m.mesh.nx,
            m.mesh.ny,
            m.mesh.nz,
            m.fabric.0,
            m.fabric.1,
            m.cycles_cold,
            m.cycles_max,
        );
        eprintln!(
            "  host wall: lower {:.0} us, lint {:.0} us ({} applies checked)",
            m.lower_us, m.lint_us, iters
        );
        results.push(m);
    }
    println!(
        "all {} operators: lowered lint-clean, host mirror bit-exact across {} applies",
        results.len(),
        iters
    );

    if !smoke {
        std::fs::write(&out, render_json(&results)).expect("write benchmark JSON");
        eprintln!("wrote {out}");
    }
}
