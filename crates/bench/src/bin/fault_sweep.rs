//! Fault-injection sweep: solve-success probability and iteration overhead
//! under seeded faults, per fault kind and fault count.
//!
//! For every fault kind (SRAM bit flip, tile kill, stuck router port, link
//! corruption, link drop) and fault count, this driver runs several
//! independently-seeded trials of the wafer BiCGStab solve with a random
//! [`FaultPlan`] armed, under the checkpoint/rollback recovery engine, and
//! tabulates how often the solve still (verifiably) converges and what the
//! recovery cost was. Everything is seeded — two invocations with the same
//! arguments produce bit-identical output, which `scripts/verify.sh`
//! exploits as a reproducibility check.
//!
//! Usage:
//! ```text
//! fault_sweep [--smoke] [--seed N] [--trials N] [--json] [--multi K]
//! ```
//!
//! `--smoke` runs one seeded fault of each kind on a small problem
//! (sub-second; the CI smoke stage). The default sweep uses the test-scale
//! 4×4 wafer and several counts and trials. `--json` replaces the table
//! with a single machine-readable JSON document (same data, same
//! determinism).
//!
//! `--multi K` switches to the **ensemble leg**: a k-wafer hierarchical
//! BiCGStab ([`wse_core::WaferBicgstabMulti`]) under the paper-default
//! host link, sweeping the host-level fault classes (frame drop, frame
//! corruption, link stall, wafer stall) through the reliable seam
//! transport and the ensemble checkpoint/rollback engine. The table gains
//! `retrans` (frames retransmitted) and `link_down` (retry-budget
//! exhaustions) columns. Same seeding discipline, same bit-identical
//! reproducibility.

use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use wse_arch::{Fabric, FaultKindClass, FaultPlan, SplitMix64};
use wse_core::recovery::{RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire};
use wse_core::{WaferBicgstab, WaferBicgstabMulti};
use wse_float::F16;
use wse_multi::{HostLink, MultiFabric};

struct SweepConfig {
    mesh: Mesh3D,
    fabric: (usize, usize),
    iters: usize,
    counts: Vec<usize>,
    trials: usize,
    seed: u64,
    json: bool,
    /// `Some(k)`: ensemble leg over k wafers and host-level fault classes.
    multi: Option<usize>,
}

/// Per-(kind, count) aggregate over trials.
#[derive(Default)]
struct Cell {
    converged: usize,
    applied: u64,
    committed_iters: usize,
    rollbacks: usize,
    iterations_lost: usize,
    stalls: usize,
    trips: usize,
    false_conv: usize,
    /// Ensemble leg only: frames retransmitted by the reliable transport.
    retransmits: u64,
    /// Ensemble leg only: links declared down (retry budget exhausted).
    link_downs: usize,
}

fn policy() -> RecoveryPolicy {
    // fp16 iterates floor the recursive residual around 1e-3–1e-2 on these
    // problem sizes; stop there rather than at the fp64-scale 1e-7 default,
    // and accept a true residual consistent with that floor.
    RecoveryPolicy {
        checkpoint_every: 2,
        max_retries: 3,
        verify_rel: 0.1,
        tripwire: ResidualTripwire { converged: 2e-2, diverged: 1e6 },
        label: String::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an integer, got '{v}'"))
        })
    };
    let seed = flag("--seed").unwrap_or(42);
    let multi = flag("--multi").map(|k| {
        assert!(k >= 2, "--multi expects at least 2 wafers, got {k}");
        k as usize
    });
    let cfg = if let Some(k) = multi {
        // Ensemble leg: k slabs of at least 2 tiles each along X.
        if smoke {
            SweepConfig {
                mesh: Mesh3D::new(2 * k, 2, 4),
                fabric: (2 * k, 2),
                iters: 10,
                counts: vec![1],
                trials: flag("--trials").unwrap_or(1) as usize,
                seed,
                json,
                multi,
            }
        } else {
            SweepConfig {
                mesh: Mesh3D::new(4 * k, 4, 8),
                fabric: (4 * k, 4),
                iters: 16,
                counts: vec![1, 2, 4],
                trials: flag("--trials").unwrap_or(3) as usize,
                seed,
                json,
                multi,
            }
        }
    } else if smoke {
        SweepConfig {
            mesh: Mesh3D::new(2, 2, 4),
            fabric: (2, 2),
            iters: 10,
            counts: vec![1],
            trials: flag("--trials").unwrap_or(1) as usize,
            seed,
            json,
            multi,
        }
    } else {
        SweepConfig {
            mesh: Mesh3D::new(4, 4, 8),
            fabric: (4, 4),
            iters: 16,
            counts: vec![1, 2, 4],
            trials: flag("--trials").unwrap_or(3) as usize,
            seed,
            json,
            multi,
        }
    };
    if cfg.multi.is_some() {
        run_multi_sweep(&cfg);
    } else {
        run_sweep(&cfg);
    }
}

fn run_sweep(cfg: &SweepConfig) {
    let p = manufactured(cfg.mesh, (1.0, -0.5, 0.5), 11).preconditioned();
    let a16: stencil::DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let (w, h) = cfg.fabric;
    let pol = policy();

    // Fault-free baseline: fixes the per-iteration cost, the convergence
    // point, and the cycle horizon faults are scheduled within.
    let mut fabric = Fabric::new(w, h);
    let solver = WaferBicgstab::build(&mut fabric, &a16);
    let live_words = fabric.tile(0, 0).mem.used() / 2;
    let (_, stats, log) = solver.solve_with_recovery(&mut fabric, &a16, &b16, cfg.iters, &pol);
    let horizon = fabric.cycle().max(1);
    assert_eq!(
        log.outcome,
        RecoveryOutcome::Converged,
        "baseline must converge ({} iters, rel {:.3e}); residuals: {:?}",
        log.iterations,
        log.final_rel_residual,
        stats.residuals
    );

    let mut rows: Vec<(FaultKindClass, usize, Cell)> = Vec::new();
    for kind in FaultKindClass::ALL {
        for &count in &cfg.counts {
            let mut cell = Cell::default();
            for trial in 0..cfg.trials {
                // One deterministic seed per (kind, count, trial) cell,
                // decorrelated through SplitMix64.
                let mut mix = SplitMix64::new(
                    cfg.seed ^ (kind as u64) << 32 ^ (count as u64) << 16 ^ trial as u64,
                );
                let plan_seed = mix.next_u64();
                run_trial(cfg, &a16, &b16, plan_seed, count, kind, live_words, horizon, &mut cell);
            }
            rows.push((kind, count, cell));
        }
    }

    if cfg.json {
        print_json(cfg, &log, horizon, &rows);
    } else {
        print_table(cfg, &pol, &log, horizon, &rows);
    }
}

fn print_table(
    cfg: &SweepConfig,
    pol: &RecoveryPolicy,
    baseline: &RecoveryLog,
    horizon: u64,
    rows: &[(FaultKindClass, usize, Cell)],
) {
    let (w, h) = cfg.fabric;
    println!(
        "fault_sweep: BiCGStab on {w}x{h} wafer, mesh {}x{}x{}, \
         {} trials/cell, seed {}",
        cfg.mesh.nx, cfg.mesh.ny, cfg.mesh.nz, cfg.trials, cfg.seed
    );
    println!(
        "policy: checkpoint every {} iters, {} retries, converge rel < {:.1e} \
         (verified true rel < {:.1e})",
        pol.checkpoint_every, pol.max_retries, pol.tripwire.converged, pol.verify_rel
    );
    println!(
        "baseline (fault-free): {:?} in {} iterations, rel {:.3e}, {} cycles",
        baseline.outcome, baseline.iterations, baseline.final_rel_residual, horizon
    );
    println!();
    println!(
        "{:<14} {:>6} {:>7} {:>8} {:>9} {:>9} {:>10} {:>9} {:>7} {:>6} {:>8}",
        "kind",
        "faults",
        "trials",
        "success",
        "avg_appl",
        "avg_iter",
        "avg_rollbk",
        "avg_lost",
        "stalls",
        "trips",
        "false_cv"
    );
    let t = cfg.trials as f64;
    for (kind, count, cell) in rows {
        println!(
            "{:<14} {:>6} {:>7} {:>8.2} {:>9.2} {:>9.2} {:>10.2} {:>9.2} {:>7.2} {:>6.2} {:>8.2}",
            kind.label(),
            count,
            cfg.trials,
            cell.converged as f64 / t,
            cell.applied as f64 / t,
            cell.committed_iters as f64 / t,
            cell.rollbacks as f64 / t,
            cell.iterations_lost as f64 / t,
            cell.stalls as f64 / t,
            cell.trips as f64 / t,
            cell.false_conv as f64 / t,
        );
    }
    println!();
    println!(
        "iteration overhead = avg_iter - {} (baseline); avg_appl counts faults \
         that actually fired; avg_lost counts rolled-back work",
        baseline.iterations
    );
}

/// Hand-serialized (the build is offline; no serde) machine-readable dump of
/// the same data the table shows. Keys and ordering are fixed, so identical
/// arguments still produce bit-identical output.
fn print_json(
    cfg: &SweepConfig,
    baseline: &RecoveryLog,
    horizon: u64,
    rows: &[(FaultKindClass, usize, Cell)],
) {
    let (w, h) = cfg.fabric;
    println!("{{");
    println!(
        "  \"config\": {{\"fabric\": [{w}, {h}], \"mesh\": [{}, {}, {}], \
         \"iters\": {}, \"trials\": {}, \"seed\": {}}},",
        cfg.mesh.nx, cfg.mesh.ny, cfg.mesh.nz, cfg.iters, cfg.trials, cfg.seed
    );
    println!(
        "  \"baseline\": {{\"outcome\": \"{:?}\", \"iterations\": {}, \
         \"rel_residual\": {:.6e}, \"cycles\": {horizon}}},",
        baseline.outcome, baseline.iterations, baseline.final_rel_residual
    );
    println!("  \"cells\": [");
    for (i, (kind, count, cell)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{\"kind\": \"{}\", \"faults\": {count}, \"trials\": {}, \
             \"converged\": {}, \"applied\": {}, \"committed_iters\": {}, \
             \"rollbacks\": {}, \"iterations_lost\": {}, \"stalls\": {}, \
             \"tripwire_trips\": {}, \"false_convergences\": {}}}{comma}",
            kind.label(),
            cfg.trials,
            cell.converged,
            cell.applied,
            cell.committed_iters,
            cell.rollbacks,
            cell.iterations_lost,
            cell.stalls,
            cell.trips,
            cell.false_conv,
        );
    }
    println!("  ]");
    println!("}}");
}

#[allow(clippy::too_many_arguments)]
fn run_trial(
    cfg: &SweepConfig,
    a16: &stencil::DiaMatrix<F16>,
    b16: &[F16],
    plan_seed: u64,
    count: usize,
    kind: FaultKindClass,
    live_words: u32,
    horizon: u64,
    cell: &mut Cell,
) {
    let (w, h) = cfg.fabric;
    let mut fabric = Fabric::new(w, h);
    let solver = WaferBicgstab::build(&mut fabric, a16);
    // Schedule within the first 3/4 of the baseline horizon so most faults
    // actually land inside the solve.
    let plan =
        FaultPlan::random(plan_seed, count, (horizon * 3 / 4).max(1), w, h, live_words, &[kind]);
    fabric.arm_faults(&plan);
    let (_, _, log) = solver.solve_with_recovery(&mut fabric, a16, b16, cfg.iters, &policy());
    if log.outcome == RecoveryOutcome::Converged {
        cell.converged += 1;
    }
    cell.applied += fabric.fault_log().map_or(0, |l| l.applied.len() as u64);
    cell.committed_iters += log.iterations;
    cell.rollbacks += log.rollbacks;
    cell.iterations_lost += log.iterations_lost;
    cell.stalls += log.stalls;
    cell.trips += log.tripwire_trips;
    cell.false_conv += log.false_convergences;
}

// ---------------------------------------------------------------- ensemble

/// The `--multi K` leg: host-level fault classes against the k-wafer
/// hierarchical solver, through the reliable seam transport and the
/// ensemble checkpoint/rollback engine.
fn run_multi_sweep(cfg: &SweepConfig) {
    let k = cfg.multi.expect("multi leg requires --multi K");
    let p = manufactured(cfg.mesh, (1.0, -0.5, 0.5), 11).preconditioned();
    let a16: stencil::DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let (w, h) = cfg.fabric;
    let pol = policy();

    // Fault-free ensemble baseline fixes the horizon and convergence point.
    let mut multi = MultiFabric::new(w, h, k, HostLink::paper_default());
    let solver = WaferBicgstabMulti::build(&mut multi, &a16);
    let (_, stats, log) = solver.solve_with_recovery(&mut multi, &a16, &b16, cfg.iters, &pol);
    let horizon = multi.cycle().max(1);
    assert_eq!(
        log.outcome,
        RecoveryOutcome::Converged,
        "ensemble baseline must converge ({} iters, rel {:.3e}); residuals: {:?}",
        log.iterations,
        log.final_rel_residual,
        stats.residuals
    );

    let mut rows: Vec<(FaultKindClass, usize, Cell)> = Vec::new();
    for kind in FaultKindClass::HOST_LINK {
        for &count in &cfg.counts {
            let mut cell = Cell::default();
            for trial in 0..cfg.trials {
                // Same per-cell seeding discipline as the on-wafer sweep.
                let mut mix = SplitMix64::new(
                    cfg.seed ^ (kind as u64) << 32 ^ (count as u64) << 16 ^ trial as u64,
                );
                let plan_seed = mix.next_u64();
                run_multi_trial(cfg, k, &a16, &b16, plan_seed, count, kind, horizon, &mut cell);
            }
            rows.push((kind, count, cell));
        }
    }

    if cfg.json {
        print_multi_json(cfg, k, &log, horizon, &rows);
    } else {
        print_multi_table(cfg, k, &pol, &log, horizon, &rows);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_multi_trial(
    cfg: &SweepConfig,
    k: usize,
    a16: &stencil::DiaMatrix<F16>,
    b16: &[F16],
    plan_seed: u64,
    count: usize,
    kind: FaultKindClass,
    horizon: u64,
    cell: &mut Cell,
) {
    let (w, h) = cfg.fabric;
    let mut multi = MultiFabric::new(w, h, k, HostLink::paper_default());
    let solver = WaferBicgstabMulti::build(&mut multi, a16);
    let plan = FaultPlan::random_host_link(plan_seed, count, (horizon * 3 / 4).max(1), k, &[kind]);
    multi.arm_faults(&plan);
    let (_, _, log) = solver.solve_with_recovery(&mut multi, a16, b16, cfg.iters, &policy());
    if log.outcome == RecoveryOutcome::Converged {
        cell.converged += 1;
    }
    cell.applied += multi.fault_log().map_or(0, |l| l.applied.len() as u64);
    cell.committed_iters += log.iterations;
    cell.rollbacks += log.rollbacks;
    cell.iterations_lost += log.iterations_lost;
    cell.stalls += log.stalls;
    cell.trips += log.tripwire_trips;
    cell.false_conv += log.false_convergences;
    cell.retransmits += multi.retransmits();
    cell.link_downs += multi.link_down_records().len();
}

fn print_multi_table(
    cfg: &SweepConfig,
    k: usize,
    pol: &RecoveryPolicy,
    baseline: &RecoveryLog,
    horizon: u64,
    rows: &[(FaultKindClass, usize, Cell)],
) {
    let (w, h) = cfg.fabric;
    println!(
        "fault_sweep --multi {k}: hierarchical BiCGStab on {k}x {}x{h} wafers \
         (global {w}x{h}), mesh {}x{}x{}, {} trials/cell, seed {}",
        w / k,
        cfg.mesh.nx,
        cfg.mesh.ny,
        cfg.mesh.nz,
        cfg.trials,
        cfg.seed
    );
    println!(
        "policy: checkpoint every {} iters, {} retries, converge rel < {:.1e} \
         (verified true rel < {:.1e}); paper-default host link, reliable transport",
        pol.checkpoint_every, pol.max_retries, pol.tripwire.converged, pol.verify_rel
    );
    println!(
        "baseline (fault-free): {:?} in {} iterations, rel {:.3e}, {} cycles",
        baseline.outcome, baseline.iterations, baseline.final_rel_residual, horizon
    );
    println!();
    println!(
        "{:<18} {:>6} {:>7} {:>8} {:>9} {:>9} {:>10} {:>8} {:>9} {:>7} {:>8}",
        "kind",
        "faults",
        "trials",
        "success",
        "avg_appl",
        "avg_iter",
        "avg_rollbk",
        "retrans",
        "link_down",
        "stalls",
        "false_cv"
    );
    let t = cfg.trials as f64;
    for (kind, count, cell) in rows {
        println!(
            "{:<18} {:>6} {:>7} {:>8.2} {:>9.2} {:>9.2} {:>10.2} {:>8.2} {:>9.2} {:>7.2} {:>8.2}",
            kind.label(),
            count,
            cfg.trials,
            cell.converged as f64 / t,
            cell.applied as f64 / t,
            cell.committed_iters as f64 / t,
            cell.rollbacks as f64 / t,
            cell.retransmits as f64 / t,
            cell.link_downs as f64 / t,
            cell.stalls as f64 / t,
            cell.false_conv as f64 / t,
        );
    }
    println!();
    println!(
        "retrans = seam frames re-sent by the go-back-N transport; link_down = \
         links whose retry budget exhausted (every one is named in the log)"
    );
}

fn print_multi_json(
    cfg: &SweepConfig,
    k: usize,
    baseline: &RecoveryLog,
    horizon: u64,
    rows: &[(FaultKindClass, usize, Cell)],
) {
    let (w, h) = cfg.fabric;
    println!("{{");
    println!(
        "  \"config\": {{\"wafers\": {k}, \"fabric\": [{w}, {h}], \"mesh\": [{}, {}, {}], \
         \"iters\": {}, \"trials\": {}, \"seed\": {}}},",
        cfg.mesh.nx, cfg.mesh.ny, cfg.mesh.nz, cfg.iters, cfg.trials, cfg.seed
    );
    println!(
        "  \"baseline\": {{\"outcome\": \"{:?}\", \"iterations\": {}, \
         \"rel_residual\": {:.6e}, \"cycles\": {horizon}}},",
        baseline.outcome, baseline.iterations, baseline.final_rel_residual
    );
    println!("  \"cells\": [");
    for (i, (kind, count, cell)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{\"kind\": \"{}\", \"faults\": {count}, \"trials\": {}, \
             \"converged\": {}, \"applied\": {}, \"committed_iters\": {}, \
             \"rollbacks\": {}, \"retransmits\": {}, \"link_downs\": {}, \
             \"stalls\": {}, \"false_convergences\": {}}}{comma}",
            kind.label(),
            cfg.trials,
            cell.converged,
            cell.applied,
            cell.committed_iters,
            cell.rollbacks,
            cell.retransmits,
            cell.link_downs,
            cell.stalls,
            cell.false_conv,
        );
    }
    println!("  ]");
    println!("}}");
}
