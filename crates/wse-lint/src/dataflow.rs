//! Whole-fabric dataflow model shared by the global verification passes.
//!
//! [`crate::rules::routes`] reasons per tile and per color; the passes
//! built on this module ([`crate::rules::deadlock`],
//! [`crate::rules::races`], [`crate::rules::progress`]) reason about the
//! *whole* program: which producer can feed which consumer (following
//! routes across seam channels in a multi-wafer ensemble), in what order
//! each task's synchronous waits retire, and how much queue buffering a
//! transfer can hide in before its sender blocks.
//!
//! The model is built once per lint run from read-only fabric state and
//! shared by the three passes. Everything here is deterministic: tiles are
//! visited row-major, sites in task-then-statement order, and breadth-first
//! searches expand in fixed port order.

use crate::program::instruction_sites;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wse_arch::dsr::Descriptor;
use wse_arch::fabric::{Fabric, Tile};
use wse_arch::instr::{Stmt, TaskAction};
use wse_arch::types::{Color, Port, TaskId, QUEUE_CAPACITY, RAMP_OUT_CAPACITY};

/// One paired seam channel between two shards of a multi-wafer ensemble:
/// flits leaving `src_shard` through the declared edge port
/// `(sx, sy, sport)` arrive at `dst_shard`'s router input port
/// `(dx, dy, dport)` on the same color.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SeamEdge {
    /// Egress shard index.
    pub src_shard: usize,
    /// Egress tile x (shard-local).
    pub sx: usize,
    /// Egress tile y.
    pub sy: usize,
    /// Egress boundary port.
    pub sport: Port,
    /// Ingress shard index.
    pub dst_shard: usize,
    /// Ingress tile x (shard-local).
    pub dx: usize,
    /// Ingress tile y.
    pub dy: usize,
    /// Ingress boundary port.
    pub dport: Port,
    /// The fabric color the channel carries.
    pub color: Color,
}

/// The unit the global passes analyze: a single fabric, or `k` shards plus
/// the seam channels that stitch them into one logical mesh.
pub struct Ensemble<'a> {
    /// The shards (exactly one for a single fabric).
    pub shards: Vec<&'a Fabric>,
    /// Global x offset of each shard's first tile column (diagnostic
    /// coordinates; all zero is fine when shards don't tile a global mesh).
    pub offsets: Vec<usize>,
    /// Paired seam channels between shards.
    pub seams: Vec<SeamEdge>,
}

impl<'a> Ensemble<'a> {
    /// Wraps one fabric as a trivial ensemble.
    pub fn single(fabric: &'a Fabric) -> Ensemble<'a> {
        Ensemble { shards: vec![fabric], offsets: vec![0], seams: Vec::new() }
    }

    /// Globalized diagnostic coordinates for a shard-local tile.
    pub fn global_tile(&self, shard: usize, x: usize, y: usize) -> (usize, usize) {
        (self.offsets[shard] + x, y)
    }

    /// Human-readable tile label: `"tile (x, y)"`, prefixed with the wafer
    /// index when the ensemble has more than one shard.
    pub fn label(&self, shard: usize, x: usize, y: usize) -> String {
        if self.shards.len() > 1 {
            format!("wafer {shard} tile ({x}, {y})")
        } else {
            format!("tile ({x}, {y})")
        }
    }
}

/// A statement that can block the main thread (or gate later statements):
/// a fabric receive or send, resolved from the instruction sites of a
/// reachable task.
#[derive(Clone, Debug)]
pub struct WaitSite {
    /// Shard index.
    pub shard: usize,
    /// Tile x (shard-local).
    pub x: usize,
    /// Tile y.
    pub y: usize,
    /// The task whose body contains the site.
    pub task: TaskId,
    /// The task's debug name.
    pub task_name: &'static str,
    /// Statement index within the body.
    pub stmt: usize,
    /// `true` for `Launch` sites (background thread; does not block the
    /// main thread, but is only *issued* once earlier synchronous waits
    /// complete).
    pub background: bool,
    /// `(color, len)` of a `FabricIn` source, if the site receives.
    pub recv: Option<(Color, u32)>,
    /// `(color, len)` of a `FabricOut` destination, if the site sends.
    pub send: Option<(Color, u32)>,
}

impl WaitSite {
    /// Witness fragment: what this site does and where.
    pub fn describe(&self, ens: &Ensemble<'_>) -> String {
        let what = match (self.recv, self.send) {
            (Some((rc, rl)), Some((sc, sl))) => {
                format!("recv color {rc} (len {rl}) -> send color {sc} (len {sl})")
            }
            (Some((rc, rl)), None) => format!("recv color {rc} (len {rl})"),
            (None, Some((sc, sl))) => format!("send color {sc} (len {sl})"),
            (None, None) => "wait".to_string(),
        };
        format!(
            "{} task {} (\"{}\") stmt {}{}: {what}",
            ens.label(self.shard, self.x, self.y),
            self.task,
            self.task_name,
            self.stmt,
            if self.background { " (thread)" } else { "" },
        )
    }
}

/// Where a color's flits are delivered when injected at an origin router
/// node, with the buffering available along the way.
#[derive(Clone, Debug, Default)]
pub struct Flow {
    /// Delivered ramps: `(shard, x, y)` → `(router nodes on the shortest
    /// path, crossed a seam)`. Host-buffered seam crossings make the
    /// effective buffering unbounded for backpressure purposes.
    pub delivered: BTreeMap<(usize, usize, usize), (usize, bool)>,
    /// Seam indices whose egress port the flow reaches.
    pub seams_reached: BTreeSet<usize>,
}

/// Conservative flit capacity between a sender and a receiver `dist`
/// router nodes away: the sender's ramp-out queue, one router queue per
/// node on the path, and the receiver's ramp-in queue. A synchronous send
/// longer than this cannot complete until the receiver drains.
pub fn path_capacity(dist: usize) -> u32 {
    (RAMP_OUT_CAPACITY + (dist + 1) * QUEUE_CAPACITY) as u32
}

/// The whole-ensemble model: reachable tasks per tile, wait sites of
/// reachable tasks, and route-flow queries.
pub struct Model<'a> {
    /// The ensemble under analysis.
    pub ens: &'a Ensemble<'a>,
    /// Per shard, per tile (row-major): the activation-reachable task set.
    pub reachable: Vec<Vec<BTreeSet<TaskId>>>,
    /// Wait sites of reachable tasks, in shard/tile/task/statement order.
    pub waits: Vec<WaitSite>,
}

impl<'a> Model<'a> {
    /// Builds the model. Read-only; no cycle is stepped.
    pub fn build(ens: &'a Ensemble<'a>) -> Model<'a> {
        let mut reachable = Vec::with_capacity(ens.shards.len());
        let mut waits = Vec::new();
        for (s, fabric) in ens.shards.iter().enumerate() {
            let mut shard_reach = Vec::with_capacity(fabric.width() * fabric.height());
            for y in 0..fabric.height() {
                for x in 0..fabric.width() {
                    let tile = fabric.tile(x, y);
                    let reach = reachable_tasks(tile);
                    collect_waits(s, x, y, tile, &reach, &mut waits);
                    shard_reach.push(reach);
                }
            }
            reachable.push(shard_reach);
        }
        Model { ens, reachable, waits }
    }

    /// The reachable task set of a tile.
    pub fn reachable(&self, shard: usize, x: usize, y: usize) -> &BTreeSet<TaskId> {
        &self.reachable[shard][y * self.ens.shards[shard].width() + x]
    }

    /// Flow of `color` injected at the ramp of `(shard, x, y)`: every ramp
    /// it is delivered to, following routes and crossing paired seams.
    pub fn flow_from_ramp(&self, shard: usize, x: usize, y: usize, color: Color) -> Flow {
        self.flow(color, &[(shard, x, y, Port::Ramp)])
    }

    /// Flow of `color` from a set of origin router nodes
    /// `(shard, x, y, in_port)`. Breadth-first over the per-color
    /// forwarding graph; seam egress ports continue at the paired ingress.
    pub fn flow(&self, color: Color, origins: &[(usize, usize, usize, Port)]) -> Flow {
        let mut flow = Flow::default();
        let mut seen: BTreeSet<(usize, usize, usize, usize)> = BTreeSet::new();
        let mut queue: VecDeque<(usize, usize, usize, Port, usize, bool)> = VecDeque::new();
        for &(s, x, y, p) in origins {
            if seen.insert((s, x, y, p.index())) {
                queue.push_back((s, x, y, p, 1, false));
            }
        }
        while let Some((s, x, y, p, dist, seamed)) = queue.pop_front() {
            let fabric = self.ens.shards[s];
            let Some(fanout) = fabric.tile(x, y).router.route(p, color) else { continue };
            for &out in fanout {
                if out == Port::Ramp {
                    let e = flow.delivered.entry((s, x, y)).or_insert((dist, seamed));
                    // Keep the shortest path; a seam on *any* delivering
                    // path means host buffering can absorb the transfer.
                    e.1 |= seamed;
                    continue;
                }
                if let Some((nx, ny)) = neighbor(fabric, x, y, out) {
                    let np = out.opposite().expect("cardinal port");
                    if seen.insert((s, nx, ny, np.index())) {
                        queue.push_back((s, nx, ny, np, dist + 1, seamed));
                    }
                } else {
                    // Off the shard edge: continue through a paired seam.
                    for (i, seam) in self.ens.seams.iter().enumerate() {
                        if seam.src_shard == s
                            && seam.sx == x
                            && seam.sy == y
                            && seam.sport == out
                            && seam.color == color
                        {
                            flow.seams_reached.insert(i);
                            let (ds, dx, dy, dp) = (seam.dst_shard, seam.dx, seam.dy, seam.dport);
                            if seen.insert((ds, dx, dy, dp.index())) {
                                queue.push_back((ds, dx, dy, dp, dist + 1, true));
                            }
                        }
                    }
                }
            }
        }
        flow
    }

    /// All origin router nodes that can introduce `color` flits into the
    /// ensemble: the ramp of every tile whose reachable program sends on
    /// it, plus declared edge ports that are *not* seam-internal (external
    /// host injection points).
    pub fn sources(&self, color: Color) -> Vec<(usize, usize, usize, Port)> {
        let mut origins = Vec::new();
        for w in &self.waits {
            if matches!(w.send, Some((c, _)) if c == color) {
                let node = (w.shard, w.x, w.y, Port::Ramp);
                if !origins.contains(&node) {
                    origins.push(node);
                }
            }
        }
        for (s, fabric) in self.ens.shards.iter().enumerate() {
            for (x, y, port, c) in fabric.edge_ports() {
                if c != color {
                    continue;
                }
                let seam_internal = self.ens.seams.iter().any(|e| {
                    (e.src_shard == s && e.sx == x && e.sy == y && e.sport == port)
                        || (e.dst_shard == s && e.dx == x && e.dy == y && e.dport == port)
                });
                if !seam_internal {
                    origins.push((s, x, y, port));
                }
            }
        }
        origins
    }
}

fn neighbor(fabric: &Fabric, x: usize, y: usize, out: Port) -> Option<(usize, usize)> {
    let (dx, dy) = out.delta();
    let nx = x as i64 + dx as i64;
    let ny = y as i64 + dy as i64;
    if nx < 0 || ny < 0 || nx >= fabric.width() as i64 || ny >= fabric.height() as i64 {
        None
    } else {
        Some((nx as usize, ny as usize))
    }
}

/// Extracts the wait sites of `tile`'s reachable tasks.
fn collect_waits(
    shard: usize,
    x: usize,
    y: usize,
    tile: &Tile,
    reachable: &BTreeSet<TaskId>,
    waits: &mut Vec<WaitSite>,
) {
    for site in instruction_sites(&tile.core) {
        if !reachable.contains(&site.task) {
            continue;
        }
        let recv = site.sources().find_map(|op| match op.desc {
            Descriptor::FabricIn { color, len, .. } if len > 0 => Some((color, len)),
            _ => None,
        });
        let send = site.dst.as_ref().and_then(|op| match op.desc {
            Descriptor::FabricOut { color, len, .. } if len > 0 => Some((color, len)),
            _ => None,
        });
        if recv.is_none() && send.is_none() {
            continue;
        }
        waits.push(WaitSite {
            shard,
            x,
            y,
            task: site.task,
            task_name: site.task_name,
            stmt: site.stmt,
            background: site.background,
            recv,
            send,
        });
    }
}

/// The activation-reachability fixpoint for one tile: tasks that can ever
/// run, seeded from already-activated tasks, declared entry points, and
/// data triggers whose color some local route actually delivers to the
/// ramp; grown through `TaskCtl` activations, thread-completion triggers,
/// and FIFO `onpush` targets of reachable code.
pub fn reachable_tasks(tile: &Tile) -> BTreeSet<TaskId> {
    let core = &tile.core;
    let sites = instruction_sites(core);
    let mut reachable: BTreeSet<TaskId> = BTreeSet::new();
    for (id, task) in core.tasks() {
        if task.start_activated || core.task_activated(id) {
            reachable.insert(id);
        }
    }
    reachable.extend(core.entry_tasks().iter().copied());
    for b in core.bindings() {
        let delivered =
            tile.router.routes().any(|(_, c, fanout)| c == b.color && fanout.contains(&Port::Ramp));
        if delivered {
            reachable.insert(b.task);
        }
    }
    loop {
        let mut grew = false;
        let add = |set: &mut BTreeSet<TaskId>, id: TaskId, grew: &mut bool| {
            if set.insert(id) {
                *grew = true;
            }
        };
        for (id, task) in core.tasks() {
            if !reachable.contains(&id) {
                continue;
            }
            for stmt in &task.body {
                if let Stmt::TaskCtl { task: t, action: TaskAction::Activate } = stmt {
                    add(&mut reachable, *t, &mut grew);
                }
            }
        }
        for site in &sites {
            if !reachable.contains(&site.task) {
                continue;
            }
            if let Some((t, TaskAction::Activate)) = site.on_complete {
                add(&mut reachable, t, &mut grew);
            }
            if let Some(dst) = &site.dst {
                if let Descriptor::Fifo { fifo } = dst.desc {
                    if let Some(t) = core.fifo(fifo).onpush {
                        add(&mut reachable, t, &mut grew);
                    }
                }
            }
        }
        if !grew {
            return reachable;
        }
    }
}
