//! Static verifier for wafer programs.
//!
//! A wafer program is routing tables, task bodies, DSR descriptors, FIFOs,
//! and color bindings spread across tens of thousands of tiles. Most
//! configuration mistakes — a route into a port nobody drains, two streams
//! sharing a color inside one task, a descriptor reaching past its buffer —
//! surface at runtime as a silent stall hundreds of thousands of cycles in,
//! with nothing but full queues to look at. On hardware that is a hung
//! wafer; in the simulator it is a `Stalled` error after the cycle budget.
//!
//! `wse-lint` takes a fully configured [`Fabric`] **before any cycle is
//! stepped** and checks the static invariants the paper's programs rely on:
//!
//! * **Route graph** ([`rules::routes`]) — per-color forwarding graphs:
//!   cycles (credit-backpressure deadlock risk), fanout into off-fabric
//!   edges or into neighbor ports with no forwarding rule, ramp deliveries
//!   no task ever consumes, receive configurations no route can feed, and
//!   sends with no route out of the ramp.
//! * **Color discipline** ([`rules::colors`]) — the pairwise-distinct-
//!   channels invariant `spmv_color` promises, checked generically: no two
//!   concurrent receive streams within one task may share a color. Colors
//!   must also be inside the hardware's 24.
//! * **Memory budget** ([`rules::memory`]) — descriptor and FIFO extents
//!   against the 48 KB SRAM and the allocation map, plus partial-overlap
//!   (aliasing) checks between instruction operands.
//! * **Task activation** ([`rules::tasks`]) — reachability from declared
//!   entry points, data triggers, and completion chains: tasks that can
//!   never activate, tasks blocked forever, FIFO pushes with no bound task
//!   or reader.
//! * **Deadlock** ([`rules::deadlock`]) — the whole-fabric waits-for graph
//!   over synchronous sends, receives, and queue backpressure, across seam
//!   channels in an ensemble; every cycle is reported with its full
//!   witness.
//! * **Data races** ([`rules::races`]) — per-task SRAM read/write sets
//!   from resolved instruction sites; overlapping accesses between a
//!   launched background thread and code not ordered against it.
//! * **Progress** ([`rules::progress`]) — every armed consumer is fed by
//!   some producer's route flow, and every seam channel that carries
//!   traffic can drain at its ingress.
//!
//! The entry point is [`lint`] for a single fabric and [`lint_ensemble`]
//! for a multi-wafer ensemble; [`assert_clean`] is the panic-on-findings
//! wrapper kernel builders call in debug builds.

#![warn(missing_docs)]

use std::fmt;
use wse_arch::fabric::Fabric;

pub mod dataflow;
pub mod fixtures;
pub mod program;
pub mod rules;

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but conceivably intended; the program may still run.
    Warning,
    /// The program will stall, lose data, or compute garbage.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which check produced a finding.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// A route forwards off the edge of the fabric.
    RouteOffFabric,
    /// A route forwards into a neighbor port with no forwarding rule: flits
    /// pile up in that queue and backpressure the sender forever.
    RouteDangling,
    /// The per-color forwarding graph has a cycle; with credit-based
    /// backpressure a filled cycle can never drain (deadlock risk).
    RouteCycle,
    /// A route delivers a color to the ramp of a core with no receive
    /// descriptor for it; the ramp-in queue fills and stalls the router.
    DeadDelivery,
    /// A task consumes a color no route ever delivers to this tile — the
    /// receive can never complete.
    UnreachableReceive,
    /// A task sends on a color with no route out of the ramp — the send
    /// queue fills and the thread never finishes.
    MissingRampRoute,
    /// Two concurrent receive streams in one task share a color; flit
    /// attribution between them is nondeterministic.
    ColorConflict,
    /// A color identifier is outside the hardware's range.
    ColorOutOfRange,
    /// A descriptor or FIFO extent reaches past the 48 KB tile SRAM.
    SramOverBudget,
    /// A descriptor or FIFO extent is not contained in any allocation.
    UnallocatedExtent,
    /// An instruction's destination partially overlaps a source extent;
    /// streamed element order makes the result order-dependent.
    DsrOverlap,
    /// A task can never activate: no entry declaration, data trigger,
    /// completion trigger, or reachable activation names it.
    UnreachableTask,
    /// A task starts blocked and nothing reachable ever unblocks it.
    BlockedForever,
    /// A FIFO is written but has no `onpush` task and no reachable reader —
    /// pushed data is never drained.
    FifoNeverDrained,
    /// A cycle in the whole-fabric waits-for graph: a set of synchronous
    /// sends and receives (and the queues between them) that can never all
    /// retire once the bounded slack fills.
    DeadlockCycle,
    /// A launched background thread's SRAM accesses overlap an access by
    /// code not ordered against it; element interleaving decides the result.
    DataRace,
    /// A consumer routes a color to its ramp but no producer flow in the
    /// whole ensemble reaches it — the consumer arms and waits forever.
    ColorStarved,
    /// Traffic reaches a seam channel whose ingress router cannot forward
    /// it; the queue fills, credits stop returning, the sender wedges.
    CreditStarvation,
}

impl Rule {
    /// Stable kebab-case name (CLI output, test assertions).
    pub fn name(self) -> &'static str {
        match self {
            Rule::RouteOffFabric => "route-off-fabric",
            Rule::RouteDangling => "route-dangling",
            Rule::RouteCycle => "route-cycle",
            Rule::DeadDelivery => "dead-delivery",
            Rule::UnreachableReceive => "unreachable-receive",
            Rule::MissingRampRoute => "missing-ramp-route",
            Rule::ColorConflict => "color-conflict",
            Rule::ColorOutOfRange => "color-out-of-range",
            Rule::SramOverBudget => "sram-over-budget",
            Rule::UnallocatedExtent => "unallocated-extent",
            Rule::DsrOverlap => "dsr-overlap",
            Rule::UnreachableTask => "unreachable-task",
            Rule::BlockedForever => "blocked-forever",
            Rule::FifoNeverDrained => "fifo-never-drained",
            Rule::DeadlockCycle => "deadlock-cycle",
            Rule::DataRace => "data-race",
            Rule::ColorStarved => "color-starved",
            Rule::CreditStarvation => "credit-starvation",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Tile coordinates `(x, y)`.
    pub tile: (usize, usize),
    /// How bad it is.
    pub severity: Severity,
    /// Which check fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] tile ({}, {}): {}",
            self.severity, self.rule, self.tile.0, self.tile.1, self.message
        )
    }
}

/// Runs every rule over a configured fabric. No cycle is stepped; the
/// fabric is read-only. Findings are ordered by tile, then rule.
pub fn lint(fabric: &Fabric) -> Vec<Diagnostic> {
    lint_ensemble(&dataflow::Ensemble::single(fabric))
}

/// Runs every rule over one rectangular region of a fabric — the
/// admission-control lint gate of the multi-tenant service: a tenant
/// program is verified *in isolation* before (or after) it is placed on
/// the shared fabric.
///
/// The region's tiles are extracted into a scratch region-sized fabric
/// ([`Fabric::extract_region`] — routing is per-tile, so the extract is
/// exactly the program a dedicated fabric of that shape would hold) and
/// linted there. This makes containment an enforced invariant for free: a
/// route that escapes the region surfaces as `route-off-fabric` /
/// `route-dangling` on the extract. Diagnostic coordinates are mapped
/// back to absolute fabric coordinates.
///
/// # Panics
/// Panics if the region reaches outside the fabric.
pub fn lint_region(fabric: &Fabric, region: wse_arch::Region) -> Vec<Diagnostic> {
    let scratch = fabric.extract_region(region);
    let mut diags = lint(&scratch);
    for d in &mut diags {
        d.tile.0 += region.x;
        d.tile.1 += region.y;
    }
    diags
}

/// Runs every rule over a multi-wafer ensemble: the per-shard rules on each
/// shard (diagnostic x coordinates globalized by the shard's offset), then
/// the whole-ensemble passes — deadlock, data races, progress — over the
/// shared dataflow model with seam channels included. No cycle is stepped.
pub fn lint_ensemble(ens: &dataflow::Ensemble<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (s, fabric) in ens.shards.iter().enumerate() {
        let mut local = Vec::new();
        rules::routes::check(fabric, &mut local);
        rules::colors::check(fabric, &mut local);
        rules::memory::check(fabric, &mut local);
        rules::tasks::check(fabric, &mut local);
        for mut d in local {
            d.tile.0 += ens.offsets[s];
            diags.push(d);
        }
    }
    let model = dataflow::Model::build(ens);
    rules::deadlock::check(&model, &mut diags);
    rules::races::check(&model, &mut diags);
    rules::progress::check(&model, &mut diags);
    diags.sort_by(|a, b| {
        (a.tile.1, a.tile.0, a.rule, &a.message).cmp(&(b.tile.1, b.tile.0, b.rule, &b.message))
    });
    diags
}

/// Lints and panics with a formatted report if any diagnostic is found.
/// Kernel builders call this at the end of program construction in debug
/// builds, so a misconfigured program fails at build time, not as a stall a
/// million cycles later.
///
/// # Panics
/// Panics if [`lint`] returns any diagnostics.
pub fn assert_clean(fabric: &Fabric) {
    let diags = lint(fabric);
    if !diags.is_empty() {
        let mut report = format!("wse-lint: {} diagnostic(s):\n", diags.len());
        for d in &diags {
            report.push_str(&format!("  {d}\n"));
        }
        panic!("{report}");
    }
}
