//! A read-only model of one core's program, shared by the rules.
//!
//! The rules reason about *instruction sites*: every `Exec` or `Launch`
//! statement in every task body, with each DSR operand resolved to the
//! descriptor it will hold when the statement runs. Resolution tracks
//! `InitDsr` statements linearly through each body (the re-arm idiom at the
//! top of Listing 1's `spmv` task); a DSR not re-armed in the body keeps
//! the descriptor it was registered with.

use std::collections::BTreeSet;
use wse_arch::core::Core;
use wse_arch::dsr::Descriptor;
use wse_arch::instr::{Stmt, TaskAction, TensorInstr};
use wse_arch::types::{Color, DsrId, TaskId};

/// One DSR operand of an instruction site, resolved to its descriptor.
#[derive(Copy, Clone, Debug)]
pub struct ResolvedOperand {
    /// The DSR the instruction names.
    pub dsr: DsrId,
    /// The descriptor that DSR holds when the statement runs.
    pub desc: Descriptor,
}

/// An `Exec` or `Launch` statement with resolved operands.
#[derive(Clone, Debug)]
pub struct InstrSite {
    /// The task whose body contains the statement.
    pub task: TaskId,
    /// The task's debug name.
    pub task_name: &'static str,
    /// Statement index within the body.
    pub stmt: usize,
    /// `true` for `Launch` (background thread), `false` for `Exec`.
    pub background: bool,
    /// The instruction itself.
    pub instr: TensorInstr,
    /// Resolved destination operand.
    pub dst: Option<ResolvedOperand>,
    /// Resolved first source operand.
    pub a: Option<ResolvedOperand>,
    /// Resolved second source operand.
    pub b: Option<ResolvedOperand>,
    /// Completion trigger, for `Launch` sites.
    pub on_complete: Option<(TaskId, TaskAction)>,
}

impl InstrSite {
    /// The resolved operands present on this site, destination first.
    pub fn operands(&self) -> impl Iterator<Item = &ResolvedOperand> {
        [self.dst.as_ref(), self.a.as_ref(), self.b.as_ref()].into_iter().flatten()
    }

    /// Source operands only.
    pub fn sources(&self) -> impl Iterator<Item = &ResolvedOperand> {
        [self.a.as_ref(), self.b.as_ref()].into_iter().flatten()
    }
}

/// Every instruction site of every task on `core`, in task order then
/// statement order.
pub fn instruction_sites(core: &Core) -> Vec<InstrSite> {
    let mut sites = Vec::new();
    for (task_id, task) in core.tasks() {
        // Effective descriptor per DSR, updated by InitDsr as we walk.
        let mut effective: Vec<Descriptor> = core.dsrs().map(|(_, d)| d.desc).collect();
        let resolve = |eff: &[Descriptor], id: Option<DsrId>| {
            id.map(|dsr| ResolvedOperand { dsr, desc: eff[dsr] })
        };
        for (stmt_idx, stmt) in task.body.iter().enumerate() {
            match stmt {
                Stmt::InitDsr { dsr, desc } => effective[*dsr] = *desc,
                Stmt::Exec(instr) => sites.push(InstrSite {
                    task: task_id,
                    task_name: task.name,
                    stmt: stmt_idx,
                    background: false,
                    instr: *instr,
                    dst: resolve(&effective, instr.dst),
                    a: resolve(&effective, instr.a),
                    b: resolve(&effective, instr.b),
                    on_complete: None,
                }),
                Stmt::Launch { instr, on_complete, .. } => sites.push(InstrSite {
                    task: task_id,
                    task_name: task.name,
                    stmt: stmt_idx,
                    background: true,
                    instr: *instr,
                    dst: resolve(&effective, instr.dst),
                    a: resolve(&effective, instr.a),
                    b: resolve(&effective, instr.b),
                    on_complete: *on_complete,
                }),
                Stmt::TaskCtl { .. } | Stmt::RegArith { .. } | Stmt::SetReg { .. } => {}
            }
        }
    }
    sites
}

/// Colors the core can consume from the fabric: every `FabricIn` color an
/// instruction site actually reads through. Zero-length receives complete
/// without consuming a flit and so do not count.
pub fn consumed_colors(core: &Core) -> BTreeSet<Color> {
    all_descriptors(core)
        .into_iter()
        .filter_map(|d| match d {
            Descriptor::FabricIn { color, len, .. } if len > 0 => Some(color),
            _ => None,
        })
        .collect()
}

/// Colors the core injects into the fabric (`FabricOut` descriptors some
/// instruction site writes through).
pub fn produced_colors(core: &Core) -> BTreeSet<Color> {
    all_descriptors(core)
        .into_iter()
        .filter_map(|d| match d {
            Descriptor::FabricOut { color, .. } => Some(color),
            _ => None,
        })
        .collect()
}

/// Every descriptor some instruction can actually use: the resolved
/// operands of every instruction site. A DSR that is registered (or
/// re-armed) but never named by an `Exec`/`Launch` operand is inert —
/// builders commonly pre-register descriptors for neighbors that turn out
/// to be absent — so it contributes nothing here.
pub fn all_descriptors(core: &Core) -> Vec<Descriptor> {
    instruction_sites(core).iter().flat_map(|s| s.operands().map(|o| o.desc)).collect()
}
