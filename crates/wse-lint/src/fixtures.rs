//! Intentionally broken wafer programs, one per failure mode of the
//! whole-fabric passes.
//!
//! Each fixture is a complete, runnable program that violates exactly one
//! invariant. They are shared by three consumers:
//!
//! * the fixture tests in `wse-lint`, which assert the matching rule fires
//!   **statically** with a concrete witness;
//! * the dynamic cross-check tests, which *run* each fixture and assert it
//!   misbehaves the way the diagnostic predicts (a deadlocked or starved
//!   program stalls the watchdog; a racy program trips the runtime
//!   sanitizer);
//! * the `wse-lint` CLI's `fixture:NAME` mode, which the repo's
//!   `lint_fixtures` verify stage diffs against checked-in expected
//!   diagnostics.
//!
//! Every fixture both `mark_entry`s its tasks (so static reachability sees
//! them) and `activate`s them (so the program runs without a host driver).

use wse_arch::dsr::mk;
use wse_arch::fabric::Fabric;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, Port};

/// Names of every fixture, in the order `build` knows them.
pub const ALL: &[&str] = &[
    "deadlock-request-reply",
    "deadlock-backpressure",
    "race-overlapping-writes",
    "race-write-after-read",
    "starved-no-producer",
    "starved-unreached-consumer",
];

/// Builds a fixture by name (`None` for an unknown name).
pub fn build(name: &str) -> Option<Fabric> {
    Some(match name {
        "deadlock-request-reply" => deadlock_request_reply(),
        "deadlock-backpressure" => deadlock_backpressure(),
        "race-overlapping-writes" => race_overlapping_writes(),
        "race-write-after-read" => race_write_after_read(),
        "starved-no-producer" => starved_no_producer(),
        "starved-unreached-consumer" => starved_unreached_consumer(),
        _ => return None,
    })
}

fn copy(dst: usize, a: usize) -> Stmt {
    Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dst), a: Some(a), b: None })
}

/// Two tiles, each of which **receives before it sends** — the classic
/// request-reply deadlock. Tile (0,0) waits for color 2 from (1,0) before
/// sending color 1; tile (1,0) waits for color 1 before sending color 2.
/// Neither send can ever start, so both receives wait forever: a cyclic
/// wait through two producer edges and two task-order gates.
pub fn deadlock_request_reply() -> Fabric {
    let mut f = Fabric::new(2, 1);
    f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
    f.set_route(0, 0, Port::East, 2, &[Port::Ramp]);
    f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
    f.set_route(1, 0, Port::Ramp, 2, &[Port::West]);
    for (x, rx_color, tx_color) in [(0usize, 2u8, 1u8), (1, 1, 2)] {
        let t = f.tile_mut(x, 0);
        let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        let d_rx = t.core.add_dsr(mk::rx16(rx_color, 4));
        let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
        let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
        let d_tx = t.core.add_dsr(mk::tx16(tx_color, 4));
        let task = t.core.add_task(Task::new("reply", vec![copy(d_buf, d_rx), copy(d_tx, d_src)]));
        t.core.mark_entry(task);
        t.core.activate(task);
    }
    f
}

/// Two tiles that each start a **synchronous send longer than the path can
/// buffer** (48 words against 32 words of ramp-out + queue slack), with the
/// matching receive sequenced *after* their own send. Both senders wedge on
/// backpressure waiting for the other side to drain, which it never does —
/// a cyclic wait through two backpressure edges and two task-order gates.
pub fn deadlock_backpressure() -> Fabric {
    const N: u32 = 48; // > ramp-out + per-hop queues + ramp-in = 32 flits
    let mut f = Fabric::new(2, 1);
    f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
    f.set_route(0, 0, Port::East, 2, &[Port::Ramp]);
    f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
    f.set_route(1, 0, Port::Ramp, 2, &[Port::West]);
    for (x, tx_color, rx_color) in [(0usize, 1u8, 2u8), (1, 2, 1)] {
        let t = f.tile_mut(x, 0);
        let buf = t.mem.alloc_vec(N, Dtype::F16).unwrap();
        let d_src = t.core.add_dsr(mk::tensor16(buf, N));
        let d_tx = t.core.add_dsr(mk::tx16(tx_color, N));
        let d_rx = t.core.add_dsr(mk::rx16(rx_color, N));
        let d_dst = t.core.add_dsr(mk::tensor16(buf, N));
        let task =
            t.core.add_task(Task::new("exchange", vec![copy(d_tx, d_src), copy(d_dst, d_rx)]));
        t.core.mark_entry(task);
        t.core.activate(task);
    }
    f
}

/// One tile whose entry task launches **two background copies into the same
/// buffer** with no ordering between them: element interleaving (the
/// round-robin datapath) decides every byte of the result.
pub fn race_overlapping_writes() -> Fabric {
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let src_a = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let src_b = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let d_buf0 = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_buf1 = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_a = t.core.add_dsr(mk::tensor16(src_a, 16));
    let d_b = t.core.add_dsr(mk::tensor16(src_b, 16));
    let task = t.core.add_task(Task::new(
        "scatter",
        vec![
            Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_buf0), a: Some(d_a), b: None },
                on_complete: None,
            },
            Stmt::Launch {
                slot: 1,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_buf1), a: Some(d_b), b: None },
                on_complete: None,
            },
        ],
    ));
    t.core.mark_entry(task);
    t.core.activate(task);
    f
}

/// One tile that launches a background **send reading a buffer**, then
/// immediately **overwrites the same buffer** on the main thread without
/// waiting for the send to complete: the stream on the wire is a mix of old
/// and new values. The sent words come back over the ramp loopback into a
/// separate scratch buffer (so the program terminates and nothing else
/// lints); the only defect is the write-after-read. Note the writer does
/// *not* receive what the reader sends — this is exactly the broken cousin
/// of the sanctioned flow-through in-place update.
pub fn race_write_after_read() -> Fabric {
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 0, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let next = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let scratch = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let d_buf_r = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_buf_w = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_next = t.core.add_dsr(mk::tensor16(next, 16));
    let d_scratch = t.core.add_dsr(mk::tensor16(scratch, 16));
    let d_tx = t.core.add_dsr(mk::tx16(0, 16));
    let d_rx = t.core.add_dsr(mk::rx16(0, 16));
    let task = t.core.add_task(Task::new(
        "overlap",
        vec![
            Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_buf_r), b: None },
                on_complete: None,
            },
            copy(d_buf_w, d_next),
            copy(d_scratch, d_rx),
        ],
    ));
    t.core.mark_entry(task);
    t.core.activate(task);
    f
}

/// A consumer whose tile routes color 6 to its own ramp and arms a receive
/// — but **nothing in the whole ensemble produces color 6**. The receive
/// waits forever; statically this is starvation, not a routing error (the
/// local delivery route exists).
pub fn starved_no_producer() -> Fabric {
    let mut f = Fabric::new(2, 1);
    f.set_route(1, 0, Port::West, 6, &[Port::Ramp]);
    let t = f.tile_mut(1, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_rx = t.core.add_dsr(mk::rx16(6, 4));
    let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
    let task = t.core.add_task(Task::new("listener", vec![copy(d_buf, d_rx)]));
    t.core.mark_entry(task);
    t.core.activate(task);
    f
}

/// Color 6 **is** produced — at (0,0), flowing east to the consumer at
/// (1,0) — but a second consumer at (0,1) also arms a receive whose local
/// delivery route is fed by nothing: no producer's route flow ever reaches
/// it. The first consumer finishes; the second waits forever.
pub fn starved_unreached_consumer() -> Fabric {
    let mut f = Fabric::new(2, 2);
    f.set_route(0, 0, Port::Ramp, 6, &[Port::East]);
    f.set_route(1, 0, Port::West, 6, &[Port::Ramp]);
    f.set_route(0, 1, Port::East, 6, &[Port::Ramp]);
    {
        let t = f.tile_mut(0, 0);
        let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
        let d_tx = t.core.add_dsr(mk::tx16(6, 4));
        let task = t.core.add_task(Task::new("producer", vec![copy(d_tx, d_src)]));
        t.core.mark_entry(task);
        t.core.activate(task);
    }
    for y in [0usize, 1] {
        let t = f.tile_mut(if y == 0 { 1 } else { 0 }, y);
        let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        let d_rx = t.core.add_dsr(mk::rx16(6, 4));
        let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
        let task = t.core.add_task(Task::new("consumer", vec![copy(d_buf, d_rx)]));
        t.core.mark_entry(task);
        t.core.activate(task);
    }
    f
}
