//! Progress / termination analysis: every armed consumer must be able to
//! quiesce.
//!
//! [`crate::rules::routes`] already rejects a receive no *local* route can
//! feed. This pass closes the global half of that argument over the
//! whole-fabric [`crate::dataflow::Model`]:
//!
//! * **Starved colors** ([`crate::Rule::ColorStarved`]) — a tile consumes a
//!   color and its router would deliver it to the ramp, but no producer
//!   anywhere in the ensemble (no sending task's ramp, no external edge
//!   injection point) has a route flow reaching this tile. The consumer
//!   arms, waits, and never fires; a watchdog reports the stall only after
//!   its whole cycle budget burns.
//! * **Credit starvation** ([`crate::Rule::CreditStarvation`]) — traffic
//!   reaches a seam channel whose ingress tile has no forwarding rule for
//!   the arriving `(port, color)`. The host link delivers the first flits,
//!   the ingress router queue fills, seam credits stop returning, and the
//!   egress wafer wedges. Ensemble-only: a single fabric has no seams.
//!
//! Both diagnostics carry the witness the operator needs: the consumer or
//! seam endpoint, the producers that were considered, and why the flow
//! never arrives.

use crate::dataflow::{Flow, Model};
use crate::{Diagnostic, Rule, Severity};
use std::collections::{BTreeMap, BTreeSet};
use wse_arch::types::{Color, Port};

/// Runs the progress pass over the whole ensemble.
pub fn check(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    check_starved_colors(model, diags);
    if !model.ens.seams.is_empty() {
        check_seam_credits(model, diags);
    }
}

/// Consumers of each color, per tile: data-trigger bindings and synchronous
/// receive sites of reachable tasks — but only where a local route actually
/// delivers the color to the ramp (otherwise
/// [`crate::Rule::UnreachableReceive`] already reported the tile).
fn check_starved_colors(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    let mut consumers: BTreeSet<(usize, usize, usize, Color)> = BTreeSet::new();
    for (s, fabric) in model.ens.shards.iter().enumerate() {
        for y in 0..fabric.height() {
            for x in 0..fabric.width() {
                let tile = fabric.tile(x, y);
                let reach = model.reachable(s, x, y);
                let mut wanted: BTreeSet<Color> = BTreeSet::new();
                for b in tile.core.bindings() {
                    if reach.contains(&b.task) {
                        wanted.insert(b.color);
                    }
                }
                for w in &model.waits {
                    if w.shard == s && w.x == x && w.y == y {
                        if let Some((c, _)) = w.recv {
                            wanted.insert(c);
                        }
                    }
                }
                for color in wanted {
                    let delivered = tile
                        .router
                        .routes()
                        .any(|(_, c, fanout)| c == color && fanout.contains(&Port::Ramp));
                    if delivered {
                        consumers.insert((s, x, y, color));
                    }
                }
            }
        }
    }

    let mut flows: BTreeMap<Color, (Flow, usize)> = BTreeMap::new();
    for (s, x, y, color) in consumers {
        let (flow, n_sources) = flows.entry(color).or_insert_with(|| {
            let sources = model.sources(color);
            (model.flow(color, &sources), sources.len())
        });
        if flow.delivered.contains_key(&(s, x, y)) {
            continue;
        }
        let why = if *n_sources == 0 {
            "nothing in the ensemble produces it (no sending task, no external \
             edge injection point)"
                .to_string()
        } else {
            format!(
                "none of the {n_sources} producer injection point(s) has a route \
                 flow reaching this tile"
            )
        };
        diags.push(Diagnostic {
            tile: model.ens.global_tile(s, x, y),
            severity: Severity::Error,
            rule: Rule::ColorStarved,
            message: format!(
                "{} consumes color {color} and routes it to the ramp, but {why}; \
                 the consumer arms and waits forever",
                model.ens.label(s, x, y),
            ),
        });
    }
}

/// Every seam channel that traffic can reach must have a forwarding rule at
/// its ingress `(tile, port, color)` — otherwise the ingress queue fills,
/// credits stop returning across the seam, and the egress wafer wedges.
fn check_seam_credits(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut flows: BTreeMap<Color, Flow> = BTreeMap::new();
    let colors: BTreeSet<Color> = model.ens.seams.iter().map(|e| e.color).collect();
    for color in colors {
        let flow = flows.entry(color).or_insert_with(|| model.flow(color, &model.sources(color)));
        reached.extend(flow.seams_reached.iter().copied());
    }
    for &i in &reached {
        let seam = &model.ens.seams[i];
        let dst = model.ens.shards[seam.dst_shard].tile(seam.dx, seam.dy);
        if dst.router.route(seam.dport, seam.color).is_some() {
            continue;
        }
        diags.push(Diagnostic {
            tile: model.ens.global_tile(seam.src_shard, seam.sx, seam.sy),
            severity: Severity::Error,
            rule: Rule::CreditStarvation,
            message: format!(
                "seam channel color {} from {} ({:?}) to {} ({:?}) carries traffic, \
                 but the ingress router has no rule for ({:?}, color {}); the ingress \
                 queue fills, seam credits stop returning, and the sending wafer \
                 wedges",
                seam.color,
                model.ens.label(seam.src_shard, seam.sx, seam.sy),
                seam.sport,
                model.ens.label(seam.dst_shard, seam.dx, seam.dy),
                seam.dport,
                seam.dport,
                seam.color,
            ),
        });
    }
}
