//! Route-graph analysis.
//!
//! Routing is configured offline and never changes at runtime, so the
//! forwarding behavior of the whole wafer is a static per-color directed
//! graph whose nodes are `(tile, input port)` pairs. This module walks that
//! graph looking for the ways a route configuration can wedge the fabric:
//!
//! * fanout off the edge of the fabric ([`crate::Rule::RouteOffFabric`]);
//! * fanout into a neighbor queue nothing ever drains
//!   ([`crate::Rule::RouteDangling`]);
//! * delivery to a core that never consumes the color
//!   ([`crate::Rule::DeadDelivery`]);
//! * receive descriptors no route can feed
//!   ([`crate::Rule::UnreachableReceive`]);
//! * sends with no route out of the ramp
//!   ([`crate::Rule::MissingRampRoute`]);
//! * directed cycles — with credit-based backpressure and all-or-nothing
//!   fanout, a cycle that fills can never drain
//!   ([`crate::Rule::RouteCycle`]).

use crate::program::{consumed_colors, produced_colors};
use crate::{Diagnostic, Rule, Severity};
use std::collections::BTreeSet;
use wse_arch::fabric::Fabric;
use wse_arch::types::{Color, Port, NUM_COLORS};

/// Runs every route rule.
pub fn check(fabric: &Fabric, diags: &mut Vec<Diagnostic>) {
    let (w, h) = (fabric.width(), fabric.height());
    for y in 0..h {
        for x in 0..w {
            check_tile(fabric, x, y, diags);
        }
    }
    for color in 0..NUM_COLORS as Color {
        check_cycles(fabric, color, diags);
    }
}

fn neighbor(fabric: &Fabric, x: usize, y: usize, out: Port) -> Option<(usize, usize)> {
    let (dx, dy) = out.delta();
    let nx = x as i64 + dx as i64;
    let ny = y as i64 + dy as i64;
    if nx < 0 || ny < 0 || nx >= fabric.width() as i64 || ny >= fabric.height() as i64 {
        None
    } else {
        Some((nx as usize, ny as usize))
    }
}

fn check_tile(fabric: &Fabric, x: usize, y: usize, diags: &mut Vec<Diagnostic>) {
    let tile = fabric.tile(x, y);
    let consumed = consumed_colors(&tile.core);
    let produced = produced_colors(&tile.core);

    // The same outgoing segment `(out, color)` may be fed by several input
    // ports; its fate is a property of the segment, so report it once, not
    // once per direction.
    let mut reported: BTreeSet<(usize, Color)> = BTreeSet::new();
    for (in_port, color, fanout) in tile.router.routes() {
        for &out in fanout {
            if out == Port::Ramp {
                // Delivery: the core must have a receive descriptor for it.
                if !consumed.contains(&color) && reported.insert((out.index(), color)) {
                    diags.push(Diagnostic {
                        tile: (x, y),
                        severity: Severity::Error,
                        rule: Rule::DeadDelivery,
                        message: format!(
                            "route ({in_port:?}, color {color}) delivers to the ramp but no \
                             task on this tile receives color {color}; the ramp-in queue \
                             will fill and stall the router"
                        ),
                    });
                }
                continue;
            }
            // Forwarding: the neighbor must exist and must do something
            // with what arrives. A boundary fanout is legal only through a
            // declared edge channel (`Fabric::open_edge`) — the host drains
            // it, so nothing on-wafer needs to.
            let Some((nx, ny)) = neighbor(fabric, x, y, out) else {
                if !fabric.edge_port_declared(x, y, out, color)
                    && reported.insert((out.index(), color))
                {
                    diags.push(Diagnostic {
                        tile: (x, y),
                        severity: Severity::Error,
                        rule: Rule::RouteOffFabric,
                        message: format!(
                            "route ({in_port:?}, color {color}) forwards {out:?} off the \
                             {}x{} fabric edge with no declared edge port",
                            fabric.width(),
                            fabric.height()
                        ),
                    });
                }
                continue;
            };
            let arrives_at = out.opposite().expect("cardinal port");
            if fabric.tile(nx, ny).router.route(arrives_at, color).is_none()
                && reported.insert((out.index(), color))
            {
                diags.push(Diagnostic {
                    tile: (x, y),
                    severity: Severity::Error,
                    rule: Rule::RouteDangling,
                    message: format!(
                        "route ({in_port:?}, color {color}) forwards {out:?} to tile \
                         ({nx}, {ny}) but that router has no rule for ({arrives_at:?}, \
                         color {color}); flits will pile up and backpressure the sender"
                    ),
                });
            }
        }
    }

    // A receive nothing feeds: some route on this tile must deliver the
    // color to the ramp.
    for &color in &consumed {
        let fed =
            tile.router.routes().any(|(_, c, fanout)| c == color && fanout.contains(&Port::Ramp));
        if !fed {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::UnreachableReceive,
                message: format!(
                    "a task receives color {color} but no route on this tile delivers \
                     color {color} to the ramp; the receive can never complete"
                ),
            });
        }
    }

    // A send with nowhere to go: injected flits enter the router at the
    // ramp input port.
    for &color in &produced {
        if tile.router.route(Port::Ramp, color).is_none() {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::MissingRampRoute,
                message: format!(
                    "a task sends on color {color} but the router has no rule for \
                     (Ramp, color {color}); the injection queue will fill and the \
                     send thread never finishes"
                ),
            });
        }
    }
}

/// Depth-first search for a directed cycle in one color's forwarding graph.
/// Nodes are `(tile index, input port)`; an edge exists where a configured
/// route forwards out of a cardinal port into the neighbor's opposite port.
fn check_cycles(fabric: &Fabric, color: Color, diags: &mut Vec<Diagnostic>) {
    let (w, h) = (fabric.width(), fabric.height());
    let node = |x: usize, y: usize, p: Port| (y * w + x) * 5 + p.index();
    let n_nodes = w * h * 5;
    // 0 = unvisited, 1 = on the current path, 2 = done.
    let mut state = vec![0u8; n_nodes];

    let successors = |x: usize, y: usize, p: Port| -> Vec<(usize, usize, Port)> {
        let Some(fanout) = fabric.tile(x, y).router.route(p, color) else {
            return Vec::new();
        };
        fanout
            .iter()
            .filter(|&&o| o != Port::Ramp)
            .filter_map(|&o| {
                neighbor(fabric, x, y, o)
                    .map(|(nx, ny)| (nx, ny, o.opposite().expect("cardinal port")))
            })
            .collect()
    };

    for sy in 0..h {
        for sx in 0..w {
            for sp in Port::ALL {
                if state[node(sx, sy, sp)] != 0 {
                    continue;
                }
                // Iterative DFS with an explicit stack of (node, children,
                // next-child index).
                let mut stack = vec![((sx, sy, sp), successors(sx, sy, sp), 0usize)];
                state[node(sx, sy, sp)] = 1;
                while !stack.is_empty() {
                    let last = stack.len() - 1;
                    let (cx, cy, cp) = stack[last].0;
                    if stack[last].2 >= stack[last].1.len() {
                        state[node(cx, cy, cp)] = 2;
                        stack.pop();
                        continue;
                    }
                    let (nx, ny, np) = stack[last].1[stack[last].2];
                    stack[last].2 += 1;
                    match state[node(nx, ny, np)] {
                        0 => {
                            state[node(nx, ny, np)] = 1;
                            stack.push(((nx, ny, np), successors(nx, ny, np), 0));
                        }
                        1 => {
                            // Back edge: reconstruct the cycle from the stack.
                            let start = stack.iter().position(|e| e.0 == (nx, ny, np)).unwrap_or(0);
                            let path: Vec<String> = stack[start..]
                                .iter()
                                .map(|e| format!("({},{}):{:?}", e.0 .0, e.0 .1, e.0 .2))
                                .collect();
                            diags.push(Diagnostic {
                                tile: (nx, ny),
                                severity: Severity::Error,
                                rule: Rule::RouteCycle,
                                message: format!(
                                    "color {color} forwarding graph has a cycle [{}]; with \
                                     credit backpressure a filled cycle can never drain",
                                    path.join(" -> ")
                                ),
                            });
                            // One report per cycle entry point is enough.
                            state[node(nx, ny, np)] = 2;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
