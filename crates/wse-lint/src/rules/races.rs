//! Data-race / determinism checking over per-task SRAM access sets.
//!
//! A tile's main thread serializes task bodies, so two synchronous
//! statements can never race. Concurrency enters through `Launch`: a
//! background thread is live from its launch until its operands exhaust,
//! overlapping every statement the main thread executes in the meantime.
//! For each background site this pass computes the SRAM bytes it reads
//! and writes (from the resolved instruction sites, the same model
//! [`crate::rules::memory`] audits) and compares them against every site
//! that can run while the thread is live:
//!
//! * later statements of the launching task (any kind);
//! * statements of every task reachable *from the launch onward* through
//!   the activation graph — `TaskCtl` activations, other sites' completion
//!   triggers, FIFO `onpush` targets, and local data triggers fed by
//!   colors the dispatch itself produces.
//!
//! Ordered code is exempt: tasks whose every activation path begins at
//! this launch's own completion trigger run strictly after the thread
//! finishes. Distinct host entry points are assumed host-sequenced (the
//! run model activates one dispatch and drains it), and FIFO traffic is
//! exempt — push/pop through the hardware FIFO is the sanctioned
//! synchronization. So is the pipelined in-place loopback idiom: one site
//! reads a buffer and streams it into the fabric, the other receives the
//! same color and writes the same buffer back — the channel delivers
//! element `i` only after it was read, so with identical descriptors the
//! write of `i` always happens after the read of `i`. And so are pairs of
//! read-modify-write *accumulations* (`u += ...`): the datapath issues one
//! context per cycle, making each element update atomic, and the adds
//! commute — the paper's FIFO-drain `sumtask` accumulating next to the
//! loopback add relies on exactly this. Other overlapping writes, or a
//! write overlapping a concurrent read, are [`crate::Rule::DataRace`]
//! errors: element interleaving between threads is scheduler-dependent, so
//! the result is nondeterministic.

use crate::dataflow::Model;
use crate::program::{instruction_sites, InstrSite};
use crate::{Diagnostic, Rule, Severity};
use std::collections::BTreeSet;
use wse_arch::core::Core;
use wse_arch::dsr::Descriptor;
use wse_arch::instr::{Stmt, TaskAction};
use wse_arch::types::{Port, TaskId};

/// Runs the race pass on every tile of every shard.
pub fn check(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    for (s, fabric) in model.ens.shards.iter().enumerate() {
        for y in 0..fabric.height() {
            for x in 0..fabric.width() {
                check_tile(model, s, x, y, diags);
            }
        }
    }
}

/// One strided SRAM access: `len` elements of `elem` bytes, `period`
/// bytes apart, starting at `start`. `end` is the exclusive byte bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Access {
    start: u32,
    end: u32,
    period: u32,
    elem: u32,
    /// The access is the destination of a read-modify-write accumulation
    /// (`AddAssign`, `Axpy`, `FmaAssign` — all `u += ...`). The datapath
    /// issues one context per cycle, so each element update is atomic, and
    /// addition commutes: two concurrent accumulations into the same
    /// elements produce the sum in some order, not a torn value.
    accum: bool,
}

impl Access {
    /// Whether any byte of `self` can coincide with a byte of `other`.
    /// Dense accesses overlap iff their extents do; equal-stride strided
    /// accesses additionally need congruent residues — two interleaved
    /// strips (`addr` differing by less than the stride) share an extent
    /// but never a byte. Unequal strides fall back to the extent test.
    fn overlaps(self, other: Access) -> bool {
        if self.start >= other.end || other.start >= self.end {
            return false;
        }
        if self.period != other.period {
            return true;
        }
        let p = self.period;
        let ra = self.start % p;
        let rb = other.start % p;
        (rb + p - ra) % p < self.elem || (ra + p - rb) % p < other.elem
    }
}

/// SRAM bytes a resolved operand touches. FIFO and fabric descriptors
/// return `None`: fabric traffic never touches SRAM, and FIFO push/pop is
/// hardware-serialized (the sanctioned cross-thread handoff).
fn sram_extent(desc: &Descriptor) -> Option<Access> {
    match *desc {
        Descriptor::Mem { addr, len, stride, dtype, .. } if len > 0 => Some(Access {
            start: addr,
            end: addr + ((len - 1) * stride + 1) * dtype.bytes(),
            period: stride.max(1) * dtype.bytes(),
            elem: dtype.bytes(),
            accum: false,
        }),
        _ => None,
    }
}

/// The read and write extents of one instruction site. A read-modify-write
/// destination (`AddAssign`, `FmaAssign`, ...) contributes to both sets.
fn access_sets(site: &InstrSite) -> (Vec<Access>, Vec<Access>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for src in site.sources() {
        if let Some(e) = sram_extent(&src.desc) {
            reads.push(e);
        }
    }
    if let Some(dst) = &site.dst {
        if let Some(mut e) = sram_extent(&dst.desc) {
            e.accum = site.instr.op.reads_dst();
            writes.push(e);
            if e.accum {
                reads.push(e);
            }
        }
    }
    (reads, writes)
}

fn check_tile(model: &Model<'_>, shard: usize, x: usize, y: usize, diags: &mut Vec<Diagnostic>) {
    let fabric = model.ens.shards[shard];
    let tile = fabric.tile(x, y);
    let core = &tile.core;
    let reachable = model.reachable(shard, x, y);
    let sites: Vec<InstrSite> =
        instruction_sites(core).into_iter().filter(|s| reachable.contains(&s.task)).collect();

    for (li, launch) in sites.iter().enumerate() {
        if !launch.background {
            continue;
        }
        let after = ordered_after(core, launch, reachable);
        let concurrent = concurrent_tasks(tile, core, launch, reachable);
        let (l_reads, l_writes) = access_sets(launch);
        for (si, other) in sites.iter().enumerate() {
            if si == li {
                continue;
            }
            let live_overlap = if other.task == launch.task {
                // Earlier same-task *background* pairs are reported once,
                // from the earlier launch's iteration.
                other.stmt > launch.stmt
            } else {
                concurrent.contains(&other.task) && !after.contains(&other.task)
            };
            if !live_overlap {
                continue;
            }
            let (o_reads, o_writes) = access_sets(other);
            // Channel-ordered in-place loopback pairs are deterministic.
            let exempt_lw = flow_through(model, shard, x, y, other, launch);
            let exempt_lr = flow_through(model, shard, x, y, launch, other);
            report_overlaps(
                model, shard, x, y, launch, other, &l_writes, &o_writes, "write", "write", None,
                diags,
            );
            report_overlaps(
                model, shard, x, y, launch, other, &l_writes, &o_reads, "write", "read", exempt_lw,
                diags,
            );
            report_overlaps(
                model, shard, x, y, launch, other, &l_reads, &o_writes, "read", "write", exempt_lr,
                diags,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_overlaps(
    model: &Model<'_>,
    shard: usize,
    x: usize,
    y: usize,
    launch: &InstrSite,
    other: &InstrSite,
    a: &[Access],
    b: &[Access],
    a_kind: &str,
    b_kind: &str,
    exempt: Option<Access>,
    diags: &mut Vec<Diagnostic>,
) {
    for ea in a {
        for eb in b {
            if !ea.overlaps(*eb) {
                continue;
            }
            // Two atomic accumulations commute; the sum lands either way.
            if ea.accum && eb.accum {
                continue;
            }
            if exempt == Some(*ea) && exempt == Some(*eb) {
                continue;
            }
            let lo = ea.start.max(eb.start);
            let hi = ea.end.min(eb.end);
            diags.push(Diagnostic {
                tile: model.ens.global_tile(shard, x, y),
                severity: Severity::Error,
                rule: Rule::DataRace,
                message: format!(
                    "task {} (\"{}\") stmt {} launches a thread whose {a_kind} of \
                     [{}, {}) races the {b_kind} of [{}, {}) by task {} (\"{}\") stmt \
                     {}{} on bytes [{lo}, {hi}); the two are not ordered by the \
                     activation graph, so element interleaving decides the result",
                    launch.task,
                    launch.task_name,
                    launch.stmt,
                    ea.start,
                    ea.end,
                    eb.start,
                    eb.end,
                    other.task,
                    other.task_name,
                    other.stmt,
                    if other.background { " (thread)" } else { "" },
                ),
            });
            // One diagnostic per site pair and direction is enough.
            return;
        }
    }
}

/// The pipelined in-place loopback idiom: `reader` reads a memory
/// descriptor and streams it out on a color, `writer` receives that color
/// and writes the *identical* descriptor back, and a route loops the color
/// from this ramp back to this ramp. The channel delivers element `i` only
/// after the reader consumed it, so the write of `i` is ordered after the
/// read of `i` and the pair is deterministic. Returns the exempt extent.
fn flow_through(
    model: &Model<'_>,
    shard: usize,
    x: usize,
    y: usize,
    reader: &InstrSite,
    writer: &InstrSite,
) -> Option<Access> {
    let reader_send = reader.dst.as_ref().and_then(|op| match op.desc {
        Descriptor::FabricOut { color, len, .. } if len > 0 => Some(color),
        _ => None,
    })?;
    writer.sources().find(|op| {
        matches!(op.desc, Descriptor::FabricIn { color, len, .. } if color == reader_send && len > 0)
    })?;
    let wdst = &writer.dst.as_ref()?.desc;
    if !matches!(wdst, Descriptor::Mem { .. }) {
        return None;
    }
    let identical = reader.sources().any(|op| op.desc == *wdst);
    if !identical {
        return None;
    }
    let looped =
        model.flow_from_ramp(shard, x, y, reader_send).delivered.contains_key(&(shard, x, y));
    if looped {
        sram_extent(wdst)
    } else {
        None
    }
}

/// Tasks ordered strictly *after* the launched thread completes: the
/// completion trigger's target, grown by tasks whose every activation
/// source already lies in the set.
fn ordered_after(
    core: &Core,
    launch: &InstrSite,
    reachable: &BTreeSet<TaskId>,
) -> BTreeSet<TaskId> {
    let mut after = BTreeSet::new();
    let Some((seed, TaskAction::Activate | TaskAction::Unblock)) = launch.on_complete else {
        return after;
    };
    after.insert(seed);
    let sites = instruction_sites(core);
    loop {
        let mut grew = false;
        for (id, task) in core.tasks() {
            if after.contains(&id) || !reachable.contains(&id) {
                continue;
            }
            if task.start_activated || core.task_activated(id) {
                continue;
            }
            if core.entry_tasks().contains(&id) {
                continue;
            }
            if core.bindings().iter().any(|b| b.task == id) {
                continue;
            }
            // Every activation source must already be in the set.
            let mut sources = 0usize;
            let mut inside = 0usize;
            for (oid, otask) in core.tasks() {
                if !reachable.contains(&oid) {
                    continue;
                }
                for stmt in &otask.body {
                    if matches!(stmt, Stmt::TaskCtl { task: t, action: TaskAction::Activate } if *t == id)
                    {
                        sources += 1;
                        if after.contains(&oid) {
                            inside += 1;
                        }
                    }
                }
            }
            for site in &sites {
                if !reachable.contains(&site.task) {
                    continue;
                }
                if matches!(site.on_complete, Some((t, TaskAction::Activate)) if t == id) {
                    sources += 1;
                    let from_this_launch =
                        site.task == launch.task && site.stmt == launch.stmt && site.background;
                    if after.contains(&site.task) || from_this_launch {
                        inside += 1;
                    }
                }
                if let Some(dst) = &site.dst {
                    if let Descriptor::Fifo { fifo } = dst.desc {
                        if core.fifo(fifo).onpush == Some(id) {
                            sources += 1;
                            if after.contains(&site.task) {
                                inside += 1;
                            }
                        }
                    }
                }
            }
            if sources > 0 && sources == inside && after.insert(id) {
                grew = true;
            }
        }
        if !grew {
            return after;
        }
    }
}

/// Tasks that can run while the launched thread is live: the closure of
/// the launching task under local activation edges — `TaskCtl`
/// activations, completion triggers of *other* sites, FIFO `onpush`
/// targets, and data triggers fed by colors the closure itself sends to
/// its own ramp. Distinct host entry points are assumed host-sequenced
/// and excluded unless the closure reaches them.
fn concurrent_tasks(
    tile: &wse_arch::fabric::Tile,
    core: &Core,
    launch: &InstrSite,
    reachable: &BTreeSet<TaskId>,
) -> BTreeSet<TaskId> {
    let sites = instruction_sites(core);
    let mut conc: BTreeSet<TaskId> = BTreeSet::new();
    conc.insert(launch.task);
    loop {
        let mut grew = false;
        let add = |set: &mut BTreeSet<TaskId>, id: TaskId, grew: &mut bool| {
            if reachable.contains(&id) && set.insert(id) {
                *grew = true;
            }
        };
        for (id, task) in core.tasks() {
            if !conc.contains(&id) {
                continue;
            }
            for stmt in &task.body {
                if let Stmt::TaskCtl { task: t, action: TaskAction::Activate } = stmt {
                    add(&mut conc, *t, &mut grew);
                }
            }
        }
        // Colors the closure sends that loop back to this tile's ramp.
        let mut self_colors: BTreeSet<wse_arch::types::Color> = BTreeSet::new();
        for site in &sites {
            if !conc.contains(&site.task) {
                continue;
            }
            if let Some(dst) = &site.dst {
                if let Descriptor::FabricOut { color, len, .. } = dst.desc {
                    if len > 0 {
                        self_colors.insert(color);
                    }
                }
            }
        }
        for b in core.bindings() {
            if !self_colors.contains(&b.color) {
                continue;
            }
            let looped = tile.router.routes().any(|(p, c, fanout)| {
                p == Port::Ramp && c == b.color && fanout.contains(&Port::Ramp)
            });
            if looped {
                add(&mut conc, b.task, &mut grew);
            }
        }
        for site in &sites {
            if !conc.contains(&site.task) {
                continue;
            }
            let is_this_launch =
                site.task == launch.task && site.stmt == launch.stmt && site.background;
            if !is_this_launch {
                if let Some((t, TaskAction::Activate)) = site.on_complete {
                    add(&mut conc, t, &mut grew);
                }
            }
            if let Some(dst) = &site.dst {
                if let Descriptor::Fifo { fifo } = dst.desc {
                    if let Some(t) = core.fifo(fifo).onpush {
                        add(&mut conc, t, &mut grew);
                    }
                }
            }
        }
        if !grew {
            return conc;
        }
    }
}
