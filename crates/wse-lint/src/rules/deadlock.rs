//! Whole-fabric deadlock detection over the channel-dependency graph.
//!
//! The fabric blocks in exactly three places: a synchronous receive with
//! no flits, a synchronous send with no queue space, and a router queue
//! held by credit backpressure. This pass builds the graph of *who waits
//! for whom* across every tile (and across seam channels in an ensemble)
//! and reports its cycles — each one a set of waits that can never all
//! retire:
//!
//! * **gate edges** — a wait site cannot start until the previous
//!   synchronous wait in its task body completes (`Launch` sites are
//!   issued in program order too, so they gate the same way);
//! * **producer edges** — a receive of color `c` waits for some send of
//!   `c` whose route flow reaches this tile's ramp;
//! * **backpressure edges** — a synchronous send longer than the queue
//!   capacity along its delivery path cannot complete until the consumer
//!   drains, so it waits on the consumer's receive site (seam-crossing
//!   paths are exempt: the host link buffers them).
//!
//! A cycle is reported once with the full witness: every wait site on it,
//! with tile coordinates, colors, lengths, and the queue capacities that
//! bound how much slack the cycle has ([`crate::Rule::DeadlockCycle`]).
//!
//! Also here: route cycles that cross seam channels
//! ([`crate::Rule::RouteCycle`]) — the per-shard route pass cannot see
//! them, so the ensemble graph is searched with seam edges included and
//! only seam-crossing cycles are reported (purely local ones are already
//! caught per shard).

use crate::dataflow::{path_capacity, Model};
use crate::{Diagnostic, Rule, Severity};
use std::collections::BTreeMap;
use wse_arch::types::{Color, Port, NUM_COLORS, QUEUE_CAPACITY, RAMP_OUT_CAPACITY};

/// Runs the deadlock pass over the whole ensemble.
pub fn check(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    check_wait_cycles(model, diags);
    if !model.ens.seams.is_empty() {
        for color in 0..NUM_COLORS as Color {
            check_seam_route_cycles(model, color, diags);
        }
    }
}

/// Builds the waits-for graph over the model's wait sites and reports
/// every cycle found.
fn check_wait_cycles(model: &Model<'_>, diags: &mut Vec<Diagnostic>) {
    let sites = &model.waits;
    let n = sites.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Gate edges: site -> the latest *synchronous* wait site before it in
    // the same task body (transitively covers the whole prefix chain).
    for i in 0..n {
        let s = &sites[i];
        let gate = (0..n)
            .filter(|&j| {
                let g = &sites[j];
                g.shard == s.shard
                    && g.x == s.x
                    && g.y == s.y
                    && g.task == s.task
                    && !g.background
                    && g.stmt < s.stmt
            })
            .max_by_key(|&j| sites[j].stmt);
        if let Some(j) = gate {
            succ[i].push(j);
        }
    }

    // Producer and backpressure edges, per receive site. Flow queries are
    // memoized per (origin tile, color) — senders often share an origin.
    let mut flows: BTreeMap<(usize, usize, usize, Color), crate::dataflow::Flow> = BTreeMap::new();
    for j in 0..n {
        let sender = &sites[j];
        let Some((color, send_len)) = sender.send else { continue };
        let flow = flows
            .entry((sender.shard, sender.x, sender.y, color))
            .or_insert_with(|| model.flow_from_ramp(sender.shard, sender.x, sender.y, color))
            .clone();
        for i in 0..n {
            if i == j {
                // A site that both receives and sends one color moves
                // elements through itself; it is not its own producer.
                continue;
            }
            let recv = &sites[i];
            let Some((rc, _)) = recv.recv else { continue };
            if rc != color {
                continue;
            }
            let Some(&(dist, seamed)) = flow.delivered.get(&(recv.shard, recv.x, recv.y)) else {
                continue;
            };
            // The receive waits for this producer's send to run.
            succ[i].push(j);
            // The send waits for the receive to drain — only when it is
            // synchronous (something downstream in its task waits on it)
            // and too long for the path's queues, with no host-buffered
            // seam on the way.
            if !sender.background && !seamed && send_len > path_capacity(dist) {
                succ[j].push(i);
            }
        }
    }

    // Iterative DFS; one report per back edge, then the entry node is
    // closed so each cycle is reported once.
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&(node, cursor)) = stack.last() {
            if cursor >= succ[node].len() {
                state[node] = 2;
                stack.pop();
                continue;
            }
            stack.last_mut().unwrap().1 += 1;
            let next = succ[node][cursor];
            match state[next] {
                0 => {
                    state[next] = 1;
                    stack.push((next, 0));
                }
                1 => {
                    let from = stack.iter().position(|&(k, _)| k == next).unwrap_or(0);
                    let cycle: Vec<usize> = stack[from..].iter().map(|&(k, _)| k).collect();
                    report_cycle(model, &cycle, diags);
                    state[next] = 2;
                }
                _ => {}
            }
        }
    }
}

fn report_cycle(model: &Model<'_>, cycle: &[usize], diags: &mut Vec<Diagnostic>) {
    let ens = model.ens;
    let witness: Vec<String> = cycle.iter().map(|&i| model.waits[i].describe(ens)).collect();
    let head = &model.waits[cycle[0]];
    diags.push(Diagnostic {
        tile: ens.global_tile(head.shard, head.x, head.y),
        severity: Severity::Error,
        rule: Rule::DeadlockCycle,
        message: format!(
            "cyclic wait across {} site(s): {} -> back to start; every queue on the \
             cycle is bounded (ramp-out {RAMP_OUT_CAPACITY}, router/ramp-in \
             {QUEUE_CAPACITY} flits), so once the slack fills no wait can retire",
            cycle.len(),
            witness.join(" -> "),
        ),
    });
}

/// Directed route-cycle search over the ensemble graph for one color,
/// with seam edges included. Reports only cycles that cross at least one
/// seam; purely shard-local cycles are already reported by
/// [`crate::rules::routes`].
fn check_seam_route_cycles(model: &Model<'_>, color: Color, diags: &mut Vec<Diagnostic>) {
    let ens = model.ens;
    // Dense node ids: (shard, tile, port).
    let mut base = Vec::with_capacity(ens.shards.len());
    let mut total = 0usize;
    for f in &ens.shards {
        base.push(total);
        total += f.width() * f.height() * 5;
    }
    let node = |s: usize, x: usize, y: usize, p: Port| {
        base[s] + (y * ens.shards[s].width() + x) * 5 + p.index()
    };

    // successors: (next node key, crossed a seam on this edge)
    let successors =
        |s: usize, x: usize, y: usize, p: Port| -> Vec<((usize, usize, usize, Port), bool)> {
            let fabric = ens.shards[s];
            let Some(fanout) = fabric.tile(x, y).router.route(p, color) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for &o in fanout {
                if o == Port::Ramp {
                    continue;
                }
                let (dx, dy) = o.delta();
                let nx = x as i64 + dx as i64;
                let ny = y as i64 + dy as i64;
                if nx >= 0 && ny >= 0 && nx < fabric.width() as i64 && ny < fabric.height() as i64 {
                    let np = o.opposite().expect("cardinal port");
                    out.push(((s, nx as usize, ny as usize, np), false));
                } else {
                    for seam in &ens.seams {
                        if seam.src_shard == s
                            && seam.sx == x
                            && seam.sy == y
                            && seam.sport == o
                            && seam.color == color
                        {
                            out.push(((seam.dst_shard, seam.dx, seam.dy, seam.dport), true));
                        }
                    }
                }
            }
            out
        };

    let mut state = vec![0u8; total];
    for (s, f) in ens.shards.iter().enumerate() {
        for sy in 0..f.height() {
            for sx in 0..f.width() {
                for sp in Port::ALL {
                    if state[node(s, sx, sy, sp)] != 0 {
                        continue;
                    }
                    // (key, successors, cursor, arrived-via-seam)
                    let mut stack =
                        vec![((s, sx, sy, sp), successors(s, sx, sy, sp), 0usize, false)];
                    state[node(s, sx, sy, sp)] = 1;
                    while !stack.is_empty() {
                        let last = stack.len() - 1;
                        let (cs, cx, cy, cp) = stack[last].0;
                        if stack[last].2 >= stack[last].1.len() {
                            state[node(cs, cx, cy, cp)] = 2;
                            stack.pop();
                            continue;
                        }
                        let ((ns, nx, ny, np), via_seam) = stack[last].1[stack[last].2];
                        stack[last].2 += 1;
                        match state[node(ns, nx, ny, np)] {
                            0 => {
                                state[node(ns, nx, ny, np)] = 1;
                                stack.push((
                                    (ns, nx, ny, np),
                                    successors(ns, nx, ny, np),
                                    0,
                                    via_seam,
                                ));
                            }
                            1 => {
                                let from =
                                    stack.iter().position(|e| e.0 == (ns, nx, ny, np)).unwrap_or(0);
                                let crossed = via_seam || stack[from + 1..].iter().any(|e| e.3);
                                if crossed {
                                    let path: Vec<String> = stack[from..]
                                        .iter()
                                        .map(|e| {
                                            let (es, ex, ey, ep) = e.0;
                                            format!("{}:{ep:?}", ens.label(es, ex, ey))
                                        })
                                        .collect();
                                    diags.push(Diagnostic {
                                        tile: ens.global_tile(ns, nx, ny),
                                        severity: Severity::Error,
                                        rule: Rule::RouteCycle,
                                        message: format!(
                                            "color {color} forwarding graph has a cycle \
                                             through seam channels [{}]; with credit \
                                             backpressure a filled cycle can never drain",
                                            path.join(" -> ")
                                        ),
                                    });
                                }
                                state[node(ns, nx, ny, np)] = 2;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}
