//! Color-discipline checks.
//!
//! The tessellation function `spmv_color` exists to guarantee that the five
//! streams a tile receives concurrently (its own loopback plus four
//! neighbor broadcasts) arrive on pairwise-distinct colors. This module
//! checks that invariant *generically*: within one task, no two receive
//! streams that can be in flight at the same time may share a color — the
//! router merges same-color flits into one ramp-in queue, so attribution
//! between the two streams would depend on arrival interleaving.
//!
//! Concurrency is approximated statically: a `Launch`ed receive is live for
//! the rest of the task, so two `Launch` sites on one color conflict, as
//! does a `Launch` plus a synchronous `Exec` receive. Two `Exec` receives
//! are serialized by the main thread and are fine (phase-separated reuse,
//! as in BiCGStab, never trips this rule because scopes are per-task).
//!
//! Also here: [`crate::Rule::ColorOutOfRange`] for identifiers outside the
//! hardware's [`NUM_COLORS`] virtual channels.

use crate::program::{all_descriptors, instruction_sites};
use crate::{Diagnostic, Rule, Severity};
use std::collections::BTreeMap;
use wse_arch::dsr::Descriptor;
use wse_arch::fabric::Fabric;
use wse_arch::types::{Color, NUM_COLORS};

/// Runs the color rules on every tile.
pub fn check(fabric: &Fabric, diags: &mut Vec<Diagnostic>) {
    for y in 0..fabric.height() {
        for x in 0..fabric.width() {
            check_tile(fabric, x, y, diags);
        }
    }
}

fn check_tile(fabric: &Fabric, x: usize, y: usize, diags: &mut Vec<Diagnostic>) {
    let core = &fabric.tile(x, y).core;

    // Out-of-range identifiers anywhere a color can appear.
    for desc in all_descriptors(core) {
        let (color, dir) = match desc {
            Descriptor::FabricIn { color, .. } => (color, "receives"),
            Descriptor::FabricOut { color, .. } => (color, "sends"),
            _ => continue,
        };
        if color as usize >= NUM_COLORS {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::ColorOutOfRange,
                message: format!(
                    "a descriptor {dir} on color {color}, but the hardware has only \
                     {NUM_COLORS} colors"
                ),
            });
        }
    }
    for b in core.bindings() {
        if b.color as usize >= NUM_COLORS {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::ColorOutOfRange,
                message: format!(
                    "task {} (\"{}\") is bound to color {}, but the hardware has only \
                     {NUM_COLORS} colors",
                    b.task,
                    core.task(b.task).name,
                    b.color
                ),
            });
        }
    }

    // Per-task concurrent-receive conflicts. For each task, every receive
    // site per color: (statement index, background?).
    let sites = instruction_sites(core);
    let mut per_task: BTreeMap<usize, BTreeMap<Color, Vec<(usize, bool)>>> = BTreeMap::new();
    for site in &sites {
        for op in site.operands() {
            if let Descriptor::FabricIn { color, .. } = op.desc {
                per_task
                    .entry(site.task)
                    .or_default()
                    .entry(color)
                    .or_default()
                    .push((site.stmt, site.background));
            }
        }
    }
    for (task, colors) in per_task {
        let name = core.task(task).name;
        for (color, uses) in colors {
            let launches = uses.iter().filter(|(_, bg)| *bg).count();
            // Conflict when two receives can be live at once: two launched
            // threads, or a launched thread alongside a synchronous one.
            // Multiple synchronous receives are serialized and fine.
            if launches >= 2 || (launches >= 1 && uses.len() > launches) {
                let stmts: Vec<String> = uses
                    .iter()
                    .map(|(s, bg)| format!("stmt {s} ({})", if *bg { "thread" } else { "sync" }))
                    .collect();
                diags.push(Diagnostic {
                    tile: (x, y),
                    severity: Severity::Error,
                    rule: Rule::ColorConflict,
                    message: format!(
                        "task {task} (\"{name}\") receives color {color} from {} \
                         concurrent streams [{}]; same-color flits share one queue, so \
                         attribution between the streams depends on arrival order",
                        uses.len(),
                        stmts.join(", ")
                    ),
                });
            }
        }
    }
}
