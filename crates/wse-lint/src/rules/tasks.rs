//! Task-activation reachability.
//!
//! Tasks only run when something activates them: the host (declared via
//! [`Core::mark_entry`]), a data trigger (color binding), another task's
//! `TaskCtl`, a thread-completion trigger, or a FIFO push with an `onpush`
//! target. This module computes the fixpoint of "can ever activate" from
//! those sources and reports:
//!
//! * tasks outside the fixpoint ([`crate::Rule::UnreachableTask`]) — dead
//!   code, or a missing `mark_entry`/trigger edge;
//! * tasks that start blocked with no reachable unblock
//!   ([`crate::Rule::BlockedForever`]) — activation without an unblock
//!   never runs, the silent variant of a dropped barrier edge;
//! * FIFOs that are written but have neither an `onpush` task nor any
//!   reachable reader ([`crate::Rule::FifoNeverDrained`]).

use crate::dataflow::reachable_tasks;
use crate::program::instruction_sites;
use crate::{Diagnostic, Rule, Severity};
use std::collections::BTreeSet;
use wse_arch::core::Core;
use wse_arch::dsr::Descriptor;
use wse_arch::fabric::Fabric;
use wse_arch::instr::TaskAction;

/// Runs the task rules on every tile.
pub fn check(fabric: &Fabric, diags: &mut Vec<Diagnostic>) {
    for y in 0..fabric.height() {
        for x in 0..fabric.width() {
            check_tile(fabric, x, y, diags);
        }
    }
}

fn check_tile(fabric: &Fabric, x: usize, y: usize, diags: &mut Vec<Diagnostic>) {
    let tile = fabric.tile(x, y);
    let core = &tile.core;
    let sites = instruction_sites(core);

    // The "can ever activate" fixpoint, shared with the global passes.
    let reachable = reachable_tasks(tile);

    // Unblock edges available from reachable code.
    let mut unblockable: BTreeSet<usize> = BTreeSet::new();
    for (id, task) in core.tasks() {
        if !reachable.contains(&id) {
            continue;
        }
        for stmt in &task.body {
            if let wse_arch::instr::Stmt::TaskCtl { task: t, action: TaskAction::Unblock } = stmt {
                unblockable.insert(*t);
            }
        }
    }
    for site in &sites {
        if reachable.contains(&site.task) {
            if let Some((t, TaskAction::Unblock)) = site.on_complete {
                unblockable.insert(t);
            }
        }
    }

    for (id, task) in core.tasks() {
        if !reachable.contains(&id) {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::UnreachableTask,
                message: format!(
                    "task {id} (\"{}\") can never activate: it is not an entry point, \
                     has no deliverable data trigger, and no reachable task or thread \
                     completion activates it",
                    task.name
                ),
            });
        } else if core.task_blocked(id) && !unblockable.contains(&id) {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::BlockedForever,
                message: format!(
                    "task {id} (\"{}\") starts blocked and nothing reachable ever \
                     unblocks it; activations will queue forever",
                    task.name
                ),
            });
        }
    }

    check_fifos(core, x, y, &sites, &reachable, diags);
}

fn check_fifos(
    core: &Core,
    x: usize,
    y: usize,
    sites: &[crate::program::InstrSite],
    reachable: &BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for (fid, fifo) in core.fifos() {
        let written = sites.iter().any(|s| {
            reachable.contains(&s.task)
                && s.dst
                    .as_ref()
                    .is_some_and(|d| matches!(d.desc, Descriptor::Fifo { fifo } if fifo == fid))
        });
        if !written {
            continue;
        }
        let read = sites.iter().any(|s| {
            reachable.contains(&s.task)
                && s.sources().any(|op| matches!(op.desc, Descriptor::Fifo { fifo } if fifo == fid))
        });
        if fifo.onpush.is_none() && !read {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::FifoNeverDrained,
                message: format!(
                    "fifo {fid} is written by a reachable task but has no onpush \
                     target and no reachable reader; pushes fill it and stall the \
                     writer"
                ),
            });
        }
    }
}
