//! The rule families. Each submodule exposes
//! `check(fabric, &mut Vec<Diagnostic>)`.

pub mod colors;
pub mod memory;
pub mod routes;
pub mod tasks;
