//! The rule families. The local families expose
//! `check(fabric, &mut Vec<Diagnostic>)` and reason one tile (or one
//! shard) at a time; the global families expose
//! `check(&dataflow::Model, &mut Vec<Diagnostic>)` and reason over the
//! whole ensemble, seam channels included.

pub mod colors;
pub mod deadlock;
pub mod memory;
pub mod progress;
pub mod races;
pub mod routes;
pub mod tasks;
