//! Memory-budget and aliasing audit.
//!
//! Tile SRAM is 48 KB with no protection: a descriptor whose stride walks
//! past its buffer silently reads a neighbor allocation, and an instruction
//! whose destination partially overlaps a source produces order-dependent
//! garbage as elements stream through the datapath. This module audits,
//! per tile:
//!
//! * every memory descriptor and FIFO extent against [`TILE_SRAM_BYTES`]
//!   ([`crate::Rule::SramOverBudget`]);
//! * every extent against the allocator's map — data must live inside a
//!   recorded allocation ([`crate::Rule::UnallocatedExtent`]);
//! * every instruction's destination extent against its source extents —
//!   partial overlap is an error; *identical* extents (the in-place
//!   `y = x + βy`-style updates) are the deliberate idiom and are allowed
//!   ([`crate::Rule::DsrOverlap`]).

use crate::program::{all_descriptors, instruction_sites, InstrSite, ResolvedOperand};
use crate::{Diagnostic, Rule, Severity};
use wse_arch::core::Core;
use wse_arch::dsr::Descriptor;
use wse_arch::fabric::Fabric;
use wse_arch::memory::{Memory, TILE_SRAM_BYTES};

/// Runs the memory rules on every tile.
pub fn check(fabric: &Fabric, diags: &mut Vec<Diagnostic>) {
    for y in 0..fabric.height() {
        for x in 0..fabric.width() {
            check_tile(fabric, x, y, diags);
        }
    }
}

/// A byte extent `[start, end)` in tile SRAM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Extent {
    start: u32,
    end: u32,
}

impl Extent {
    fn overlaps(self, other: Extent) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// The bytes a memory descriptor touches (`None` for empty or non-memory
/// descriptors).
fn mem_extent(desc: &Descriptor) -> Option<Extent> {
    match *desc {
        Descriptor::Mem { addr, len, stride, dtype, .. } if len > 0 => {
            Some(Extent { start: addr, end: addr + ((len - 1) * stride + 1) * dtype.bytes() })
        }
        _ => None,
    }
}

/// The backing region an operand touches in SRAM: a memory descriptor's
/// extent, or the circular buffer behind a FIFO descriptor.
fn operand_extent(core: &Core, op: &ResolvedOperand) -> Option<Extent> {
    match op.desc {
        Descriptor::Fifo { fifo } => {
            let f = core.fifo(fifo);
            Some(Extent { start: f.base, end: f.base + f.capacity * f.dtype.bytes() })
        }
        _ => mem_extent(&op.desc),
    }
}

fn inside_allocation(mem: &Memory, e: Extent) -> bool {
    mem.allocations().iter().any(|a| a.contains(e.start, e.end - e.start))
}

fn check_tile(fabric: &Fabric, x: usize, y: usize, diags: &mut Vec<Diagnostic>) {
    let tile = fabric.tile(x, y);
    let core = &tile.core;

    // Budget + allocation audit for every descriptor the program can hold.
    let mut seen: Vec<(Extent, &'static str)> = Vec::new();
    for desc in all_descriptors(core) {
        if let Some(e) = mem_extent(&desc) {
            seen.push((e, "descriptor"));
        }
    }
    for (id, fifo) in core.fifos() {
        let e = Extent { start: fifo.base, end: fifo.base + fifo.capacity * fifo.dtype.bytes() };
        seen.push((e, "fifo"));
        let _ = id;
    }
    seen.sort_by_key(|(e, _)| (e.start, e.end));
    seen.dedup();
    for (e, what) in seen {
        if e.end > TILE_SRAM_BYTES {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::SramOverBudget,
                message: format!(
                    "{what} extent [{}, {}) reaches past the {TILE_SRAM_BYTES}-byte tile SRAM",
                    e.start, e.end
                ),
            });
        } else if !inside_allocation(&tile.mem, e) {
            diags.push(Diagnostic {
                tile: (x, y),
                severity: Severity::Error,
                rule: Rule::UnallocatedExtent,
                message: format!(
                    "{what} extent [{}, {}) is not contained in any allocation; it \
                     aliases whatever the allocator hands out next",
                    e.start, e.end
                ),
            });
        }
    }

    // Destination/source aliasing per instruction site.
    for site in instruction_sites(core) {
        check_site_overlap(core, x, y, &site, diags);
    }
}

fn check_site_overlap(
    core: &Core,
    x: usize,
    y: usize,
    site: &InstrSite,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(dst) = site.dst.as_ref() else { return };
    let Some(dst_e) = operand_extent(core, dst) else { return };
    for src in site.sources() {
        let Some(src_e) = operand_extent(core, src) else { continue };
        if !dst_e.overlaps(src_e) {
            continue;
        }
        // The in-place idiom: destination and source are the *same* view
        // (same address, length, stride, type). Element i is read before
        // element i is written, so streaming semantics are well defined.
        if matches!((dst.desc, src.desc), (Descriptor::Mem { .. }, Descriptor::Mem { .. }))
            && dst.desc == src.desc
        {
            continue;
        }
        diags.push(Diagnostic {
            tile: (x, y),
            severity: Severity::Error,
            rule: Rule::DsrOverlap,
            message: format!(
                "task {} (\"{}\") stmt {}: {:?} destination extent [{}, {}) partially \
                 overlaps a source extent [{}, {}); streamed writes will clobber \
                 unread source elements",
                site.task,
                site.task_name,
                site.stmt,
                site.instr.op,
                dst_e.start,
                dst_e.end,
                src_e.start,
                src_e.end
            ),
        });
    }
}
