//! The `wse-verify` contract, both directions: each broken fixture in
//! [`wse_lint::fixtures`] must (1) lint dirty with the matching rule and a
//! concrete witness, and (2) *misbehave dynamically* exactly the way the
//! diagnostic predicts — deadlocked and starved programs stall out the
//! cycle watchdog, racy programs trip the runtime sanitizer.

use wse_lint::{fixtures, lint, Rule};

fn diags_of(name: &str) -> Vec<wse_lint::Diagnostic> {
    lint(&fixtures::build(name).expect("known fixture"))
}

fn assert_only(name: &str, rule: Rule) {
    let diags = diags_of(name);
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "{name}: expected {rule} to fire; got: {diags:#?}"
    );
    assert!(diags.iter().all(|d| d.rule == rule), "{name}: expected only {rule}; got: {diags:#?}");
}

#[test]
fn every_fixture_name_builds() {
    for name in fixtures::ALL {
        assert!(fixtures::build(name).is_some(), "{name} must build");
    }
    assert!(fixtures::build("no-such-fixture").is_none());
}

// ---------------------------------------------------------------- deadlock

#[test]
fn request_reply_deadlock_lints_with_full_witness() {
    assert_only("deadlock-request-reply", Rule::DeadlockCycle);
    let diags = diags_of("deadlock-request-reply");
    let d = &diags[0];
    // The witness names both tiles, both colors, and walks the cycle.
    assert!(d.message.contains("(0, 0)"), "{}", d.message);
    assert!(d.message.contains("(1, 0)"), "{}", d.message);
    assert!(d.message.contains("color 1"), "{}", d.message);
    assert!(d.message.contains("color 2"), "{}", d.message);
    assert!(d.message.contains("->"), "{}", d.message);
}

#[test]
fn request_reply_deadlock_stalls_dynamically() {
    let mut f = fixtures::build("deadlock-request-reply").unwrap();
    let err = f.run_until_quiescent(10_000).expect_err("must deadlock");
    // Both receives sit waiting forever.
    assert!(err.cycle >= 10_000);
}

#[test]
fn backpressure_deadlock_lints_with_queue_depths() {
    assert_only("deadlock-backpressure", Rule::DeadlockCycle);
    let diags = diags_of("deadlock-backpressure");
    let d = &diags[0];
    // The witness quantifies the waits: send lengths and the queue
    // capacities that bound the cycle's slack.
    assert!(d.message.contains("len 48"), "{}", d.message);
    assert!(d.message.contains("ramp-out 8"), "{}", d.message);
    assert!(d.message.contains("8 flits"), "{}", d.message);
}

#[test]
fn backpressure_deadlock_stalls_dynamically() {
    let mut f = fixtures::build("deadlock-backpressure").unwrap();
    f.run_until_quiescent(10_000).expect_err("must wedge on backpressure");
}

// ------------------------------------------------------------------- races

#[test]
fn overlapping_writes_lint_with_byte_ranges() {
    assert_only("race-overlapping-writes", Rule::DataRace);
    let diags = diags_of("race-overlapping-writes");
    // Both launch sites race each other; the witness carries byte ranges
    // and the activation-graph justification.
    assert!(diags.iter().any(|d| d.message.contains("write")), "{diags:#?}");
    assert!(diags[0].message.contains("bytes ["), "{}", diags[0].message);
    assert!(diags[0].message.contains("activation graph"), "{}", diags[0].message);
}

#[test]
fn overlapping_writes_trip_the_sanitizer() {
    let mut f = fixtures::build("race-overlapping-writes").unwrap();
    f.arm_sanitizer();
    f.run_until_quiescent(10_000).expect("racy but not deadlocked");
    let rep = f.take_sanitizer().unwrap();
    assert!(!rep.is_clean(), "sanitizer must trip: {rep}");
    let t = &rep.tiles[0];
    assert!(t.total_trips > 0);
    assert!(t.trips[0].ctx != t.trips[0].prior_ctx);
}

#[test]
fn write_after_read_lints_as_race() {
    assert_only("race-write-after-read", Rule::DataRace);
    let diags = diags_of("race-write-after-read");
    assert!(
        diags.iter().any(|d| d.message.contains("read") && d.message.contains("write")),
        "{diags:#?}"
    );
}

#[test]
fn write_after_read_trips_the_sanitizer() {
    let mut f = fixtures::build("race-write-after-read").unwrap();
    f.arm_sanitizer();
    f.run_until_quiescent(10_000).expect("racy but not deadlocked");
    let rep = f.take_sanitizer().unwrap();
    assert!(!rep.is_clean(), "sanitizer must trip: {rep}");
    assert!(rep.tiles[0]
        .trips
        .iter()
        .any(|t| matches!(t.kind, wse_arch::TripKind::WriteAfterRead)));
}

// ---------------------------------------------------------------- progress

#[test]
fn unproduced_color_lints_as_starved() {
    assert_only("starved-no-producer", Rule::ColorStarved);
    let diags = diags_of("starved-no-producer");
    let d = &diags[0];
    assert_eq!(d.tile, (1, 0));
    assert!(d.message.contains("color 6"), "{}", d.message);
    assert!(d.message.contains("nothing in the ensemble produces"), "{}", d.message);
}

#[test]
fn unproduced_color_stalls_dynamically() {
    let mut f = fixtures::build("starved-no-producer").unwrap();
    f.run_until_quiescent(10_000).expect_err("receive must wait forever");
}

#[test]
fn unreached_consumer_lints_as_starved() {
    assert_only("starved-unreached-consumer", Rule::ColorStarved);
    let diags = diags_of("starved-unreached-consumer");
    assert_eq!(diags.len(), 1, "only the unreached consumer fires: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.tile, (0, 1));
    assert!(d.message.contains("producer injection point"), "{}", d.message);
}

#[test]
fn unreached_consumer_stalls_dynamically_with_wait_signature() {
    let mut f = fixtures::build("starved-unreached-consumer").unwrap();
    f.arm_sanitizer();
    f.run_until_quiescent(10_000).expect_err("second consumer must wait forever");
    // The shadow channel-wait shows an ever-growing streak on color 6 at
    // the starved tile — the runtime face of the static diagnostic.
    let rep = f.take_sanitizer().unwrap();
    assert!(rep.is_clean(), "starvation is not a race");
    let (x, y, color, n) = rep.longest_channel_wait().expect("waits recorded");
    assert_eq!((x, y, color), (0, 1, 6));
    assert!(n > 9_000, "starved wait should dominate the run, got {n}");
}
