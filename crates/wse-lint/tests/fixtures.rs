//! One intentionally broken fixture per lint rule, plus a minimal clean
//! program that must produce zero diagnostics.
//!
//! Every fixture builds a tiny fabric, breaks exactly one invariant, and
//! asserts the corresponding rule fires. The clean fixture is the control:
//! it exercises routes, a send, a receive, a FIFO, and a completion trigger
//! without tripping anything.

use wse_arch::dsr::mk;
use wse_arch::fabric::Fabric;
use wse_arch::fifo::Fifo;
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::Dtype;
use wse_arch::Port;
use wse_lint::{lint, Rule};

fn assert_fires(fabric: &Fabric, rule: Rule) {
    let diags = lint(fabric);
    assert!(diags.iter().any(|d| d.rule == rule), "expected {rule} to fire; got: {diags:#?}");
}

fn copy(dst: usize, a: usize) -> Stmt {
    Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dst), a: Some(a), b: None })
}

#[test]
fn clean_minimal_program_lints_zero() {
    // One tile sends itself four fp16 words over the ramp loopback and
    // accumulates them through a FIFO drained by an onpush task.
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 0, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let src = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let fbuf = t.mem.alloc_vec(8, Dtype::F16).unwrap();
    let dst = t.mem.alloc_vec(4, Dtype::F16).unwrap();

    let sink = t.core.add_task(Task::new("sink", vec![]).blocked());
    let fifo = t.core.add_fifo(Fifo::new(fbuf, 8, Dtype::F16, Some(sink)));
    let d_src = t.core.add_dsr(mk::tensor16(src, 4));
    let d_tx = t.core.add_dsr(mk::tx16(0, 4));
    let d_rx = t.core.add_dsr(mk::rx16(0, 4));
    let d_fifo_w = t.core.add_dsr(mk::fifo(fifo));
    let d_fifo_r = t.core.add_dsr(mk::fifo(fifo));
    let d_dst = t.core.add_dsr(mk::tensor16(dst, 4));

    let entry = t.core.add_task(Task::new(
        "entry",
        vec![
            Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: Some((sink, TaskAction::Unblock)),
            },
            copy(d_fifo_w, d_rx),
        ],
    ));
    t.core.set_task_body(sink, vec![copy(d_dst, d_fifo_r)]);
    t.core.mark_entry(entry);

    let diags = lint(&f);
    assert!(diags.is_empty(), "clean program must lint zero, got: {diags:#?}");
}

#[test]
fn route_cycle_is_detected() {
    // A 2x2 ring on color 7: (0,0)S→E, (1,0)W→S, (1,1)N→W, (0,1)E→N.
    // Every hop has a consumer route, so only the cycle rule fires.
    let mut f = Fabric::new(2, 2);
    f.set_route(0, 0, Port::South, 7, &[Port::East]);
    f.set_route(1, 0, Port::West, 7, &[Port::South]);
    f.set_route(1, 1, Port::North, 7, &[Port::West]);
    f.set_route(0, 1, Port::East, 7, &[Port::North]);
    assert_fires(&f, Rule::RouteCycle);
    // No other rule should fire: the ring is self-consistent except for
    // being a deadlock.
    let diags = lint(&f);
    assert!(diags.iter().all(|d| d.rule == Rule::RouteCycle), "{diags:#?}");
}

#[test]
fn dangling_route_is_detected() {
    // (0,0) forwards color 3 East, but (1,0) has no rule for (West, 3).
    let mut f = Fabric::new(2, 1);
    f.set_route(0, 0, Port::Ramp, 3, &[Port::East]);
    assert_fires(&f, Rule::RouteDangling);
}

#[test]
fn dangling_segment_fed_by_two_input_ports_is_reported_once() {
    // Both the ramp and the west input forward color 3 into the same dead
    // east segment. The segment's fate is one fact about the program, so
    // it must yield one diagnostic, not one per feeding direction.
    let mut f = Fabric::new(3, 1);
    f.set_route(0, 0, Port::Ramp, 3, &[Port::East]);
    f.set_route(1, 0, Port::Ramp, 3, &[Port::East]);
    f.set_route(1, 0, Port::West, 3, &[Port::East]);
    let diags = lint(&f);
    let dangling: Vec<_> =
        diags.iter().filter(|d| d.rule == Rule::RouteDangling && d.tile == (1, 0)).collect();
    assert_eq!(dangling.len(), 1, "one report per dead segment: {dangling:#?}");
}

#[test]
fn route_off_fabric_is_detected() {
    // Fabric::set_route guards this at config time; programs that configure
    // routers directly (or deserialize route tables) bypass that, which is
    // what the lint rule is for.
    let mut f = Fabric::new(1, 1);
    f.tile_mut(0, 0).router.set_route(Port::Ramp, 2, &[Port::North]);
    assert_fires(&f, Rule::RouteOffFabric);
}

#[test]
fn declared_edge_port_egress_lints_clean() {
    // A boundary fanout through a declared edge channel is host-drained
    // I/O, not a mistake: a complete edge-egress program must lint zero.
    let mut f = Fabric::new(1, 1);
    f.open_edge(0, 0, Port::East, 2);
    f.set_route(0, 0, Port::Ramp, 2, &[Port::East]);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
    let d_tx = t.core.add_dsr(mk::tx16(2, 4));
    let task = t.core.add_task(Task::new("tx", vec![copy(d_tx, d_src)]));
    t.core.mark_entry(task);
    let diags = lint(&f);
    assert!(diags.is_empty(), "declared edge egress must lint clean: {diags:#?}");
}

#[test]
fn undeclared_edge_fanout_still_fires_beside_a_declared_one() {
    // Declaration is per (tile, port, color): the declared channel is
    // exempt, the undeclared fanout right next to it stays an error.
    let mut f = Fabric::new(1, 1);
    f.open_edge(0, 0, Port::East, 2);
    f.tile_mut(0, 0).router.set_route(Port::Ramp, 2, &[Port::East]);
    f.tile_mut(0, 0).router.set_route(Port::Ramp, 3, &[Port::East]); // not declared
    let diags = lint(&f);
    let off: Vec<_> = diags.iter().filter(|d| d.rule == Rule::RouteOffFabric).collect();
    assert_eq!(off.len(), 1, "exactly the undeclared fanout fires: {diags:#?}");
    assert!(off[0].message.contains("color 3"), "{:#?}", off[0]);
}

#[test]
fn dead_delivery_is_detected() {
    // Color 1 is delivered to the ramp but nothing on the tile receives it.
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 1, &[Port::Ramp]);
    assert_fires(&f, Rule::DeadDelivery);
}

#[test]
fn unreachable_receive_is_detected() {
    // A task receives color 4, but no route delivers color 4 to the ramp.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_rx = t.core.add_dsr(mk::rx16(4, 4));
    let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
    let task = t.core.add_task(Task::new("rx", vec![copy(d_buf, d_rx)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::UnreachableReceive);
}

#[test]
fn missing_ramp_route_is_detected() {
    // A task sends on color 5 with no (Ramp, 5) route configured.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
    let d_tx = t.core.add_dsr(mk::tx16(5, 4));
    let task = t.core.add_task(Task::new("tx", vec![copy(d_tx, d_src)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::MissingRampRoute);
}

#[test]
fn color_conflict_between_concurrent_receives_is_detected() {
    // Two background threads both receiving color 9 in one task: flit
    // attribution between them depends on arrival order.
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 9, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let b0 = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let b1 = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_rx0 = t.core.add_dsr(mk::rx16(9, 4));
    let d_rx1 = t.core.add_dsr(mk::rx16(9, 4));
    let d_b0 = t.core.add_dsr(mk::tensor16(b0, 4));
    let d_b1 = t.core.add_dsr(mk::tensor16(b1, 4));
    let task = t.core.add_task(Task::new(
        "rx2",
        vec![
            Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_b0), a: Some(d_rx0), b: None },
                on_complete: None,
            },
            Stmt::Launch {
                slot: 1,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_b1), a: Some(d_rx1), b: None },
                on_complete: None,
            },
        ],
    ));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::ColorConflict);
}

#[test]
fn sequential_receives_on_one_color_are_allowed() {
    // Two synchronous receives of the same color are serialized by the
    // main thread — the BiCGStab phase-reuse pattern. No conflict.
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 9, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let b0 = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_rx = t.core.add_dsr(mk::rx16(9, 4));
    let d_b0 = t.core.add_dsr(mk::tensor16(b0, 4));
    let d_tx = t.core.add_dsr(mk::tx16(9, 4));
    let task = t
        .core
        .add_task(Task::new("rxseq", vec![copy(d_tx, d_b0), copy(d_b0, d_rx), copy(d_b0, d_rx)]));
    t.core.mark_entry(task);
    let diags = lint(&f);
    assert!(
        diags.iter().all(|d| d.rule != Rule::ColorConflict),
        "sequential same-color receives must not conflict: {diags:#?}"
    );
}

#[test]
fn color_out_of_range_is_detected() {
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_rx = t.core.add_dsr(mk::rx16(99, 4));
    let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
    let task = t.core.add_task(Task::new("rx", vec![copy(d_buf, d_rx)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::ColorOutOfRange);
}

#[test]
fn sram_over_budget_is_detected() {
    // A used descriptor whose extent reaches past the 48 KB SRAM.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(100, Dtype::F16).unwrap();
    let d_src = t.core.add_dsr(mk::tensor16(buf, 100));
    let d_big = t.core.add_dsr(mk::tensor16(48 * 1024 - 8, 100));
    let task = t.core.add_task(Task::new("spill", vec![copy(d_big, d_src)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::SramOverBudget);
}

#[test]
fn unallocated_extent_is_detected() {
    // A used descriptor over memory the allocator never handed out.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(16, Dtype::F16).unwrap(); // [0, 32)
    let d_src = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_wild = t.core.add_dsr(mk::tensor16(1024, 16)); // nowhere near it
    let task = t.core.add_task(Task::new("wild", vec![copy(d_wild, d_src)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::UnallocatedExtent);
}

#[test]
fn partial_dsr_overlap_is_detected() {
    // dst shifted one element into src: streamed writes clobber unread
    // source elements.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(32, Dtype::F16).unwrap();
    let d_src = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_dst = t.core.add_dsr(mk::tensor16(buf + 2, 16));
    let task = t.core.add_task(Task::new("shift", vec![copy(d_dst, d_src)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::DsrOverlap);
}

#[test]
fn identical_extent_in_place_update_is_allowed() {
    // dst == src exactly (the in-place AddAssign/Xpay idiom): no finding.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(16, Dtype::F16).unwrap();
    let d_a = t.core.add_dsr(mk::tensor16(buf, 16));
    let d_dst = t.core.add_dsr(mk::tensor16(buf, 16));
    let task = t.core.add_task(Task::new(
        "inplace",
        vec![Stmt::Exec(TensorInstr {
            op: Op::AddAssign,
            dst: Some(d_dst),
            a: Some(d_a),
            b: None,
        })],
    ));
    t.core.mark_entry(task);
    let diags = lint(&f);
    assert!(
        diags.iter().all(|d| d.rule != Rule::DsrOverlap),
        "identical-extent in-place update must be allowed: {diags:#?}"
    );
}

#[test]
fn unreachable_task_is_detected() {
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    t.core.add_task(Task::new("orphan", vec![]));
    assert_fires(&f, Rule::UnreachableTask);
}

#[test]
fn completion_chain_reaches_tasks() {
    // A task activated only through a thread-completion trigger is
    // reachable; the trigger's Unblock edge also clears BlockedForever.
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 0, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
    let d_tx = t.core.add_dsr(mk::tx16(0, 4));
    let d_rx = t.core.add_dsr(mk::rx16(0, 4));
    let d_dst = t.core.add_dsr(mk::tensor16(buf, 4));
    let barrier = t.core.add_task(Task::new("barrier", vec![]));
    let entry = t.core.add_task(Task::new(
        "entry",
        vec![
            Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: Some((barrier, TaskAction::Activate)),
            },
            copy(d_dst, d_rx),
        ],
    ));
    t.core.mark_entry(entry);
    let diags = lint(&f);
    assert!(diags.is_empty(), "completion-chain program must lint clean: {diags:#?}");
}

#[test]
fn blocked_forever_is_detected() {
    // Reachable (activated by the entry) but starts blocked with no
    // reachable unblock.
    let mut f = Fabric::new(1, 1);
    let t = f.tile_mut(0, 0);
    let stuck = t.core.add_task(Task::new("stuck", vec![]).blocked());
    let entry = t.core.add_task(Task::new(
        "entry",
        vec![Stmt::TaskCtl { task: stuck, action: TaskAction::Activate }],
    ));
    t.core.mark_entry(entry);
    assert_fires(&f, Rule::BlockedForever);
}

#[test]
fn fifo_with_no_onpush_or_reader_is_detected() {
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 0, &[Port::Ramp]);
    let t = f.tile_mut(0, 0);
    let fbuf = t.mem.alloc_vec(8, Dtype::F16).unwrap();
    let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
    let fifo = t.core.add_fifo(Fifo::new(fbuf, 8, Dtype::F16, None));
    let d_src = t.core.add_dsr(mk::tensor16(buf, 4));
    let d_fifo = t.core.add_dsr(mk::fifo(fifo));
    let task = t.core.add_task(Task::new("push", vec![copy(d_fifo, d_src)]));
    t.core.mark_entry(task);
    assert_fires(&f, Rule::FifoNeverDrained);
}

#[test]
fn diagnostics_format_and_sort() {
    let mut f = Fabric::new(1, 1);
    f.set_route(0, 0, Port::Ramp, 1, &[Port::Ramp]);
    let diags = lint(&f);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(rendered.contains("error"), "{rendered}");
    assert!(rendered.contains("dead-delivery"), "{rendered}");
    assert!(rendered.contains("tile (0, 0)"), "{rendered}");
}
