//! Integration tests for the multi-tenant wafer service: program-build
//! determinism (the cache's correctness precondition), translation
//! invariance (the blit placement's correctness precondition), tenant
//! fault isolation, labeled recovery, and the end-to-end service loop.

use proptest::prelude::*;
use stencil::decomp::Block2D;
use wse_arch::{Fabric, FaultKind, FaultKindClass, FaultPlan, Region, SplitMix64};
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_core::recovery::{RecoveryLog, RecoveryPolicy};
use wse_float::F16;
use wse_serve::{
    open_loop_arrivals, program_digest, Backend, CompiledProgram, JobSpec, ProgramKey, StencilKind,
    TenantSpec, WaferService,
};

/// The service's manufactured right-hand side: a seeded exact solution
/// pushed through the scaled operator (mirrors `WaferService::execute`).
fn rhs_for(p: &CompiledProgram, seed: u64) -> Vec<F16> {
    let n = p.key.points();
    let mut rng = SplitMix64::new(seed);
    let exact: Vec<f64> =
        (0..n).map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5).collect();
    let mut b = vec![0.0f64; n];
    p.matrix_f64.matvec_f64(&exact, &mut b);
    b.iter().map(|&v| F16::from_f64(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Compiling the same [`ProgramKey`] twice yields byte-identical
    /// per-tile programs (SRAM image, task programs, routing tables,
    /// registers — everything the digest covers). This is the property
    /// that makes the compiled-program cache sound: a hit returns exactly
    /// the bytes a fresh build would have produced.
    #[test]
    fn program_builds_are_byte_identical(
        w in 2usize..4,
        h in 2usize..4,
        bx in 3usize..6,
        by in 3usize..6,
        convection in any::<bool>(),
    ) {
        let stencil = if convection {
            StencilKind::convection(1.5, -0.5)
        } else {
            StencilKind::Laplace9
        };
        let key = ProgramKey::bicgstab2d((w * bx, h * by), (bx, by), stencil);
        let first = CompiledProgram::compile(&key).unwrap();
        let second = CompiledProgram::compile(&key).unwrap();
        prop_assert_eq!(first.digest, second.digest);
        prop_assert_eq!(first.sram_peak, second.sram_peak);
        prop_assert_eq!(program_digest(&first.image), program_digest(&second.image));
    }
}

/// Building at a nonzero origin produces the same per-tile bytes as
/// building at the origin of a region-sized scratch fabric — routing and
/// task state are per-tile, so programs are translation-invariant. This is
/// what lets the service place one cached image anywhere via blit+rebase.
#[test]
fn compiled_programs_are_translation_invariant() {
    let key = ProgramKey::bicgstab2d((12, 8), (4, 4), StencilKind::convection(1.5, -0.5));
    let p = CompiledProgram::compile(&key).unwrap();
    let region = Region::new(2, 1, 3, 2);

    // Rebuild the same program directly at origin (2, 1) of a larger
    // fabric: the extract must match the scratch image byte for byte.
    let mut big = Fabric::new(6, 4);
    let _ = WaferBicgstab2d::build_at(&mut big, &p.matrix, Block2D::new(4, 4), (2, 1));
    assert_eq!(program_digest(&big.extract_region(region)), p.digest);

    // And the blit path used by the service reproduces the same bytes.
    let mut blitted = Fabric::new(6, 4);
    blitted.blit_region(region, &p.image);
    assert_eq!(program_digest(&blitted.extract_region(region)), p.digest);
}

/// Runs tenant A then tenant B co-resident on one fabric; returns B's
/// solution and residual trajectory plus A's recovery log.
fn co_resident_run(
    p: &CompiledProgram,
    faults: Option<&FaultPlan>,
) -> (Vec<F16>, Vec<f64>, RecoveryLog) {
    let region_a = Region::new(0, 0, 2, 2);
    let region_b = Region::new(4, 1, 2, 2);
    let mut fabric = Fabric::new(8, 4);
    fabric.blit_region(region_a, &p.image);
    fabric.blit_region(region_b, &p.image);
    let solver_a = p.solver.rebased((region_a.x, region_a.y));
    let solver_b = p.solver.rebased((region_b.x, region_b.y));
    if let Some(plan) = faults {
        fabric.arm_faults(plan);
    }
    let rhs_a = rhs_for(p, 33);
    let rhs_b = rhs_for(p, 77);
    let policy_a = RecoveryPolicy::default().labeled("acme/job0");
    let (_, _, log_a) = solver_a.solve_with_recovery(&mut fabric, &p.matrix, &rhs_a, 6, &policy_a);
    let (x_b, res_b, _) =
        solver_b.solve_with_recovery(&mut fabric, &p.matrix, &rhs_b, 6, &RecoveryPolicy::default());
    (x_b, res_b, log_a)
}

/// A fault plan confined to one tenant's region never perturbs a
/// co-resident tenant: B's solution and residual trajectory are
/// bit-identical whether or not A's region is being bombarded. Containment
/// holds because routing never crosses a region edge (the lint gate proves
/// it on the compiled image), so no wavelet can carry corruption out.
#[test]
fn faults_in_one_tenant_region_never_perturb_a_co_resident() {
    let key = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5));
    let p = CompiledProgram::compile(&key).unwrap();
    let (clean_x, clean_res, clean_log) = co_resident_run(&p, None);
    assert_eq!(clean_log.rollbacks, 0, "clean run must not roll back");

    for seed in [5u64, 6, 7] {
        let plan = FaultPlan::random_in_region(
            seed,
            6,
            30_000,
            Region::new(0, 0, 2, 2),
            p.sram_peak / 2,
            &[FaultKindClass::SramBitFlip],
        );
        let (x_b, res_b, log_a) = co_resident_run(&p, Some(&plan));
        assert_eq!(log_a.label, "acme/job0");
        assert_eq!(clean_x, x_b, "seed {seed}: tenant B's solution changed");
        assert_eq!(clean_res.len(), res_b.len(), "seed {seed}: trajectory length changed");
        for (i, (c, f)) in clean_res.iter().zip(&res_b).enumerate() {
            assert_eq!(c.to_bits(), f.to_bits(), "seed {seed}: B residual {i} diverged");
        }
    }
}

/// Recovery events carry the `[tenant/job]` attribution label, so
/// rollbacks on a shared fabric are billable to the job that incurred
/// them.
#[test]
fn recovery_log_events_carry_the_tenant_job_label() {
    let key = ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9);
    let p = CompiledProgram::compile(&key).unwrap();
    let mut fabric = Fabric::new(4, 2);
    fabric.blit_region(Region::new(0, 0, 2, 2), &p.image);
    // A permanent kill inside the region: every retry stalls, so the log
    // fills with labeled events until retries exhaust.
    fabric.arm_faults(&FaultPlan::new().with(500, FaultKind::TileKill { x: 1, y: 1 }));
    let policy = RecoveryPolicy::default().labeled("acme/job7");
    let rhs = rhs_for(&p, 9);
    let (_, _, log) = p.solver.solve_with_recovery(&mut fabric, &p.matrix, &rhs, 6, &policy);
    assert_eq!(log.label, "acme/job7");
    assert!(!log.events.is_empty(), "expected labeled stall events");
    for ev in &log.events {
        assert!(ev.starts_with("[acme/job7] "), "unlabeled event: {ev}");
    }
}

/// End-to-end: two tenants share one fabric through the service front
/// door; repeat shapes hit the cache, the report is deterministic, and
/// both tenants get billed for the cycles they used.
#[test]
fn two_tenants_share_a_fabric_through_the_service() {
    let run = || {
        let mut svc = WaferService::new(
            Backend::Single(Fabric::new(8, 4)),
            vec![TenantSpec::new("acme", (3, 2), 8), TenantSpec::new("zenith", (3, 2), 8)],
        )
        .unwrap();
        let shapes = [
            ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::Laplace9),
            ProgramKey::bicgstab2d((8, 8), (4, 4), StencilKind::convection(1.5, -0.5)),
            ProgramKey::bicgstab2d((12, 8), (4, 4), StencilKind::Laplace9),
        ];
        let jobs: Vec<JobSpec> = (0..9)
            .map(|i| JobSpec {
                tenant: i % 2,
                key: shapes[i % 3],
                rhs_seed: 1000 + i as u64,
                max_iters: 4,
            })
            .collect();
        let arrivals = open_loop_arrivals(11, jobs.len(), 0.005);
        svc.run(&jobs, &arrivals);
        svc.report()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.render(), b.render(), "service report must be deterministic");
    assert_eq!(a.completed, 9);
    assert!(a.cache.hit_rate() > 0.0, "repeat shapes must hit the cache");
    assert!(a.cache.cold >= 3, "three distinct shapes compile cold");
    assert!(a.billing.iter().all(|row| row.completed > 0 && row.cycles > 0));
    assert!(a.p99_us >= a.p50_us && a.solves_per_sec > 0.0);
}
