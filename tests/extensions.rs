//! Integration tests for the post-reproduction extensions: hard matrix
//! classes on the wafer, refinement to fp64 accuracy, and the
//! communication-reduced solvers.

use wafer_stencil::kernels::cg::{CgVariant, WaferCg};
use wafer_stencil::prelude::*;
use wafer_stencil::solver_::refinement::{iterative_refinement, RefinementOptions};
use wafer_stencil::stencil_::precond::jacobi_scale;
use wafer_stencil::stencil_::variable::{
    anisotropic_diffusion, variable_diffusion, DiffusivityField,
};

/// Heterogeneous-media system (1000:1 contrast) solved on the wafer.
#[test]
fn wafer_solves_heterogeneous_diffusion() {
    let mesh = Mesh3D::new(4, 4, 10);
    let field = DiffusivityField::random(mesh, 1e-2, 10.0, 99);
    let a = variable_diffusion(&field);
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 9) as f64) * 0.1 - 0.4).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);
    let sys = jacobi_scale(&a, &b);
    let a16: DiaMatrix<F16> = sys.matrix.convert();
    let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(4, 4);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (_, stats) = wafer.solve(&mut fabric, &b16, 25);
    let best = stats.residuals.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(best < 0.05, "heterogeneous system on wafer: best residual {best}");
}

/// The SPD anisotropic operator solved by wafer CG in both variants.
#[test]
fn wafer_cg_handles_anisotropy() {
    let mesh = Mesh3D::new(4, 4, 8);
    let a = anisotropic_diffusion(mesh, 1.0, 1.0, 8.0);
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 5) as f64) * 0.125).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);
    let sys = jacobi_scale(&a, &b);
    let a16: DiaMatrix<F16> = sys.matrix.convert();
    let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    for variant in [CgVariant::Standard, CgVariant::SingleReduction] {
        let mut fabric = Fabric::new(4, 4);
        let cg = WaferCg::build(&mut fabric, &a16, variant);
        let (_, _, residuals) = cg.solve(&mut fabric, &b16, 30);
        let best = residuals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(best < 0.05, "{variant:?}: best residual {best}");
    }
}

/// Refinement recovers fp64 accuracy on a heterogeneous system whose fp16
/// plateau would otherwise be severe.
#[test]
fn refinement_handles_high_contrast_media() {
    let mesh = Mesh3D::new(5, 5, 6);
    let field = DiffusivityField::layered(mesh, 1e-2, 1.0);
    let a = variable_diffusion(&field);
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 7) as f64) * 0.2 - 0.6).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);
    let sys = jacobi_scale(&a, &b);
    let opts = RefinementOptions { max_outer: 40, inner_iters: 10, rtol: 1e-9 };
    let res = iterative_refinement::<MixedF16>(&sys.matrix, &sys.rhs, &opts);
    assert!(res.converged, "final {:.2e}", res.history.final_recursive());
    let err = res.x.iter().zip(&exact).map(|(x, e)| (x - e).abs()).fold(0.0_f64, f64::max);
    assert!(err < 1e-7, "solution error {err}");
}

/// The fused BiCGStab matches the standard one on a CFD momentum system.
#[test]
fn fused_bicgstab_on_cfd_system() {
    use wafer_stencil::cfd_::grid::Component;
    let mut cavity = Cavity::new(4, 4, 4, 0.1);
    cavity.run(3);
    let sys = cavity.momentum_system(Component::U);
    let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
    let a16: DiaMatrix<F16> = scaled.matrix.convert();
    let b16: Vec<F16> = scaled.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mesh = a16.mesh();

    let mut f = Fabric::new(mesh.nx, mesh.ny);
    let solver = WaferBicgstab::build_fused(&mut f, &a16);
    let (_, stats) = solver.solve(&mut f, &b16, 8);
    assert!(stats.residuals.last().unwrap() < &0.02, "{:?}", stats.residuals);
}
