//! One test per headline claim of the paper — the contract EXPERIMENTS.md
//! reports against.

use wafer_stencil::perf::allreduce::AllReduceModel;
use wafer_stencil::perf::balance::{cs1_balance, cs1_bytes_per_flop};
use wafer_stencil::perf::mfix::MfixProjection;
use wafer_stencil::perf::opcounts;
use wafer_stencil::prelude::*;

/// §II: "48 KB ... totals 18 GB across the wafer" for ~380k cores — and the
/// experiment fabric is 602×595.
#[test]
fn memory_capacity_arithmetic() {
    let cores: u64 = 380_000;
    let total_gb = cores * 48 * 1024 / (1 << 30);
    assert_eq!(total_gb, 17, "48 KB × 380k cores ≈ 17.4 GB ('18 GB')");
    assert_eq!(602 * 595, 358_190, "compute fabric core count");
}

/// §IV: 10 Z words/core; Z = 1536 uses "about 31 KB out of 48 KB".
#[test]
fn storage_claim() {
    let m = Mapping3D::paper();
    assert_eq!(m.words_per_core(), 10 * 1536);
    let kb = m.bytes_per_core() as f64 / 1024.0;
    assert!((29.0..32.0).contains(&kb), "{kb} KB");
}

/// Table I: 44 operations per meshpoint per iteration; 40 fp16 + 4 fp32.
#[test]
fn table1_claim() {
    assert_eq!(opcounts::total_ops_per_point(), 44);
    assert_eq!(opcounts::mixed_hp_ops_per_point(), 40);
    assert_eq!(opcounts::mixed_sp_ops_per_point(), 4);
}

/// §V: 28.1 µs/iteration and 0.86 PFLOPS, about one third of peak.
#[test]
fn headline_claim_from_model() {
    let p = Cs1Model::default().predict_headline();
    assert!((p.time_us - 28.1).abs() / 28.1 < 0.15, "{} us", p.time_us);
    assert!((p.pflops - 0.86).abs() / 0.86 < 0.15, "{} PFLOPS", p.pflops);
    assert!((0.25..0.45).contains(&p.utilization));
}

/// §IV.3: scalar AllReduce under 1.5 µs across ~380k cores.
#[test]
fn allreduce_claim() {
    let m = AllReduceModel::default();
    let t = m.time_us(602, 595, Cs1Model::default().clock_ghz);
    assert!(t < 1.5, "{t} us");
}

/// §V.A: the 16K-core cluster takes "about 214 times more" than the CS-1.
#[test]
fn cluster_ratio_claim() {
    let joule = JouleModel::default();
    let cs1 = Cs1Model::default().predict_headline();
    let ratio = joule.time_per_iteration(600, 16384) / (cs1.time_us * 1e-6);
    assert!((170.0..270.0).contains(&ratio), "{ratio}x");
}

/// §V.A: 75 ms at 1024 cores scaling to ~6 ms at 16K on 600³; the 370³ mesh
/// fails to scale beyond 8K cores.
#[test]
fn scaling_claims() {
    let j = JouleModel::default();
    assert!((j.time_per_iteration(600, 1024) - 0.075).abs() < 0.002);
    assert!((j.time_per_iteration(600, 16384) - 0.006).abs() < 0.0002);
    let t8 = j.time_per_iteration(370, 8192);
    let t16 = j.time_per_iteration(370, 16384);
    assert!(t16 > 0.9 * t8, "no meaningful gain past 8K: {t8} -> {t16}");
}

/// §IV.2: 38×38 blocks fit (22800² geometry); 8×8 blocks stay under 20%
/// overhead (4800² geometry).
#[test]
fn two_d_mapping_claims() {
    assert_eq!(Block2D::max_square(), 38);
    let m = Block2D::new(38, 38).covered_mesh(600, 600);
    assert_eq!((m.nx, m.ny), (22_800, 22_800));
    assert!(Block2D::new(8, 8).overhead_fraction() < 0.20);
    let m = Block2D::new(8, 8).covered_mesh(600, 600);
    assert_eq!((m.nx, m.ny), (4_800, 4_800));
}

/// §II: "three bytes to and from memory for every flop"; the CS-1 sits at
/// the bottom of the flops-per-word scale.
#[test]
fn balance_claims() {
    assert_eq!(cs1_bytes_per_flop(), 3.0);
    assert!(cs1_balance().flops_per_mem_word < 1.0);
}

/// §VI.A: 80–125 timesteps/s projected; >200× the 16,384-core cluster.
#[test]
fn mfix_projection_claims() {
    let r = MfixProjection::default().project();
    assert!(r.steps_per_sec_low < 125.0 && r.steps_per_sec_high > 80.0);
    assert!(r.speedup_vs_joule > 200.0);
}

/// Fig. 9: mixed precision tracks fp32 early, then plateaus around 1e-2
/// while fp32 keeps going — measured on an actual momentum system.
#[test]
fn fig9_claim() {
    use wafer_stencil::cfd_::cavity::fig9_momentum_system;
    use wafer_stencil::solver_::study::run_policy;
    use wafer_stencil::stencil_::precond::jacobi_scale;
    let sys = fig9_momentum_system(10, 3);
    let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
    let opts = SolveOptions { max_iters: 16, rtol: 1e-14, record_true_residual: true };
    let fp32 = run_policy::<Fp32>(&scaled.matrix, &scaled.rhs, &opts);
    let mixed = run_policy::<MixedF16>(&scaled.matrix, &scaled.rhs, &opts);
    // Plateau level: order 1e-2 (allow 1e-3..5e-2).
    assert!((1e-3..5e-2).contains(&mixed.best()), "mixed plateau {:.2e}", mixed.best());
    // fp32 goes at least 10x further down.
    assert!(
        fp32.best() * 10.0 < mixed.best(),
        "fp32 {:.2e} vs mixed {:.2e}",
        fp32.best(),
        mixed.best()
    );
    // Early iterations track: within 2x at iteration 3.
    let k = 2;
    let ratio = mixed.residuals[k] / fp32.residuals[k];
    assert!((0.5..2.0).contains(&ratio), "iteration-3 ratio {ratio}");
}
