//! Cross-crate property tests: the wafer kernels agree with host reference
//! computations on randomized inputs and geometries.

use proptest::prelude::*;
use wafer_stencil::kernels::allreduce::AllReduce;
use wafer_stencil::kernels::routing::verify_tessellation;
use wafer_stencil::prelude::*;
use wafer_stencil::stencil_::dia::Offset3;

/// Random unit-diagonal 7-point matrix whose arithmetic is *exact* in
/// binary16: coefficients and iterate are multiples of 1/8 with magnitude
/// ≤ 1, so every product is a multiple of 1/64 with numerator ≤ 81 and
/// every partial sum of the seven terms has numerator well under 2¹¹ —
/// no rounding anywhere, making summation order irrelevant and bit-exact
/// comparison against the host valid.
fn exact_system(mesh: Mesh3D, coef_seed: Vec<i8>, v_seed: Vec<i8>) -> (DiaMatrix<F16>, Vec<F16>) {
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    let mut ci = 0usize;
    let coef = |s: &Vec<i8>, i: &mut usize| -> f64 {
        let v = (s[*i % s.len()] % 9) as f64 / 8.0;
        *i += 1;
        v
    };
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 1.0);
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, coef(&coef_seed, &mut ci));
            }
        }
    }
    let mut vi = 0usize;
    let v: Vec<F16> = (0..mesh.len()).map(|_| F16::from_f64(coef(&v_seed, &mut vi))).collect();
    (a.convert(), v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Wafer SpMV is bit-exact against the host DIA matvec whenever the
    /// arithmetic is exact, for random geometries and coefficients.
    #[test]
    fn wafer_spmv_matches_host(
        w in 1usize..5,
        h in 1usize..5,
        z in 2usize..24,
        coef in prop::collection::vec(-64i8..64, 32),
        vseed in prop::collection::vec(-64i8..64, 32),
    ) {
        let mesh = Mesh3D::new(w, h, z);
        let (a, v) = exact_system(mesh, coef, vseed);
        let mut fabric = Fabric::new(w, h);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        let mut host = vec![F16::ZERO; mesh.len()];
        a.matvec(&v, &mut host);
        for i in 0..mesh.len() {
            prop_assert_eq!(wafer[i].to_bits(), host[i].to_bits(), "element {}", i);
        }
    }

    /// The fabric AllReduce computes the fp32 sum (up to association order)
    /// for random fabric sizes and values.
    #[test]
    fn allreduce_sums_correctly(
        w in 2usize..10,
        h in 2usize..10,
        vals in prop::collection::vec(-100i32..100, 100),
    ) {
        let values: Vec<f32> = (0..w * h).map(|i| vals[i % vals.len()] as f32 / 8.0).collect();
        let expect: f64 = values.iter().map(|&v| v as f64).sum();
        let mut fabric = Fabric::new(w, h);
        let ar = AllReduce::build(&mut fabric, w, h, 24, 25, 26);
        let (out, cycles) = ar.run(&mut fabric, &values);
        for (i, got) in out.iter().enumerate() {
            prop_assert!(
                (*got as f64 - expect).abs() <= 1e-3 * (1.0 + expect.abs()),
                "tile {}: {} vs {} ({} cycles)", i, got, expect, cycles
            );
        }
    }

    /// The tessellation holds for arbitrary region sizes.
    #[test]
    fn tessellation_always_collision_free(w in 1usize..80, h in 1usize..80) {
        prop_assert!(verify_tessellation(w, h).is_ok());
    }

    /// Jacobi preconditioning never changes the solution: residuals of the
    /// scaled system at the exact solution stay (near) zero.
    #[test]
    fn preconditioning_preserves_solutions(
        nx in 2usize..5, ny in 2usize..5, nz in 2usize..6, seed in 0u64..1000,
    ) {
        let p = manufactured(Mesh3D::new(nx, ny, nz), (1.0, -1.0, 0.5), seed);
        let exact = p.exact.clone().unwrap();
        let sp = p.preconditioned();
        let r = sp.matrix.residual_f64(&exact, &sp.rhs);
        let max = r.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        prop_assert!(max < 1e-9, "residual {}", max);
    }
}
