//! Fault-injection, watchdog, and checkpoint/rollback recovery — the
//! robustness story end to end.
//!
//! The fabric has no hardware ECC and the routing plane has no timeouts, so
//! before this subsystem a misrouted flit or a corrupted word meant either a
//! silently wrong answer or a simulation spinning its full cycle budget.
//! These tests pin the contract from the other side: every injected fault
//! either leaves a verifiably correct solve, or is *named* — by a
//! [`StallReport`] from the watchdog or a non-`Converged` outcome in the
//! [`RecoveryLog`].

use proptest::prelude::*;
use wafer_stencil::arch::dsr::mk;
use wafer_stencil::arch::fabric::StallReport;
use wafer_stencil::arch::instr::{Op, Stmt, Task, TensorInstr};
use wafer_stencil::arch::types::{Dtype, Port};
use wafer_stencil::arch::{FaultKind, FaultKindClass, FaultPlan};
use wafer_stencil::kernels::recovery::{
    true_rel_residual, RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire,
};
use wafer_stencil::kernels::WaferBicgstabMulti;
use wafer_stencil::prelude::*;
use wse_multi::{HostLink, MultiFabric};

/// fp16-scale recovery policy: the wafer iterates in fp16, so convergence is
/// declared at the fp16 floor and verified against a commensurate true
/// residual (defaults target fp64-scale solves).
fn fp16_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_every: 0, // keep only the clean post-load checkpoint
        max_retries: 3,
        verify_rel: 0.1,
        tripwire: ResidualTripwire { converged: 2e-2, diverged: 1e6 },
        label: String::new(),
    }
}

fn fp16_problem(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>) {
    let p = manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned();
    (p.matrix.convert(), p.rhs.iter().map(|&v| F16::from_f64(v)).collect())
}

/// Builds a solver, runs one fault-free recovering solve, and returns the
/// cycle horizon it took (for scheduling faults "mid-solve") plus its log.
fn baseline(mesh: Mesh3D, w: usize, h: usize) -> (u64, RecoveryLog) {
    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(w, h);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    let (_, _, log) = solver.solve_with_recovery(&mut fabric, &a, &b, 16, &fp16_policy());
    (fabric.cycle(), log)
}

/// The wse-lint `dangling_route_is_detected` fixture shape — (0,0) forwards
/// color 3 East, (1,0) has no rule for (West, 3) — but with linting *not*
/// run and traffic actually sent: the watchdog must return a structured
/// [`StallReport`] instead of spinning the full cycle budget.
#[test]
fn watchdog_names_an_undeliverable_route_without_lint() {
    let mut f = Fabric::new(2, 1);
    f.set_route(0, 0, Port::Ramp, 3, &[Port::East]);
    // Deliberately no route at (1,0): flits pile up in its West queue.

    let t = f.tile_mut(0, 0);
    let n = 64;
    let src = t.mem.alloc_vec(n, Dtype::F16).unwrap();
    let data: Vec<F16> = (0..n).map(|i| F16::from_f64(i as f64)).collect();
    t.mem.store_f16_slice(src, &data);
    let d_src = t.core.add_dsr(mk::tensor16(src, n));
    let d_tx = t.core.add_dsr(mk::tx16(3, n));
    let send = t.core.add_task(Task::new(
        "send",
        vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None })],
    ));
    t.core.activate(send);

    let budget = 1_000_000;
    let report: Box<StallReport> = f.run_watched(budget, 256).unwrap_err();
    // Deadlock was *detected*, not timed out, and long before the budget.
    assert!(!report.deadline_exceeded, "watchdog should catch the wedge, not the deadline");
    assert!(report.cycle < budget / 10, "detected at cycle {}, too late", report.cycle);
    assert!(report.total_stalled >= 1);
    // The receiving tile is named with its backed-up router queue.
    let rx = report
        .stalled
        .iter()
        .find(|t| t.x == 1 && t.y == 0)
        .expect("tile (1,0) must appear in the report");
    assert!(rx.router_queued > 0, "undelivered flits must be visible: {rx:?}");
}

/// A killed tile on the 4×4 solve fabric: every retry re-wedges, so the
/// recovering solve terminates with `RetriesExhausted` and a stall count —
/// it does not hang and does not claim convergence.
#[test]
fn killed_tile_terminates_with_recovery_log() {
    let mesh = Mesh3D::new(4, 4, 8);
    let (horizon, base) = baseline(mesh, 4, 4);
    assert_eq!(base.outcome, RecoveryOutcome::Converged, "baseline: {base}");

    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(4, 4);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    fabric.arm_faults(&FaultPlan::new().with(horizon / 3, FaultKind::TileKill { x: 2, y: 1 }));
    let (_, _, log) = solver.solve_with_recovery(&mut fabric, &a, &b, 16, &fp16_policy());

    assert_eq!(log.outcome, RecoveryOutcome::RetriesExhausted, "{log}");
    assert_eq!(log.rollbacks, 3, "the whole retry budget is consumed: {log}");
    assert!(log.stalls >= 4, "initial stall plus one per retry: {log}");
    assert!(fabric.tile_dead(2, 1));
    // Every stall left a trail naming the wedge.
    assert!(!log.events.is_empty());
}

/// Same shape for a stuck router port: permanent, so bounded retries then a
/// structured failure.
#[test]
fn stuck_port_terminates_with_recovery_log() {
    let mesh = Mesh3D::new(4, 4, 8);
    let (horizon, _) = baseline(mesh, 4, 4);

    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(4, 4);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    fabric.arm_faults(
        &FaultPlan::new().with(horizon / 3, FaultKind::StuckPort { x: 1, y: 2, port: Port::East }),
    );
    let (_, _, log) = solver.solve_with_recovery(&mut fabric, &a, &b, 16, &fp16_policy());

    assert_ne!(log.outcome, RecoveryOutcome::Converged, "a wedged fabric cannot converge");
    assert!(log.stalls >= 1, "{log}");
    assert!(log.rollbacks >= 1, "{log}");
}

/// A deterministic high-bit flip in the iterate `x` mid-solve. The
/// recursive residual never reads `x`, so the solve still *claims*
/// convergence — the engine's true-residual verification must catch the
/// lie, roll back to the clean post-load checkpoint, and replay to a
/// verified answer (one-shot faults do not re-fire).
#[test]
fn x_corruption_is_caught_and_repaired_by_rollback() {
    let mesh = Mesh3D::new(2, 2, 4);
    let (horizon, base) = baseline(mesh, 2, 2);
    assert_eq!(base.outcome, RecoveryOutcome::Converged);

    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(2, 2);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    // Bit 14 is the top exponent bit: the flipped word jumps to ~1e4.
    let addr = solver.x_addr(1, 1) + 2; // second word of (1,1)'s x slice
    fabric.arm_faults(
        &FaultPlan::new().with(horizon / 2, FaultKind::SramBitFlip { x: 1, y: 1, addr, bit: 14 }),
    );
    let (x, _, log) = solver.solve_with_recovery(&mut fabric, &a, &b, 16, &fp16_policy());

    assert_eq!(log.outcome, RecoveryOutcome::Converged, "{log}");
    assert!(log.false_convergences >= 1, "the corrupted claim must be rejected: {log}");
    assert!(log.rollbacks >= 1, "{log}");
    let true_rel = true_rel_residual(&a, &x, &b);
    assert!(true_rel < 0.1, "returned iterate must be verifiably good: {true_rel}");
}

/// Seeded fault generation and the recovering solve are deterministic:
/// identical seeds produce identical plans and bit-identical recovery logs.
#[test]
fn seeded_runs_are_bit_for_bit_reproducible() {
    let mesh = Mesh3D::new(2, 2, 4);
    let (a, b) = fp16_problem(mesh);
    let run = || {
        let mut fabric = Fabric::new(2, 2);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let plan = FaultPlan::random(
            0xfeed_beef,
            3,
            50_000,
            2,
            2,
            fabric.tile(0, 0).mem.used() / 2,
            &wafer_stencil::arch::FaultKindClass::ALL,
        );
        fabric.arm_faults(&plan);
        let (x, stats, log) = solver.solve_with_recovery(&mut fabric, &a, &b, 12, &fp16_policy());
        (x, stats.residuals.clone(), format!("{log:?}"), format!("{:?}", fabric.fault_log()))
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0, "iterates differ");
    assert_eq!(first.1, second.1, "residual histories differ");
    assert_eq!(first.2, second.2, "recovery logs differ");
    assert_eq!(first.3, second.3, "fault logs differ");
}

/// Checkpoint restore must not rewind the global clock, the cumulative perf
/// counters, or trace timestamps: rollback discards *solver* state, not
/// *observability* state. Exported traces spanning a rollback must still
/// validate (per-track monotone timestamps).
#[test]
fn checkpoint_restore_preserves_monotone_perf_and_trace_counters() {
    use wafer_stencil::arch::TraceConfig;
    use wafer_stencil::kernels::recovery::FabricCheckpoint;

    let mesh = Mesh3D::new(2, 2, 4);
    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(2, 2);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    solver.load_rhs(&mut fabric, &b);
    fabric.arm_trace(TraceConfig::default());

    solver.iterate(&mut fabric);
    let ckpt = FabricCheckpoint::capture(&mut fabric);

    solver.iterate(&mut fabric);
    let cycle_before = fabric.cycle();
    let perf_before = fabric.perf();

    ckpt.restore(&mut fabric);
    assert_eq!(fabric.cycle(), cycle_before, "restore must not rewind the clock");
    let perf_after = fabric.perf();
    assert!(perf_after.busy_cycles >= perf_before.busy_cycles, "busy cycles rewound");
    assert!(perf_after.idle_cycles >= perf_before.idle_cycles, "idle cycles rewound");
    assert!(perf_after.flits_routed >= perf_before.flits_routed, "flit count rewound");
    assert!(perf_after.ctrl_stmts >= perf_before.ctrl_stmts, "ctrl count rewound");
    assert!(
        perf_after.backpressure_total() >= perf_before.backpressure_total(),
        "backpressure counters rewound"
    );

    // Replay the rolled-back iteration: the clock and counters keep rising.
    solver.iterate(&mut fabric);
    assert!(fabric.cycle() > cycle_before, "replay must advance the clock");
    assert!(fabric.perf().busy_cycles > perf_after.busy_cycles);

    let trace = fabric.take_trace().expect("tracing was armed");
    for pair in trace.phases.windows(2) {
        assert!(pair[1].start >= pair[0].start, "phase spans out of order: {pair:?}");
    }
    let json = wse_trace::export_trace_json(&trace);
    let stats = wse_trace::validate_trace_json(&json)
        .expect("trace spanning a rollback must still export a valid Perfetto document");
    assert!(stats.slices > 0, "expected task slices from three iterations");
}

/// The activity-driven stepper defers per-tile idle accounting, so a
/// checkpoint captured mid-solve sees pending idle debt. Capture must
/// settle that debt (exactly as `arm_trace` does): an immediate second
/// capture is bit-identical, and replaying an iteration after a restore
/// reproduces the pre-rollback iteration bit for bit.
#[test]
fn checkpoint_capture_settles_idle_debt_bit_identically() {
    use wafer_stencil::kernels::recovery::FabricCheckpoint;

    let mesh = Mesh3D::new(2, 2, 4);
    let (a, b) = fp16_problem(mesh);
    let mut fabric = Fabric::new(2, 2);
    let solver = WaferBicgstab::build(&mut fabric, &a);
    solver.load_rhs(&mut fabric, &b);
    // One iteration leaves deferred idle debt on every tile that went
    // quiet before the phase ended.
    solver.iterate(&mut fabric);

    let first = FabricCheckpoint::capture(&mut fabric);
    let second = FabricCheckpoint::capture(&mut fabric);
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "back-to-back captures of the same quiescent state must agree"
    );

    // Replay bit-identity across a rollback.
    solver.iterate(&mut fabric);
    let x_a = solver.read_x(&fabric);
    let rr_a = solver.residual_norm(&mut fabric);
    first.restore(&mut fabric);
    solver.iterate(&mut fabric);
    let x_b = solver.read_x(&fabric);
    let rr_b = solver.residual_norm(&mut fabric);
    assert_eq!(x_a, x_b, "replayed iteration must be bit-identical");
    assert_eq!(rr_a.to_bits(), rr_b.to_bits(), "replayed residual must be bit-identical");
}

/// fp16-scale policy for the (smaller) ensemble meshes.
fn multi_policy() -> RecoveryPolicy {
    fp16_policy()
}

fn multi_problem() -> (Mesh3D, DiaMatrix<F16>, Vec<F16>) {
    let mesh = Mesh3D::new(4, 2, 4);
    let (a, b) = fp16_problem(mesh);
    (mesh, a, b)
}

/// Fault-free k=2 recovering solve: returns the cycle horizon (for
/// scheduling faults mid-solve) and its log.
fn multi_baseline() -> (u64, RecoveryLog) {
    let (_, a, b) = multi_problem();
    let mut multi = MultiFabric::new(4, 2, 2, HostLink::paper_default());
    let solver = WaferBicgstabMulti::build(&mut multi, &a);
    let (_, _, log) = solver.solve_with_recovery(&mut multi, &a, &b, 16, &multi_policy());
    (multi.cycle(), log)
}

/// The PR's acceptance path: a k=2 hierarchical solve with a host-link
/// frame drop injected mid-solve completes — the reliable transport
/// retransmits (or the engine rolls back) — and the claimed convergence
/// is verified against the f64 true residual.
#[test]
fn k2_host_link_drop_mid_solve_recovers_and_verifies() {
    let (horizon, base) = multi_baseline();
    assert_eq!(base.outcome, RecoveryOutcome::Converged, "baseline: {base}");

    let (_, a, b) = multi_problem();
    let mut multi = MultiFabric::new(4, 2, 2, HostLink::paper_default());
    let solver = WaferBicgstabMulti::build(&mut multi, &a);
    multi.arm_faults(
        &FaultPlan::new().with(horizon / 2, FaultKind::HostLinkDrop { seam: 0, dir: 0 }),
    );
    let (x, _, log) = solver.solve_with_recovery(&mut multi, &a, &b, 16, &multi_policy());

    assert_eq!(log.outcome, RecoveryOutcome::Converged, "{log}");
    let true_rel = true_rel_residual(&a, &x, &b);
    assert!(true_rel < 0.1, "returned iterate must be verifiably good: {true_rel}");
    // The drop actually happened and was masked, not skipped.
    let flog = multi.fault_log().expect("transport armed");
    assert_eq!(flog.dropped_flits, 1, "the armed drop must fire: {flog:?}");
    assert!(
        multi.retransmits() >= 1 || log.rollbacks >= 1,
        "the drop must be repaired by retransmission or rollback: {log}"
    );
    assert!(!multi.any_link_down(), "a single drop must not kill the link");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: a single fp16 bit flip anywhere in the iterate `x`, at any
    /// point of the solve, either still yields a *verifiably* correct
    /// answer, or is flagged in the log — never a silently wrong answer
    /// reported as converged below tolerance.
    #[test]
    fn single_x_bit_flip_never_yields_a_silent_wrong_answer(
        tx in 0usize..2,
        ty in 0usize..2,
        word in 0u32..4,    // each tile holds z = 4 words of x
        bit in 0u8..16,
        frac in 1u64..10,
    ) {
        let mesh = Mesh3D::new(2, 2, 4);
        let (a, b) = fp16_problem(mesh);

        // Fault-free horizon for cycle scheduling.
        let (horizon, base) = baseline(mesh, 2, 2);
        prop_assume!(base.outcome == RecoveryOutcome::Converged);

        let mut fabric = Fabric::new(2, 2);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let addr = solver.x_addr(tx, ty) + 2 * word;
        let at = (horizon * frac / 10).max(1);
        fabric.arm_faults(&FaultPlan::new().with(
            at,
            FaultKind::SramBitFlip { x: tx, y: ty, addr, bit },
        ));
        let (x, _, log) =
            solver.solve_with_recovery(&mut fabric, &a, &b, 16, &fp16_policy());

        if log.outcome == RecoveryOutcome::Converged {
            // A converged claim must be *true* — the engine verified it, and
            // we re-verify independently here.
            let true_rel = true_rel_residual(&a, &x, &b);
            prop_assert!(
                true_rel < 0.1,
                "claimed convergence with true rel {true_rel:.3e}; log: {log}"
            );
        } else {
            // Not converged: the failure is named, not silent.
            prop_assert!(
                log.outcome == RecoveryOutcome::MaxIterations
                    || log.outcome == RecoveryOutcome::RetriesExhausted
            );
        }
    }

    /// Property: a single seeded host-link fault (frame drop or payload
    /// corruption), at any point of a k=2 solve, either still yields a
    /// *verifiably* correct answer — masked by retransmission or repaired
    /// by rollback — or is flagged in the recovery log. Never a silently
    /// wrong answer reported as converged.
    #[test]
    fn single_host_link_fault_never_yields_a_silent_wrong_answer(
        seed in 0u64..1 << 32,
        frac in 1u64..10,
    ) {
        let (horizon, base) = multi_baseline();
        prop_assume!(base.outcome == RecoveryOutcome::Converged);

        let (_, a, b) = multi_problem();
        let mut multi = MultiFabric::new(4, 2, 2, HostLink::paper_default());
        let solver = WaferBicgstabMulti::build(&mut multi, &a);
        // One drop-or-corrupt fault, seeded placement, scheduled at a
        // seeded fraction of the fault-free horizon.
        let pool =
            [FaultKindClass::HostLinkDrop, FaultKindClass::HostLinkCorrupt];
        let plan = FaultPlan::random_host_link(seed, 1, (horizon * frac / 10).max(1), 2, &pool);
        multi.arm_faults(&plan);
        let (x, _, log) =
            solver.solve_with_recovery(&mut multi, &a, &b, 16, &multi_policy());

        if log.outcome == RecoveryOutcome::Converged {
            let true_rel = true_rel_residual(&a, &x, &b);
            prop_assert!(
                true_rel < 0.1,
                "claimed convergence with true rel {true_rel:.3e}; plan {plan:?}; log: {log}"
            );
        } else {
            prop_assert!(
                log.outcome == RecoveryOutcome::MaxIterations
                    || log.outcome == RecoveryOutcome::RetriesExhausted,
                "failure must be structured: {log}"
            );
        }
    }
}
