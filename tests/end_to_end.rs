//! End-to-end integration: CFD → stencil system → wafer solver, and
//! wafer-vs-host consistency across problem classes.

use wafer_stencil::cfd_::cavity::Cavity;
use wafer_stencil::cfd_::grid::Component;
use wafer_stencil::prelude::*;
use wafer_stencil::solver_::policy::MixedF16;
use wafer_stencil::stencil_::precond::jacobi_scale;

/// The full pipeline of the paper: a CFD momentum system, diagonally
/// preconditioned, solved by BiCGStab *on the simulated wafer*.
#[test]
fn cfd_momentum_system_solves_on_the_wafer() {
    // Small cavity whose u-face mesh (nx+1=5 × ny=4 × nz=4) fits a 5×4
    // fabric with Z = 4.
    let mut cavity = Cavity::new(4, 4, 4, 0.1);
    cavity.run(3);
    let sys = cavity.momentum_system(Component::U);
    let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
    let a16: DiaMatrix<F16> = scaled.matrix.convert();
    let b16: Vec<F16> = scaled.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let mesh = a16.mesh();
    let mut fabric = Fabric::new(mesh.nx, mesh.ny);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (x, stats) = wafer.solve(&mut fabric, &b16, 10);

    let last = *stats.residuals.last().unwrap();
    assert!(last < 1e-2, "wafer solve of a CFD system: residual {last}");

    // Cross-check against the host solver at the same precision.
    let opts = SolveOptions { max_iters: 10, rtol: 0.0, record_true_residual: false };
    let host = bicgstab::<MixedF16>(&a16, &b16, &opts);
    let max_dev =
        x.iter().zip(&host.x).map(|(a, b)| (a.to_f64() - b.to_f64()).abs()).fold(0.0_f64, f64::max);
    let scale = host.x.iter().map(|v| v.to_f64().abs()).fold(0.0_f64, f64::max);
    assert!(
        max_dev < 0.1 * scale.max(0.1),
        "wafer and host solutions diverged: {max_dev} (scale {scale})"
    );
}

/// The wafer solver handles every operator class the paper mentions:
/// symmetric diffusion, convection-dominated, and random dominant systems.
#[test]
fn wafer_solver_across_problem_classes() {
    use wafer_stencil::stencil_::problem::{manufactured, random_dominant};
    let mesh = Mesh3D::new(4, 4, 12);
    let cases: Vec<(&str, wafer_stencil::stencil_::problem::Problem)> = vec![
        ("diffusion", manufactured(mesh, (0.0, 0.0, 0.0), 5)),
        ("convection", manufactured(mesh, (3.0, -2.0, 1.0), 6)),
        ("random", random_dominant(mesh, 1.6, 7)),
    ];
    for (name, p) in cases {
        let p = p.preconditioned();
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut fabric = Fabric::new(4, 4);
        let wafer = WaferBicgstab::build(&mut fabric, &a16);
        let (_, stats) = wafer.solve(&mut fabric, &b16, 12);
        let best = stats.residuals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(best < 0.05, "{name}: best residual {best}");
    }
}

/// The host solver at fp64 agrees with the wafer's fp16 answer to fp16
/// accuracy — precision, not algorithm, is the difference.
#[test]
fn precision_not_algorithm_separates_wafer_from_fp64() {
    let p = manufactured(Mesh3D::new(4, 4, 16), (1.0, 0.5, -0.5), 9).preconditioned();
    let exact = p.exact.clone().unwrap();

    // fp64 host answer.
    let opts = SolveOptions { max_iters: 60, rtol: 1e-12, record_true_residual: false };
    let host = bicgstab::<Fp64>(&p.matrix, &p.rhs, &opts);
    let host_err = host.x.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max);
    assert!(host_err < 1e-8, "fp64 err {host_err}");

    // Wafer fp16 answer.
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(4, 4);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (x, _) = wafer.solve(&mut fabric, &b16, 15);
    let wafer_err =
        x.iter().zip(&exact).map(|(a, b)| (a.to_f64() - b).abs()).fold(0.0_f64, f64::max);
    let scale = exact.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
    // fp16 has ~1e-3 relative precision; conditioning costs a bit more.
    assert!(wafer_err < 0.05 * scale.max(1.0), "wafer err {wafer_err} vs scale {scale}");
    assert!(wafer_err > host_err, "fp16 cannot beat fp64");
}

/// Simulated cycles per iteration are stable across iterations (the paper
/// measured a 0.2% standard deviation across 171 iterations).
#[test]
fn iteration_cycles_are_stable() {
    let p = manufactured(Mesh3D::new(4, 4, 32), (1.0, 0.0, 0.0), 11).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(4, 4);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (_, stats) = wafer.solve(&mut fabric, &b16, 8);
    let totals: Vec<f64> = stats.iterations.iter().map(|c| c.total() as f64).collect();
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let var = totals.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / totals.len() as f64;
    let rel_std = var.sqrt() / mean;
    assert!(rel_std < 0.05, "cycle count should be nearly deterministic: rel std {rel_std}");
}
