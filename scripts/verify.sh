#!/usr/bin/env bash
# Tier-1 verification: build, test, static checks.
#
# The first two steps are the repo's historical tier-1 gate (ROADMAP.md);
# the clippy/fmt steps extend it so style and lint regressions fail CI the
# same way broken tests do. The final step runs the wse-lint static
# verifier over every shipped kernel configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== wse-lint (shipped kernel configurations) =="
cargo run -q --release --bin wse-lint

echo "== wse-lint fixtures (broken programs vs expected diagnostics) =="
# Every intentionally broken fixture must lint dirty with exactly the
# checked-in diagnostics (scripts/expected_lints/) and exit 1: the rules
# fire, the witnesses are stable, and nothing else regresses into the
# report.
fx_out="$(mktemp)"
for fx in deadlock-request-reply deadlock-backpressure race-overlapping-writes \
          race-write-after-read starved-no-producer starved-unreached-consumer \
          dsl-radius-overflow dsl-sram-overflow; do
  status=0
  cargo run -q --release --bin wse-lint -- "fixture:$fx" > "$fx_out" 2>/dev/null || status=$?
  if [ "$status" -ne 1 ]; then
    echo "fixture $fx: expected exit status 1 (error diagnostics), got $status"
    exit 1
  fi
  diff -u "scripts/expected_lints/$fx.txt" "$fx_out"
done
rm -f "$fx_out"
echo "all $(ls scripts/expected_lints/*.txt | wc -l) fixtures match their expected diagnostics"

echo "== fault-injection smoke (one seeded fault of each kind, twice, diffed) =="
# The smoke sweep solves a small wafer BiCGStab under one seeded fault per
# kind with checkpoint/rollback recovery enabled. Running it twice and
# diffing asserts the whole fault→watchdog→recovery pipeline is seeded and
# bit-for-bit reproducible.
smoke_a="$(mktemp)"; smoke_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b"' EXIT
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_a"
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_b"
diff -u "$smoke_a" "$smoke_b"
grep -q "baseline (fault-free): Converged" "$smoke_a"

echo "== ensemble fault smoke (k=2 host-link faults, twice, diffed) =="
# The --multi 2 leg drives the k=2 hierarchical solver through every
# host-level fault class (frame drop/corrupt, link stall, wafer stall) with
# the reliable seam transport and ensemble checkpoint/rollback armed. Two
# runs must be bit-identical, and every class must still converge in the
# smoke configuration (single fault, retransmission masks it).
ens_a="$(mktemp)"; ens_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b"' EXIT
cargo run -q --release -p wse-bench --bin fault_sweep -- --multi 2 --smoke > "$ens_a"
cargo run -q --release -p wse-bench --bin fault_sweep -- --multi 2 --smoke > "$ens_b"
diff -u "$ens_a" "$ens_b"
grep -q "baseline (fault-free): Converged" "$ens_a"
grep -q "host_link_drop" "$ens_a"

echo "== trace smoke (traced iteration profile, twice, diffed) =="
# iter_profile calibrates the analytic model from untraced runs, runs a
# traced BiCGStab iteration, exports a Perfetto trace, and cross-validates
# the phase split against the model. Wall timings go to stderr; stdout
# (including the FNV-1a hash of the full Perfetto JSON) must be
# bit-for-bit reproducible across runs.
trace_a="$(mktemp)"; trace_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b" "$trace_a" "$trace_b"' EXIT
cargo run -q --release -p wse-bench --bin iter_profile -- --smoke > "$trace_a"
cargo run -q --release -p wse-bench --bin iter_profile -- --smoke > "$trace_b"
diff -u "$trace_a" "$trace_b"
grep -q "all phases within 15% of the analytic prediction" "$trace_a"
grep -q "cycle identity:" "$trace_a"
# The runtime sanitizer leg: armed shadow state must not perturb simulated
# time and must find the shipped solver race-free.
grep -q "cycle identity: .* runtime sanitizer armed (0 race trips)" "$trace_a"
# The reliable-transport leg: framing/acks on a healthy k=2 split must be
# cycle-identical to the trusted link and never retransmit.
grep -q "cycle identity: .* armed and disarmed transport" "$trace_a"

echo "== stepper throughput smoke (activity-driven vs reference, twice, diffed) =="
# sim_throughput runs the same workloads under the optimized activity-driven
# stepper and the retained full-scan reference, asserts identical simulated
# cycle counts, and gates a minimum wall-clock speedup on the
# sparse-activity workload (single active column on 64x64). Wall timings go
# to stderr; stdout is deterministic and diffed across two runs.
thr_a="$(mktemp)"; thr_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b"' EXIT
cargo run -q --release -p wse-bench --bin sim_throughput -- --smoke > "$thr_a"
cargo run -q --release -p wse-bench --bin sim_throughput -- --smoke > "$thr_b"
diff -u "$thr_a" "$thr_b"
grep -q "smoke gate: sparse speedup >= 3x: PASS" "$thr_a"

echo "== multi-wafer smoke (k in {1,2,4} distributed BiCGStab, twice, diffed) =="
# multiwafer_scaling runs the overlapped + fused distributed solver on
# simulated 1-, 2-, and 4-wafer ensembles with paper-default host links
# and gates (a) the measured interconnect cycles (exposed halo + host
# AllReduce hops) against the analytic perf_model::multiwafer overlapped
# model and (b) the k=2 weak-scaling efficiency against the pre-overlap
# serial schedule's 0.31. Wall timings go to stderr; stdout (cycle
# counts, residuals, gate verdicts) is deterministic and diffed across
# two runs.
mw_a="$(mktemp)"; mw_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b" "$mw_a" "$mw_b"' EXIT
cargo run -q --release -p wse-bench --bin multiwafer_scaling -- --smoke > "$mw_a"
cargo run -q --release -p wse-bench --bin multiwafer_scaling -- --smoke > "$mw_b"
diff -u "$mw_a" "$mw_b"
grep -q "model-fidelity gate k=4: .* PASS" "$mw_a"
grep -q "weak-efficiency gate k=2: .* PASS" "$mw_a"

echo "== service smoke (2 tenants x 3 shapes through wse-serve, twice, diffed) =="
# service_bench drives seeded open-loop arrivals from two tenants through
# the multi-tenant front door: admission, the compiled-program cache,
# batching, labeled recovery, and per-tenant billing. Host wall-clock (the
# cold-vs-warm compile speedup) goes to stderr; stdout (tier counts,
# latency percentiles, billing cycles) is deterministic and diffed across
# two runs. The cache must be exercised: hit rate strictly positive.
sv_a="$(mktemp)"; sv_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b" "$mw_a" "$mw_b" "$sv_a" "$sv_b"' EXIT
cargo run -q --release -p wse-bench --bin service_bench -- --smoke > "$sv_a"
cargo run -q --release -p wse-bench --bin service_bench -- --smoke > "$sv_b"
diff -u "$sv_a" "$sv_b"
grep -q "jobs: submitted=12 completed=12 rejected=0" "$sv_a"
hit_rate="$(sed -n 's/^cache-hit-rate: //p' "$sv_a")"
awk "BEGIN { exit !($hit_rate > 0) }" || {
  echo "service smoke: cache hit rate must be > 0, got $hit_rate"; exit 1;
}

echo "== DSL lowering smoke (4 catalog operators lower+lint+apply, twice, diffed) =="
# dsl_lowering lowers the 5/7/9/25-point catalog operators through the
# declarative front-end, lint-verifies each program, and checks every
# application bit-exact against the host mirror. Host wall timings go to
# stderr; stdout (emitter kinds, cycle counts, verdicts) is deterministic
# and diffed across two runs.
dl_a="$(mktemp)"; dl_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$ens_a" "$ens_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b" "$mw_a" "$mw_b" "$sv_a" "$sv_b" "$dl_a" "$dl_b"' EXIT
cargo run -q --release -p wse-bench --bin dsl_lowering -- --smoke > "$dl_a"
cargo run -q --release -p wse-bench --bin dsl_lowering -- --smoke > "$dl_b"
diff -u "$dl_a" "$dl_b"
grep -q "all 4 operators: lowered lint-clean, host mirror bit-exact" "$dl_a"

echo "verify: OK"
