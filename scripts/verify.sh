#!/usr/bin/env bash
# Tier-1 verification: build, test, static checks.
#
# The first two steps are the repo's historical tier-1 gate (ROADMAP.md);
# the clippy/fmt steps extend it so style and lint regressions fail CI the
# same way broken tests do. The final step runs the wse-lint static
# verifier over every shipped kernel configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== wse-lint (shipped kernel configurations) =="
cargo run -q --release --bin wse-lint

echo "== fault-injection smoke (one seeded fault of each kind, twice, diffed) =="
# The smoke sweep solves a small wafer BiCGStab under one seeded fault per
# kind with checkpoint/rollback recovery enabled. Running it twice and
# diffing asserts the whole fault→watchdog→recovery pipeline is seeded and
# bit-for-bit reproducible.
smoke_a="$(mktemp)"; smoke_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b"' EXIT
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_a"
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_b"
diff -u "$smoke_a" "$smoke_b"
grep -q "baseline (fault-free): Converged" "$smoke_a"

echo "verify: OK"
