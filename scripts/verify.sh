#!/usr/bin/env bash
# Tier-1 verification: build, test, static checks.
#
# The first two steps are the repo's historical tier-1 gate (ROADMAP.md);
# the clippy/fmt steps extend it so style and lint regressions fail CI the
# same way broken tests do. The final step runs the wse-lint static
# verifier over every shipped kernel configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== wse-lint (shipped kernel configurations) =="
cargo run -q --release --bin wse-lint

echo "== fault-injection smoke (one seeded fault of each kind, twice, diffed) =="
# The smoke sweep solves a small wafer BiCGStab under one seeded fault per
# kind with checkpoint/rollback recovery enabled. Running it twice and
# diffing asserts the whole fault→watchdog→recovery pipeline is seeded and
# bit-for-bit reproducible.
smoke_a="$(mktemp)"; smoke_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b"' EXIT
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_a"
cargo run -q --release -p wse-bench --bin fault_sweep -- --smoke > "$smoke_b"
diff -u "$smoke_a" "$smoke_b"
grep -q "baseline (fault-free): Converged" "$smoke_a"

echo "== trace smoke (traced iteration profile, twice, diffed) =="
# iter_profile calibrates the analytic model from untraced runs, runs a
# traced BiCGStab iteration, exports a Perfetto trace, and cross-validates
# the phase split against the model. Wall timings go to stderr; stdout
# (including the FNV-1a hash of the full Perfetto JSON) must be
# bit-for-bit reproducible across runs.
trace_a="$(mktemp)"; trace_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$trace_a" "$trace_b"' EXIT
cargo run -q --release -p wse-bench --bin iter_profile -- --smoke > "$trace_a"
cargo run -q --release -p wse-bench --bin iter_profile -- --smoke > "$trace_b"
diff -u "$trace_a" "$trace_b"
grep -q "all phases within 15% of the analytic prediction" "$trace_a"
grep -q "cycle identity:" "$trace_a"

echo "== stepper throughput smoke (activity-driven vs reference, twice, diffed) =="
# sim_throughput runs the same workloads under the optimized activity-driven
# stepper and the retained full-scan reference, asserts identical simulated
# cycle counts, and gates a minimum wall-clock speedup on the
# sparse-activity workload (single active column on 64x64). Wall timings go
# to stderr; stdout is deterministic and diffed across two runs.
thr_a="$(mktemp)"; thr_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b"' EXIT
cargo run -q --release -p wse-bench --bin sim_throughput -- --smoke > "$thr_a"
cargo run -q --release -p wse-bench --bin sim_throughput -- --smoke > "$thr_b"
diff -u "$thr_a" "$thr_b"
grep -q "smoke gate: sparse speedup >= 3x: PASS" "$thr_a"

echo "== multi-wafer smoke (k in {1,2,4} distributed BiCGStab, twice, diffed) =="
# multiwafer_scaling runs the distributed solver on simulated 1-, 2-, and
# 4-wafer ensembles with paper-default host links and gates the measured
# interconnect cycles (halo + host AllReduce hops) against the analytic
# perf_model::multiwafer wire-time floor. Wall timings go to stderr;
# stdout (cycle counts, residuals, gate verdicts) is deterministic and
# diffed across two runs.
mw_a="$(mktemp)"; mw_b="$(mktemp)"
trap 'rm -f "$smoke_a" "$smoke_b" "$trace_a" "$trace_b" "$thr_a" "$thr_b" "$mw_a" "$mw_b"' EXIT
cargo run -q --release -p wse-bench --bin multiwafer_scaling -- --smoke > "$mw_a"
cargo run -q --release -p wse-bench --bin multiwafer_scaling -- --smoke > "$mw_b"
diff -u "$mw_a" "$mw_b"
grep -q "model-fidelity gate k=4: .* PASS" "$mw_a"

echo "verify: OK"
