//! Offline drop-in shim for the subset of the `criterion` API used by this
//! workspace's benches: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups with throughput/sample-size knobs, `Bencher::iter`,
//! `iter_batched`, `black_box`, `BenchmarkId`, and `Throughput`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies. This shim
//! measures median wall time over a fixed number of timed samples (after a
//! short warm-up) and prints one plain-text line per benchmark — no HTML
//! reports, statistics engine, or CLI filtering.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: 10, throughput: None }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares work per iteration so the report can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let median = run_one(&label, self.sample_size, &mut f);
        report_throughput(self.throughput.as_ref(), median);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let median = run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report_throughput(self.throughput.as_ref(), median);
        self
    }

    /// Ends the group (reports are emitted eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Identifier showing only the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work declared per iteration (for rate reporting).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timing measurement.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measurement).
    LargeInput,
    /// Exactly one setup per routine call.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocations).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) -> Duration {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return Duration::ZERO;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
    median
}

fn report_throughput(throughput: Option<&Throughput>, median: Duration) {
    let secs = median.as_secs_f64();
    if secs <= 0.0 {
        return;
    }
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{:<50} thrpt: {:.3} Melem/s", "", *n as f64 / secs / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            println!("{:<50} thrpt: {:.3} MiB/s", "", *n as f64 / secs / (1024.0 * 1024.0));
        }
        None => {}
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin() -> u64 {
        let mut acc = 0u64;
        for i in 0..1000 {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(spin));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("plain", |b| b.iter(spin));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| b.iter(|| n + spin()));
        g.bench_function(BenchmarkId::from_parameter(3).to_string(), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(demo, never_run);
    #[allow(dead_code)]
    fn never_run(_c: &mut Criterion) {}

    #[test]
    fn macros_expand() {
        demo();
    }
}
