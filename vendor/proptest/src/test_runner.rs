//! Case runner: configuration, the per-test RNG, and the pass/reject/fail
//! protocol the `proptest!` macro expands to.

/// Runner configuration (the `cases` knob is the only one honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required for the property to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; a leaner default keeps full-workspace
        // test runs fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` or a filtered strategy draw).
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic per-test random source (SplitMix64). Seeded from the test
/// name so failures reproduce run-to-run without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives `case` until `config.cases` cases pass, panicking on the first
/// failure. Rejections (assumptions/filters) are retried, with a cap to catch
/// assumption sets that can never be satisfied.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_cap = config.cases as u64 * 16 + 1024;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "proptest '{name}': gave up after {rejected} rejected cases \
                     ({passed}/{} passed)",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_vecs(
            n in 1usize..10,
            v in prop::collection::vec(-5i8..5, 3..7),
            flag in any::<bool>(),
            fixed in Just(13u8),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (-5..5).contains(&x)));
            prop_assert_eq!(fixed, 13u8);
            prop_assert_ne!(flag as u8, 2);
        }

        #[test]
        fn assume_and_map_work(x in (0u32..100).prop_map(|v| v * 2)) {
            prop_assume!(x != 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn impossible_assumption_gives_up() {
        super::run_cases(&ProptestConfig::with_cases(4), "impossible", |_| {
            Err(super::TestCaseError::Reject)
        });
    }
}
