//! Value-generation strategies: ranges, tuples, `Just`, `any`, and the
//! `prop_map`/`prop_filter` combinators.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
///
/// `try_sample` returns `None` when the draw was rejected (e.g. by
/// [`Strategy::prop_filter`]); the runner retries with a fresh case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value, or `None` if the draw was rejected.
    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`. The `_whence`
    /// label matches upstream's diagnostic argument and is not used here.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn try_sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.try_sample(rng).map(&self.f)
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_sample(rng).filter(|v| (self.f)(v))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Strategy behind [`crate::any`].
pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some((lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                Some(if v >= self.end as f64 { self.start } else { v as $t })
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                Some((lo + (hi - lo) * u) as $t)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.try_sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
