//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A length (or length range) for [`vec`]; mirrors upstream `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.try_sample(rng)).collect()
    }
}
