//! Offline drop-in shim for the subset of the `proptest` API used by this
//! workspace: the [`proptest!`] macro, range/tuple/`vec`/`any` strategies,
//! `prop_map`/`prop_filter`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies. This shim
//! keeps the property-based *sampling* (deterministically seeded per test
//! name, so failures reproduce) but does not implement shrinking: a failing
//! case reports the sampled values and panics without minimizing them.

#![warn(missing_docs)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Strategy producing "any" value of a primitive type, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

/// Types with a canonical full-range strategy (a small primitive subset of
/// upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        // Raw bit patterns: exercises subnormals, infinities, and NaNs too.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// The customary glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of `proptest::prelude::prop` (module-style access to strategy
    /// constructors, e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(-1i8..1, 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            // Each `$arg` first binds the *strategy*, then is shadowed by the
            // sampled value inside the per-case closure.
            $(let $arg = $strat;)+
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(
                    let $arg = match $crate::strategy::Strategy::try_sample(&$arg, __rng) {
                        Some(v) => v,
                        None => return Err($crate::test_runner::TestCaseError::Reject),
                    };
                )+
                let __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counted separately from failures).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
