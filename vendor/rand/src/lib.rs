//! Offline drop-in shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies. The
//! generator here is xoshiro256++ seeded via SplitMix64 — the same family the
//! real `SmallRng` uses on 64-bit targets — so statistical quality is
//! comparable, though streams differ from upstream `rand`.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors upstream's
/// `SampleUniform` so type inference behaves the same way (a single blanket
/// `SampleRange` impl per range kind).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges a uniform value can be drawn from ([`Range`] and
/// [`RangeInclusive`] over the primitive numeric types).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let (flo, fhi) = (lo as f64, hi as f64);
                let u = if inclusive {
                    (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
                } else {
                    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
                };
                let v = (flo + (fhi - flo) * u) as $t;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The concrete small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same family
    /// upstream `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `StdRng` keeps compiling.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let i = rng.gen_range(-8i8..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn covers_small_range_uniformly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [0u32; 8];
        for _ in 0..8000 {
            seen[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 500, "bucket {i} undersampled: {count}");
        }
    }
}
