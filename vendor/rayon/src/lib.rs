//! Offline drop-in shim for the subset of the `rayon` API used by this
//! workspace: `slice.par_iter_mut()` followed by `.for_each(..)` or
//! `.enumerate().map(..).collect()`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies. Unlike a
//! toy sequential fallback, this shim does run work in parallel: slices are
//! split into one contiguous chunk per available hardware thread and executed
//! under [`std::thread::scope`]. For the fabric-stepping hot loops (thousands
//! of independent tiles per phase) that recovers most of rayon's benefit
//! without the work-stealing machinery.

#![warn(missing_docs)]

/// Number of worker threads to use for `len` items.
fn threads_for(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(len)
}

/// Splits `slice` into per-thread chunks and maps `f` over `(index, item)`
/// pairs, preserving input order in the result.
fn map_indexed<T, R, F>(slice: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = slice.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return slice.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = slice
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, ch)| {
                let f = &f;
                s.spawn(move || {
                    ch.iter_mut().enumerate().map(|(i, t)| f(ci * chunk + i, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// Splits two equal-length slices into per-thread chunk pairs and maps `f`
/// over `(index, a_item, b_item)` triples, preserving input order.
fn map_zip_indexed<T, U, R, F>(a: &mut [T], b: &mut [U], f: F) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
    F: Fn(usize, &mut T, &mut U) -> R + Sync,
{
    let n = a.len();
    assert_eq!(n, b.len(), "zipped parallel iterators must have equal length");
    let threads = threads_for(n);
    if threads <= 1 {
        return a.iter_mut().zip(b.iter_mut()).enumerate().map(|(i, (x, y))| f(i, x, y)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(ci, (ca, cb))| {
                let f = &f;
                s.spawn(move || {
                    ca.iter_mut()
                        .zip(cb.iter_mut())
                        .enumerate()
                        .map(|(i, (x, y))| f(ci * chunk + i, x, y))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// Parallel iterator over `&mut` slice elements.
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Runs `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        map_indexed(self.0, |_, t| f(t));
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate(self.0)
    }

    /// Pairs elements positionally with a second parallel iterator.
    pub fn zip<U: Send>(self, other: ParIterMut<'a, U>) -> ParZip<'a, T, U> {
        ParZip(self.0, other.0)
    }
}

/// Lock-step pair iterator (result of [`ParIterMut::zip`]).
pub struct ParZip<'a, T, U>(&'a mut [T], &'a mut [U]);

impl<'a, T: Send, U: Send> ParZip<'a, T, U> {
    /// Pairs each element pair with its index.
    pub fn enumerate(self) -> ParZipEnumerate<'a, T, U> {
        ParZipEnumerate(self.0, self.1)
    }
}

/// Index-carrying zipped iterator (result of [`ParZip::enumerate`]).
pub struct ParZipEnumerate<'a, T, U>(&'a mut [T], &'a mut [U]);

impl<'a, T: Send, U: Send> ParZipEnumerate<'a, T, U> {
    /// Maps `(index, (&mut a, &mut b))` triples through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParZipEnumMap<'a, T, U, F>
    where
        R: Send,
        F: Fn((usize, (&mut T, &mut U))) -> R + Sync,
    {
        ParZipEnumMap { a: self.0, b: self.1, f }
    }

    /// Runs `f` on every `(index, (&mut a, &mut b))` triple, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut T, &mut U))) + Sync,
    {
        map_zip_indexed(self.0, self.1, |i, x, y| f((i, (x, y))));
    }
}

/// Mapped zipped iterator awaiting reduction.
pub struct ParZipEnumMap<'a, T, U, F> {
    a: &'a mut [T],
    b: &'a mut [U],
    f: F,
}

impl<'a, T: Send, U: Send, F> ParZipEnumMap<'a, T, U, F> {
    /// Executes the map in parallel and sums the results.
    pub fn sum<R>(self) -> R
    where
        R: Send + std::iter::Sum<R>,
        F: Fn((usize, (&mut T, &mut U))) -> R + Sync,
    {
        let f = self.f;
        map_zip_indexed(self.a, self.b, |i, x, y| f((i, (x, y)))).into_iter().sum()
    }

    /// Executes the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn((usize, (&mut T, &mut U))) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        map_zip_indexed(self.a, self.b, |i, x, y| f((i, (x, y)))).into_iter().collect()
    }
}

/// Parallel iterator over non-overlapping mutable chunks (result of
/// [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T>(Vec<&'a mut [T]>);

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs chunks positionally with a second chunk iterator (the chunk
    /// *counts* must match; sizes may differ).
    pub fn zip<U: Send>(self, other: ParChunksMut<'a, U>) -> ParChunksZip<'a, T, U> {
        ParChunksZip(self.0, other.0)
    }
}

/// Lock-step chunk-pair iterator (result of [`ParChunksMut::zip`]).
pub struct ParChunksZip<'a, T, U>(Vec<&'a mut [T]>, Vec<&'a mut [U]>);

impl<'a, T: Send, U: Send> ParChunksZip<'a, T, U> {
    /// Pairs each chunk pair with its index.
    pub fn enumerate(self) -> ParChunksZipEnumerate<'a, T, U> {
        ParChunksZipEnumerate(self.0, self.1)
    }
}

/// Index-carrying chunk-pair iterator.
pub struct ParChunksZipEnumerate<'a, T, U>(Vec<&'a mut [T]>, Vec<&'a mut [U]>);

impl<'a, T: Send, U: Send> ParChunksZipEnumerate<'a, T, U> {
    /// Runs `f` on every `(index, (a_chunk, b_chunk))` pair, in parallel.
    pub fn for_each<F>(mut self, f: F)
    where
        F: Fn((usize, (&mut [T], &mut [U]))) + Sync,
    {
        map_zip_indexed(&mut self.0, &mut self.1, |i, ca, cb| f((i, (&mut **ca, &mut **cb))));
    }
}

/// Index-carrying parallel iterator (result of [`ParIterMut::enumerate`]).
pub struct ParEnumerate<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParEnumerate<'a, T> {
    /// Maps `(index, &mut item)` pairs through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        ParEnumMap { slice: self.0, f }
    }

    /// Runs `f` on every `(index, &mut item)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        map_indexed(self.0, |i, t| f((i, t)));
    }
}

/// Mapped parallel iterator awaiting collection.
pub struct ParEnumMap<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParEnumMap<'a, T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        C: FromIterator<R>,
    {
        map_indexed(self.slice, |i, t| (self.f)((i, t))).into_iter().collect()
    }
}

/// Extension trait adding `par_iter_mut` to slices (and, via deref, `Vec`).
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Returns a parallel iterator over non-overlapping mutable chunks of
    /// `size` elements (the final chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self)
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut(self.chunks_mut(size).collect())
    }
}

/// The customary glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_touches_every_element() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn enumerate_map_collect_preserves_order() {
        let mut v: Vec<u32> = vec![5; 257];
        let out: Vec<(usize, u32)> =
            v.par_iter_mut().enumerate().map(|(i, t)| (i, *t + i as u32)).collect();
        for (i, &(j, x)) in out.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(x, 5 + i as u32);
        }
    }

    #[test]
    fn empty_and_single_slices_work() {
        let mut e: Vec<u8> = Vec::new();
        e.par_iter_mut().for_each(|_| unreachable!());
        let mut one = [7u8];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one[0], 8);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let mut v = [0u8; 64];
            v.par_iter_mut().for_each(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
