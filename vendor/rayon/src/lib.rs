//! Offline drop-in shim for the subset of the `rayon` API used by this
//! workspace: `slice.par_iter_mut()` followed by `.for_each(..)` or
//! `.enumerate().map(..).collect()`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal API-compatible stand-ins for its external dependencies. Unlike a
//! toy sequential fallback, this shim does run work in parallel: slices are
//! split into one contiguous chunk per available hardware thread and executed
//! under [`std::thread::scope`]. For the fabric-stepping hot loops (thousands
//! of independent tiles per phase) that recovers most of rayon's benefit
//! without the work-stealing machinery.

#![warn(missing_docs)]

/// Number of worker threads to use for `len` items.
fn threads_for(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(len)
}

/// Splits `slice` into per-thread chunks and maps `f` over `(index, item)`
/// pairs, preserving input order in the result.
fn map_indexed<T, R, F>(slice: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = slice.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return slice.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = slice
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, ch)| {
                let f = &f;
                s.spawn(move || {
                    ch.iter_mut().enumerate().map(|(i, t)| f(ci * chunk + i, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// Parallel iterator over `&mut` slice elements.
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Runs `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        map_indexed(self.0, |_, t| f(t));
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate(self.0)
    }
}

/// Index-carrying parallel iterator (result of [`ParIterMut::enumerate`]).
pub struct ParEnumerate<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParEnumerate<'a, T> {
    /// Maps `(index, &mut item)` pairs through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        ParEnumMap { slice: self.0, f }
    }

    /// Runs `f` on every `(index, &mut item)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        map_indexed(self.0, |i, t| f((i, t)));
    }
}

/// Mapped parallel iterator awaiting collection.
pub struct ParEnumMap<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParEnumMap<'a, T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        C: FromIterator<R>,
    {
        map_indexed(self.slice, |i, t| (self.f)((i, t))).into_iter().collect()
    }
}

/// Extension trait adding `par_iter_mut` to slices (and, via deref, `Vec`).
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self)
    }
}

/// The customary glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_touches_every_element() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn enumerate_map_collect_preserves_order() {
        let mut v: Vec<u32> = vec![5; 257];
        let out: Vec<(usize, u32)> =
            v.par_iter_mut().enumerate().map(|(i, t)| (i, *t + i as u32)).collect();
        for (i, &(j, x)) in out.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(x, 5 + i as u32);
        }
    }

    #[test]
    fn empty_and_single_slices_work() {
        let mut e: Vec<u8> = Vec::new();
        e.par_iter_mut().for_each(|_| unreachable!());
        let mut one = [7u8];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one[0], 8);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let mut v = [0u8; 64];
            v.par_iter_mut().for_each(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
